#![forbid(unsafe_code)]
//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warmup, then up to
//! `sample_size` timed samples (bounded by a per-benchmark time budget),
//! reporting min / mean / max wall-clock time per iteration as plain
//! text. There is no statistical analysis, no HTML report, and no
//! baseline comparison — the benches remain runnable and comparable by
//! eye, which is all this workspace needs offline.

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

pub struct Criterion {
    sample_size: usize,
    /// Wall-clock budget per benchmark id (warmup + samples).
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            time_budget: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            time_budget: self.time_budget,
            _parent: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    time_budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let started = Instant::now();
        // Warmup: one measured pass to size the sample loop.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mut samples: Vec<f64> = Vec::new();
        if b.iters > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        while samples.len() < self.sample_size && started.elapsed() < self.time_budget {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {id}: mean {} (min {}, max {}, {} samples)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t = Instant::now();
        black_box(routine());
        self.elapsed += t.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        self.elapsed += t.elapsed();
        self.iters += 1;
    }
}

/// Bundle benchmark functions under one name, mirroring criterion's
/// macro signature (config arm accepted and ignored).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
