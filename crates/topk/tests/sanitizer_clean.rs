//! Sanitizer-clean sweep: every `TopKAlgorithm` variant, across sizes,
//! `k` values, and input distributions, must run with **zero sanitizer
//! findings** — no races, no OOB accesses, no uninitialized shared
//! reads, and no un-waived perf lints. Batched and streamed launches are
//! covered by a dedicated case since they exercise different kernels.

use datagen::{BucketKiller, Distribution, Increasing, Uniform};
use simt::Device;
use topk::batched::batched_bitonic_topk;
use topk::{TopKAlgorithm, TopKRequest};

fn assert_clean(dev: &Device, context: &str) {
    let reports = dev.take_sanitizer_reports();
    assert!(!reports.is_empty(), "{context}: no launches were sanitized");
    for rep in &reports {
        assert!(
            rep.is_clean(),
            "{context}: sanitizer findings\n{}",
            rep.render()
        );
    }
}

fn sweep_case(alg: TopKAlgorithm, n: usize, k: usize, data: &[f32], context: &str) {
    let dev = Device::titan_x();
    dev.enable_sanitizer();
    let input = dev.upload(data);
    let r = TopKRequest::largest(k)
        .with_alg(alg)
        .run(&dev, &input)
        .unwrap_or_else(|e| panic!("{context}: {e}"));
    assert_eq!(r.items.len(), k.min(n), "{context}");
    assert_clean(&dev, context);
}

#[test]
fn sanitizer_clean_all_algorithms_uniform() {
    for alg in TopKAlgorithm::all() {
        for &(n, k) in &[(1usize << 12, 16usize), (1 << 14, 64), (3000, 8)] {
            let data: Vec<f32> = Uniform.generate(n, 42);
            sweep_case(
                alg,
                n,
                k,
                &data,
                &format!("{} n={n} k={k} uniform", alg.name()),
            );
        }
    }
}

#[test]
fn sanitizer_clean_all_algorithms_adversarial_distributions() {
    // sorted input is per-thread top-k's worst case; the bucket-killer
    // skew is the selection methods' — both must stay finding-free, not
    // just correct
    for alg in TopKAlgorithm::all() {
        let cases: Vec<(&str, Vec<f32>)> = vec![
            ("sorted", Increasing.generate(1 << 13, 7)),
            ("bucket-killer", BucketKiller.generate(1 << 13, 7)),
        ];
        for (dist, data) in cases {
            sweep_case(
                alg,
                1 << 13,
                32,
                &data,
                &format!("{} n=8192 k=32 {dist}", alg.name()),
            );
        }
    }
}

#[test]
fn sanitizer_clean_smallest_k() {
    for alg in TopKAlgorithm::all() {
        let data: Vec<f32> = Uniform.generate(1 << 12, 13);
        let dev = Device::titan_x();
        dev.enable_sanitizer();
        let input = dev.upload(&data);
        let r = TopKRequest::smallest(16)
            .with_alg(alg)
            .run(&dev, &input)
            .unwrap();
        assert_eq!(r.items.len(), 16);
        assert_clean(&dev, &format!("{} smallest-k", alg.name()));
    }
}

#[test]
fn sanitizer_clean_batched_rows() {
    let dev = Device::titan_x();
    dev.enable_sanitizer();
    let (rows, cols) = (24usize, 700usize);
    let flat: Vec<f32> = Uniform.generate(rows * cols, 21);
    let input = dev.upload(&flat);
    let out = batched_bitonic_topk(&dev, &input, rows, cols, 8).unwrap();
    assert_eq!(out.rows.len(), rows);
    assert_clean(&dev, "batched_bitonic_topk 24 rows k=8");
}

#[test]
fn sanitizer_clean_streamed_launches() {
    let dev = Device::titan_x();
    dev.enable_sanitizer();
    let st_a = dev.create_stream();
    let st_b = dev.create_stream();
    let data: Vec<f32> = Uniform.generate(1 << 12, 3);
    let input = dev.upload(&data);
    let ra = TopKRequest::largest(16)
        .on_stream(st_a.id())
        .run(&dev, &input)
        .unwrap();
    let rb = TopKRequest::smallest(16)
        .on_stream(st_b.id())
        .run(&dev, &input)
        .unwrap();
    assert_eq!(ra.items.len(), 16);
    assert_eq!(rb.items.len(), 16);
    // every streamed launch produced a report, and all are clean
    assert!(!st_a.sanitizer_reports().is_empty());
    assert!(!st_b.sanitizer_reports().is_empty());
    assert_clean(&dev, "streamed largest/smallest");
}
