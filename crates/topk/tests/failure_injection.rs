//! Failure injection: constrained devices, exhausted memory, and
//! degenerate launch configurations must fail loudly and recoverably —
//! never silently corrupt results.

use datagen::{reference_topk, Distribution, Uniform};
use simt::{Device, DeviceSpec};
use topk::bitonic::{bitonic_topk, BitonicConfig};
use topk::{per_thread, TopKAlgorithm, TopKError, TopKRequest};

/// A device with almost no shared memory: every staged algorithm must
/// reject cleanly.
fn crippled_shared() -> Device {
    Device::new(DeviceSpec {
        shared_mem_per_block: 2 * 1024,
        shared_mem_per_sm: 4 * 1024,
        ..DeviceSpec::titan_x_maxwell()
    })
}

#[test]
fn per_thread_rejects_on_tiny_shared_memory() {
    let dev = crippled_shared();
    let data: Vec<f32> = Uniform.generate(4096, 1);
    let input = dev.upload(&data);
    // 2 KB/block can hold at most 16 floats per 32-thread block
    let err =
        per_thread::per_thread_topk(&dev, &input, 64, per_thread::Variant::SharedHeap).unwrap_err();
    assert!(matches!(err, TopKError::Launch(_)), "got {err:?}");
}

#[test]
fn per_thread_register_variant_survives_tiny_shared_memory() {
    // the register variant does not use shared memory, so it still runs
    let dev = crippled_shared();
    let data: Vec<f32> = Uniform.generate(4096, 2);
    let input = dev.upload(&data);
    let r =
        per_thread::per_thread_topk(&dev, &input, 64, per_thread::Variant::RegisterBuffer).unwrap();
    let got: Vec<u32> = r.items.iter().map(|x| x.to_bits()).collect();
    let expect: Vec<u32> = reference_topk(&data, 64)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn device_memory_exhaustion_is_reported() {
    let dev = Device::new(DeviceSpec {
        global_mem_bytes: 64 * 1024,
        ..DeviceSpec::titan_x_maxwell()
    });
    // 64 KB device: a 32 KB buffer fits, two don't
    let _a = dev.try_alloc::<f32>(8192).expect("first buffer fits");
    let err = dev.try_alloc::<f32>(8192 + 1).unwrap_err();
    assert!(err.requested > err.capacity - err.in_use);
    assert_eq!(err.capacity, 64 * 1024);
}

#[test]
fn sort_topk_needs_a_double_buffer() {
    // sort allocates an extra n-sized buffer; with the input filling
    // device memory it must panic (documented behaviour of `alloc`) —
    // while bitonic (n/8 extra) still fits
    let n = 8192usize;
    let dev = Device::new(DeviceSpec {
        global_mem_bytes: n * 4 + n / 2, // input + ~n/8 headroom
        ..DeviceSpec::titan_x_maxwell()
    });
    let data: Vec<f32> = Uniform.generate(n, 3);
    let input = dev.upload(&data);

    let r = bitonic_topk(&dev, &input, 16, BitonicConfig::default()).unwrap();
    assert_eq!(r.items, reference_topk(&data, 16));

    let sort_attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        TopKRequest::largest(16)
            .with_alg(TopKAlgorithm::Sort)
            .run(&dev, &input)
    }));
    assert!(sort_attempt.is_err(), "sort should exhaust device memory");
}

#[test]
fn bitonic_rejects_k_beyond_shared_window() {
    let dev = crippled_shared();
    let data: Vec<f32> = Uniform.generate(1 << 14, 4);
    let input = dev.upload(&data);
    // 2 KB shared → max window 512 f32 → k_eff ≤ 256
    assert!(bitonic_topk(&dev, &input, 512, BitonicConfig::default()).is_err());
    let ok = bitonic_topk(&dev, &input, 64, BitonicConfig::default()).unwrap();
    let got: Vec<u32> = ok.items.iter().map(|x| x.to_bits()).collect();
    let expect: Vec<u32> = reference_topk(&data, 64)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(
        got, expect,
        "small k must still work on the crippled device"
    );
}

#[test]
fn algorithms_work_on_every_device_preset() {
    let data: Vec<f32> = Uniform.generate(1 << 13, 5);
    let expect: Vec<u32> = reference_topk(&data, 32)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    for spec in [
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_x_pascal(),
        DeviceSpec::tesla_v100(),
        DeviceSpec::small_mobile(),
    ] {
        let dev = Device::new(spec);
        let input = dev.upload(&data);
        for alg in TopKAlgorithm::all() {
            let r = TopKRequest::largest(32)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap();
            let got: Vec<u32> = r.items.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, expect, "{} on {:?}", alg.name(), spec.num_sms);
        }
    }
}

#[test]
fn faster_device_is_faster() {
    let data: Vec<f32> = Uniform.generate(1 << 20, 6);
    let mut times = Vec::new();
    for spec in [
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_x_pascal(),
        DeviceSpec::tesla_v100(),
    ] {
        let dev = Device::new(spec);
        let input = dev.upload(&data);
        let r = bitonic_topk(&dev, &input, 32, BitonicConfig::default()).unwrap();
        times.push(r.time.seconds());
    }
    assert!(times[0] > times[1], "Pascal should beat Maxwell: {times:?}");
    assert!(times[1] > times[2], "V100 should beat Pascal: {times:?}");
}
