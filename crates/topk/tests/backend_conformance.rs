//! Backend conformance: the [`Backend`] trait's contract, checked on
//! both engines.
//!
//! One request surface, two executors — the simulated GPU
//! ([`SimtBackend`]) and real CPU threads ([`CpuBackend`]) — must agree
//! on *what* the top-k is for every algorithm, size, `k`, and input
//! distribution, including the adversarial ones. Agreement is by key
//! signature (the multiset of selected keys): engines may break ties
//! between equal keys differently when items carry no id, but the keys
//! they return must be identical and correctly ordered.
//!
//! The suite also pins down the failure contract: simulator-only
//! features degrade with typed [`TopKError`] values on the CPU, and a
//! buffer from one backend handed to the other is a typed mismatch, not
//! a panic.

use datagen::{BucketKiller, Decreasing, Distribution, Increasing, Kv, Uniform};
use simt::Device;
use topk::{Backend, CpuBackend, ExecBackend, SimtBackend, TopKAlgorithm, TopKError, TopKRequest};

/// The key signature of a result: the keys in returned order.
fn keys(items: &[f32]) -> Vec<u32> {
    items.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn all_algorithms_agree_across_backends_and_distributions() {
    let dev = Device::titan_x();
    let simt = SimtBackend::new(&dev);
    let cpu = CpuBackend::with_threads(4);
    let dists: [(&str, &dyn Distribution<f32>); 4] = [
        ("uniform", &Uniform),
        ("increasing", &Increasing),
        ("decreasing", &Decreasing),
        ("bucket-killer", &BucketKiller),
    ];
    for alg in TopKAlgorithm::all() {
        for &(n, k) in &[(1usize << 12, 16usize), (1 << 14, 64), (3000, 8)] {
            for (dname, dist) in &dists {
                let data: Vec<f32> = dist.generate(n, 0xC0FFEE);
                let req = TopKRequest::largest(k).with_alg(alg);
                let ctx = format!("{} n={n} k={k} {dname}", alg.name());

                let dbuf = simt.upload(&data);
                let a = req
                    .run_on(&simt, &dbuf)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let hbuf = cpu.upload(&data);
                let b = req
                    .run_on(&cpu, &hbuf)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));

                assert_eq!(a.items.len(), k.min(n), "{ctx}");
                assert_eq!(keys(&a.items), keys(&b.items), "{ctx}");
                // reports speak each backend's native currency
                assert!(a.report.sim.is_some() && b.report.sim.is_none(), "{ctx}");
                assert_eq!(b.report.threads, Some(4), "{ctx}");
            }
        }
    }
}

#[test]
fn smallest_k_agrees_across_backends() {
    let dev = Device::titan_x();
    let simt = SimtBackend::new(&dev);
    let cpu = CpuBackend::with_threads(2);
    for alg in TopKAlgorithm::all() {
        let data: Vec<f32> = Uniform.generate(1 << 13, 99);
        let req = TopKRequest::smallest(32).with_alg(alg);
        let a = req.run_on(&simt, &simt.upload(&data)).unwrap();
        let b = req.run_on(&cpu, &cpu.upload(&data)).unwrap();
        assert_eq!(keys(&a.items), keys(&b.items), "{}", alg.name());
    }
}

#[test]
fn tie_breaks_agree_when_items_carry_ids() {
    // duplicate-heavy keys: winners must match exactly (smaller row id
    // wins on key ties), not just by key signature
    let dev = Device::titan_x();
    let simt = SimtBackend::new(&dev);
    let cpu = CpuBackend::with_threads(8);
    let data: Vec<Kv<u32>> = (0..20_000u32).map(|i| Kv::new(i % 37, i)).collect();
    for alg in TopKAlgorithm::all() {
        let req = TopKRequest::largest(100).with_alg(alg);
        let a = req.run_on(&simt, &simt.upload(&data)).unwrap();
        let b = req.run_on(&cpu, &cpu.upload(&data)).unwrap();
        let sig = |v: &[Kv<u32>]| v.iter().map(|kv| (kv.key, kv.value)).collect::<Vec<_>>();
        assert_eq!(sig(&a.items), sig(&b.items), "{}", alg.name());
    }
}

#[test]
fn upload_download_roundtrips_on_both_backends() {
    let dev = Device::titan_x();
    for be in [ExecBackend::simt(&dev), ExecBackend::cpu(2)] {
        let data: Vec<u32> = Uniform.generate(4_096, 5);
        let buf = be.upload(&data);
        assert_eq!(buf.len(), data.len());
        assert_eq!(be.download(&buf).unwrap(), data, "{}", be.name());
    }
}

#[test]
fn typed_errors_not_panics() {
    let dev = Device::titan_x();
    let simt = SimtBackend::new(&dev);
    let cpu = CpuBackend::with_threads(2);
    let data: Vec<f32> = Uniform.generate(1024, 1);

    // a simt buffer handed to the cpu backend (and vice versa)
    let dbuf = simt.upload(&data);
    let hbuf = cpu.upload(&data);
    let req = TopKRequest::largest(8);
    assert!(matches!(
        req.run_on(&cpu, &dbuf),
        Err(TopKError::BackendMismatch {
            backend: "cpu",
            buffer: "simt"
        })
    ));
    assert!(matches!(
        req.run_on(&simt, &hbuf),
        Err(TopKError::BackendMismatch {
            backend: "simt",
            buffer: "cpu"
        })
    ));

    // simt streams are a simulator feature; the cpu backend says so
    let streamed = TopKRequest::largest(8).on_stream(dev.create_stream().id());
    assert!(matches!(
        streamed.run_on(&cpu, &hbuf),
        Err(TopKError::UnsupportedOnBackend {
            backend: "cpu",
            feature: _
        })
    ));

    // shared validation still fires on both
    assert!(matches!(
        TopKRequest::largest(0).run_on(&cpu, &hbuf),
        Err(TopKError::ZeroK)
    ));
    assert!(matches!(
        TopKRequest::largest(0).run_on(&simt, &dbuf),
        Err(TopKError::ZeroK)
    ));
}

#[test]
fn cpu_thread_counts_are_consistent() {
    // any thread count returns the same selection
    let data: Vec<f32> = Uniform.generate(1 << 15, 123);
    let req = TopKRequest::largest(64).with_alg(TopKAlgorithm::RadixSelect);
    let base = req
        .run_on(
            &CpuBackend::with_threads(1),
            &CpuBackend::with_threads(1).upload(&data),
        )
        .unwrap();
    for t in [2usize, 3, 8, 16] {
        let be = CpuBackend::with_threads(t);
        let got = req.run_on(&be, &be.upload(&data)).unwrap();
        assert_eq!(keys(&base.items), keys(&got.items), "threads={t}");
    }
}
