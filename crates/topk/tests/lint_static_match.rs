//! Static-vs-dynamic cross-check: with lint capture enabled, every
//! launch of every shipped algorithm must carry a static prediction
//! that **bit-matches** the replay's measured counters — tracked
//! kernels (the bitonic reducer family) on the raw counters, streaming
//! kernels on the derived `sectors_per_access` / conflict-degree
//! metrics. This is the contract that keeps `simt::lint` from silently
//! drifting away from the simulator it models.

use datagen::{BucketKiller, Distribution, Increasing, Uniform};
use simt::Device;
use topk::bitonic::{bitonic_topk, BitonicConfig, OptLevel};
use topk::{TopKAlgorithm, TopKRequest};

/// Asserts every captured launch has a static prediction agreeing with
/// the measured stats, and every lint report is clean or waived. When
/// `require_clean` is false only hard errors are rejected — deliberately
/// unoptimized ladder levels carry genuine perf warnings (the bank
/// conflicts that the Padding level exists to fix).
fn assert_static_matches(dev: &Device, context: &str, require_clean: bool) {
    let launches = dev.launch_log();
    assert!(!launches.is_empty(), "{context}: no launches captured");
    for r in &launches {
        let pred = r
            .static_pred
            .as_ref()
            .unwrap_or_else(|| panic!("{context}: {} has no static prediction", r.name));
        // only per-lane tracked events produce `global_accesses`; bulk
        // traffic feeds bytes and sectors without it, so this cleanly
        // identifies the reducer family that predicts raw counters
        let tracked = r.stats.global_accesses > 0;
        if tracked {
            assert_eq!(
                (pred.global_sectors, pred.global_accesses),
                (r.stats.global_sectors, r.stats.global_accesses),
                "{context}: {} global counter mismatch",
                r.name
            );
            assert_eq!(
                (pred.global_read_bytes, pred.global_write_bytes),
                (r.stats.global_read_bytes, r.stats.global_write_bytes),
                "{context}: {} global byte mismatch",
                r.name
            );
            assert_eq!(
                (
                    pred.shared_eff_bytes,
                    pred.shared_accesses,
                    pred.shared_conflict_groups,
                    pred.shared_conflict_cycles
                ),
                (
                    r.stats.shared_eff_bytes,
                    r.stats.shared_accesses,
                    r.stats.shared_conflict_groups,
                    r.stats.shared_conflict_cycles
                ),
                "{context}: {} shared counter mismatch",
                r.name
            );
        }
        assert!(
            pred.matches(&r.stats),
            "{context}: {} derived metrics drifted (static {:.4}/{:.4} vs measured {:.4}/{:.4})",
            r.name,
            pred.sectors_per_access(),
            pred.avg_conflict_degree(),
            r.stats.sectors_per_access(),
            r.stats.avg_conflict_degree(),
        );
    }
    for rep in dev.take_lint_reports() {
        if require_clean {
            assert!(
                rep.is_clean(),
                "{context}: lint findings on {}\n{}",
                rep.kernel,
                rep.render()
            );
        } else {
            assert_eq!(
                rep.error_count(),
                0,
                "{context}: hard lint errors on {}\n{}",
                rep.kernel,
                rep.render()
            );
        }
    }
}

#[test]
fn static_matches_dynamic_across_bitonic_ladder() {
    for opt in OptLevel::ladder() {
        for &k in &[8usize, 32, 256] {
            let data: Vec<f32> = Uniform.generate(1 << 13, 11);
            let dev = Device::titan_x();
            dev.enable_lint();
            let input = dev.upload(&data);
            let cfg = BitonicConfig::at_level(opt);
            bitonic_topk(&dev, &input, k, cfg).unwrap_or_else(|e| panic!("{opt:?} k={k}: {e}"));
            assert_static_matches(&dev, &format!("{opt:?} k={k}"), false);
        }
    }
}

#[test]
fn static_matches_dynamic_all_algorithms() {
    for alg in TopKAlgorithm::all() {
        for &(n, k) in &[(1usize << 12, 16usize), (3000, 8)] {
            let data: Vec<f32> = Uniform.generate(n, 42);
            let dev = Device::titan_x();
            dev.enable_lint();
            let input = dev.upload(&data);
            TopKRequest::largest(k)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap_or_else(|e| panic!("{} n={n} k={k}: {e}", alg.name()));
            assert_static_matches(&dev, &format!("{} n={n} k={k}", alg.name()), true);
        }
    }
}

#[test]
fn static_matches_dynamic_adversarial_distributions() {
    // data-dependent pipelines (radix select re-reads, per-thread sift
    // divergence) must still agree: the contract covers the launches
    // actually made, whatever the data decided
    let cases: Vec<(&str, Vec<f32>)> = vec![
        ("sorted", Increasing.generate(1 << 12, 7)),
        ("bucket-killer", BucketKiller.generate(1 << 12, 7)),
    ];
    for alg in TopKAlgorithm::all() {
        for (dist, data) in &cases {
            let dev = Device::titan_x();
            dev.enable_lint();
            let input = dev.upload(data);
            TopKRequest::largest(32)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap_or_else(|e| panic!("{} {dist}: {e}", alg.name()));
            assert_static_matches(&dev, &format!("{} {dist}", alg.name()), true);
        }
    }
}
