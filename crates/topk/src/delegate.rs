//! Delegate-centric top-k (the Dr. Top-k decomposition, PAPERS.md):
//! split the input into fixed-length subranges, keep each subrange's
//! maximum as its *delegate*, run top-k over the compact delegate set,
//! and rescan only the subranges whose delegate survives the delegate
//! top-k — every other subrange is dominated by at least `k` better
//! items and cannot contribute.
//!
//! Three phases (plus a final merge), all carrying truthful
//! [`AccessSpec`] contracts so the static analyzer and sanitizer cover
//! them like every other algorithm:
//!
//! 1. **Extract** — one pass over the input builds the delegate buffer
//!    (`c = ⌈n / s⌉` items). The result is a [`DelegateIndex`] cached on
//!    the input buffer via [`GpuBuffer::attach_aux`]; any later mutation
//!    of the buffer invalidates it (contents-version tracking), and a
//!    warm query skips this pass entirely — the zone-map economics that
//!    give delegate select its order-of-magnitude traffic win at small k.
//! 2. **Delegate top-k** — the existing bitonic path over `c` items
//!    yields the threshold `τ`, the k-th best delegate.
//! 3. **Refine** — only subranges whose delegate is `≥ τ` (ties kept:
//!    equal-key winners are decided by the full item order) are rescanned.
//!    Each contributing subrange emits its local top-`k_eff` as a
//!    descending run padded with [`TopKItem::min_sentinel`] — exactly the
//!    run layout [`crate::bitonic::bitonic_topk_from_runs`] merges, the
//!    same way the sharded layer merges per-device delegate lists.
//!
//! When `k ≥ c` every subrange contributes and phases 2–3 collapse to a
//! full refine (the adversarial worst case; the cost model prices it).

use crate::bitonic::{bitonic_topk, bitonic_topk_from_runs, BitonicConfig};
use crate::util::{validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};

/// Default subrange length: long enough that the delegate set is ~n/2048
/// (tiny), short enough that refining `k` subranges stays well under one
/// full input scan.
pub const DEFAULT_SUBRANGE: usize = 2048;

/// Configuration for delegate select.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelegateConfig {
    /// Subrange (delegate granularity) length in items.
    pub subrange: usize,
    /// Configuration for the bitonic passes (delegate top-k and the
    /// final run merge).
    pub bitonic: BitonicConfig,
}

impl Default for DelegateConfig {
    fn default() -> Self {
        DelegateConfig {
            subrange: DEFAULT_SUBRANGE,
            bitonic: BitonicConfig::default(),
        }
    }
}

/// The cached per-subrange delegate index: delegate `i` is the maximum
/// item (full item order) of input subrange `i`. Attached to the input
/// buffer with [`GpuBuffer::attach_aux`], so it survives exactly as long
/// as the buffer contents do.
pub struct DelegateIndex<T: TopKItem> {
    delegates: GpuBuffer<T>,
    subrange: usize,
    n: usize,
}

impl<T: TopKItem> DelegateIndex<T> {
    /// Number of subranges (= delegates).
    pub fn num_subranges(&self) -> usize {
        self.delegates.len()
    }

    /// Number of input rows the index covers.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Subrange (delegate granularity) length the index was built at.
    pub fn subrange(&self) -> usize {
        self.subrange
    }
}

/// Extraction pass: reads the whole input once, writes one delegate per
/// subrange.
struct DelegateExtractKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    n: usize,
    subrange: usize,
    delegates: GpuBuffer<T>,
}

impl<T: TopKItem> Kernel for DelegateExtractKernel<T> {
    fn name(&self) -> &'static str {
        "delegate_extract"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        // one block stands in for the whole grid: traffic is charged in
        // aggregate and the reduction is done functionally (the same
        // convention as the sort/select kernels)
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "extract",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("delegates", &self.delegates),
                    elems: self.delegates.len(),
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        blk.bulk_global_read((self.n * T::SIZE_BYTES) as u64);
        blk.bulk_global_write((self.delegates.len() * T::SIZE_BYTES) as u64);
        blk.bulk_ops(self.n as u64);
        let v = self.input.to_vec();
        let dels: Vec<T> = v[..self.n]
            .chunks(self.subrange)
            .map(|chunk| {
                let mut best = chunk[0];
                for item in &chunk[1..] {
                    if best.item_lt(item) {
                        best = *item;
                    }
                }
                best
            })
            .collect();
        self.delegates.upload(&dels);
    }
}

/// Incremental extension pass: copies the still-valid full-subrange
/// delegates from the prior index and rescans only the straddling
/// subrange (the one the old tail row fell inside, if partial) plus the
/// purely-new tail — the append-path twin of [`DelegateExtractKernel`]
/// that reads `O(delta)` instead of `O(n)`.
struct DelegateExtendKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    old: GpuBuffer<T>,
    /// Number of prior delegates whose subranges are untouched by the
    /// append (full subranges entirely below the old row count).
    keep: usize,
    subrange: usize,
    n: usize,
    delegates: GpuBuffer<T>,
}

impl<T: TopKItem> Kernel for DelegateExtendKernel<T> {
    fn name(&self) -> &'static str {
        "delegate_extend"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        let tail_lo = self.keep * self.subrange;
        Some(AccessSpec::bulk(
            "extend",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.n - tail_lo,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("old_delegates", &self.old),
                    elems: self.keep,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("delegates", &self.delegates),
                    elems: self.delegates.len(),
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let tail_lo = self.keep * self.subrange;
        let tail = self.n - tail_lo;
        blk.bulk_global_read((tail * T::SIZE_BYTES) as u64);
        blk.bulk_global_read((self.keep * T::SIZE_BYTES) as u64);
        blk.bulk_global_write((self.delegates.len() * T::SIZE_BYTES) as u64);
        blk.bulk_ops(tail as u64);
        let mut dels = self.old.read_range(0..self.keep);
        for chunk in self.input.read_range(tail_lo..self.n).chunks(self.subrange) {
            let mut best = chunk[0];
            for item in &chunk[1..] {
                if best.item_lt(item) {
                    best = *item;
                }
            }
            dels.push(best);
        }
        self.delegates.upload(&dels);
    }
}

/// Threshold scan: compacts the ids of subranges whose delegate is not
/// dominated by the k-th best delegate (ties kept — an equal key can
/// still win on the item order's id tie-break).
struct ThresholdScanKernel<T: TopKItem> {
    delegates: GpuBuffer<T>,
    /// The k-th best delegate (τ).
    threshold: T,
    /// Compacted contributing subrange ids (ascending).
    ids: GpuBuffer<u32>,
    /// Out-param: number of contributing subranges.
    count: GpuBuffer<f64>,
}

impl<T: TopKItem> Kernel for ThresholdScanKernel<T> {
    fn name(&self) -> &'static str {
        "delegate_threshold_scan"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "scan",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("delegates", &self.delegates),
                    elems: self.delegates.len(),
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("ids", &self.ids),
                    elems: self.ids.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("count", &self.count),
                    elems: 1,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let c = self.delegates.len();
        blk.bulk_global_read((c * T::SIZE_BYTES) as u64);
        blk.bulk_atomics(c as u64);
        blk.bulk_ops(c as u64);
        let dels = self.delegates.to_vec();
        let tau = self.threshold.key_bits();
        let winners: Vec<u32> = dels
            .iter()
            .enumerate()
            .filter(|(_, d)| d.key_bits() >= tau)
            .map(|(i, _)| i as u32)
            .collect();
        // the compaction zero-fills its whole scratch buffer, so the
        // charge is exactly the declared `c` elements (the contract that
        // keeps the static sector prediction bit-exact)
        blk.bulk_global_write((c * 4) as u64);
        let mut ids = vec![0u32; c];
        ids[..winners.len()].copy_from_slice(&winners);
        self.ids.upload(&ids);
        blk.bulk_global_write(8);
        self.count.set(0, winners.len() as f64);
    }
}

/// Refinement pass: rescans only the contributing subranges, emitting
/// each one's local top-`k_eff` (full item order, descending) as a
/// min-sentinel-padded run — the input layout of
/// [`bitonic_topk_from_runs`].
struct RefineKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    ids: GpuBuffer<u32>,
    count: usize,
    subrange: usize,
    n: usize,
    k_eff: usize,
    /// Exact number of input elements the contributing subranges hold.
    read_elems: usize,
    runs: GpuBuffer<T>,
}

impl<T: TopKItem> Kernel for RefineKernel<T> {
    fn name(&self) -> &'static str {
        "delegate_refine"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "refine",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.read_elems,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("ids", &self.ids),
                    elems: self.count,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("runs", &self.runs),
                    elems: self.count * self.k_eff,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        // one charge per declared bulk access, so the per-call sector
        // rounding matches the static prediction exactly
        blk.bulk_global_read((self.read_elems * T::SIZE_BYTES) as u64);
        blk.bulk_global_read((self.count * 4) as u64);
        blk.bulk_global_write((self.count * self.k_eff * T::SIZE_BYTES) as u64);
        blk.bulk_ops(2 * self.read_elems as u64);
        let input = self.input.to_vec();
        let ids = self.ids.read_range(0..self.count);
        let mut runs = self.runs.to_vec();
        for (j, &sub) in ids.iter().enumerate() {
            let lo = sub as usize * self.subrange;
            let hi = (lo + self.subrange).min(self.n);
            let mut local: Vec<T> = input[lo..hi].to_vec();
            // descending by the full item order (key, then id tie-break),
            // so equal-key winners match every other algorithm exactly
            local.sort_unstable_by(|a, b| {
                if a.item_lt(b) {
                    std::cmp::Ordering::Greater
                } else if b.item_lt(a) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            });
            local.truncate(self.k_eff);
            local.resize(self.k_eff, T::min_sentinel());
            runs[j * self.k_eff..(j + 1) * self.k_eff].copy_from_slice(&local);
        }
        self.runs.upload(&runs);
    }
}

/// Returns the input's delegate index at `cfg.subrange` granularity,
/// building (and caching) it with one extraction launch if the buffer
/// has no valid index — because it was never built, the buffer contents
/// changed since, or the cached granularity differs.
fn obtain_index<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    cfg: &DelegateConfig,
) -> Result<std::rc::Rc<DelegateIndex<T>>, TopKError> {
    let n = input.len();
    if let Some(idx) = input.aux::<DelegateIndex<T>>() {
        if idx.subrange == cfg.subrange && idx.n == n {
            return Ok(idx);
        }
    }
    let c = n.div_ceil(cfg.subrange);
    let delegates = dev.alloc_filled::<T>(c, T::min_sentinel());
    dev.launch(&DelegateExtractKernel {
        input: input.clone(),
        n,
        subrange: cfg.subrange,
        delegates: delegates.clone(),
    })?;
    input.attach_aux(DelegateIndex {
        delegates,
        subrange: cfg.subrange,
        n,
    });
    Ok(input
        .aux::<DelegateIndex<T>>()
        .expect("attached at the current version"))
}

/// Builds (or refreshes) the delegate index for `input` so subsequent
/// [`delegate_select_topk`] calls run warm — the steady-state serving
/// regime the traffic claim measures. Idempotent while the buffer is
/// unmodified: a second call launches nothing.
pub fn warm_delegate_index<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    cfg: DelegateConfig,
) -> Result<(), TopKError> {
    if input.is_empty() {
        return Err(TopKError::EmptyInput);
    }
    obtain_index(dev, input, &cfg).map(|_| ())
}

/// Re-attaches a delegate index to `input` after an append, touching
/// only the appended region: the caller asserts that the first
/// [`DelegateIndex::rows`] elements of `input` are exactly the data the
/// `prior` index was built over, with everything after them new. Full
/// subranges entirely below the old row count keep their cached
/// delegates; the straddling subrange (if the old row count was not a
/// subrange multiple) and the new tail are rescanned — `O(delta)`
/// traffic instead of the `O(n)` full extraction.
///
/// The result is bit-identical to a cold rebuild: a maximum over an
/// untouched subrange cannot change, and every subrange an append can
/// touch is recomputed from the live input. An incompatible prior
/// (different granularity, or covering more rows than `input` holds)
/// falls back to [`warm_delegate_index`]'s full extraction.
pub fn extend_delegate_index<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    prior: &DelegateIndex<T>,
    cfg: DelegateConfig,
) -> Result<(), TopKError> {
    if input.is_empty() {
        return Err(TopKError::EmptyInput);
    }
    let n = input.len();
    if prior.subrange != cfg.subrange || prior.n > n {
        return warm_delegate_index(dev, input, cfg);
    }
    if prior.n == n {
        // nothing appended: the prior delegates are the index
        input.attach_aux(DelegateIndex {
            delegates: prior.delegates.clone(),
            subrange: prior.subrange,
            n,
        });
        return Ok(());
    }
    let keep = prior.n / cfg.subrange;
    let c = n.div_ceil(cfg.subrange);
    let delegates = dev.alloc_filled::<T>(c, T::min_sentinel());
    dev.launch(&DelegateExtendKernel {
        input: input.clone(),
        old: prior.delegates.clone(),
        keep,
        subrange: cfg.subrange,
        n,
        delegates: delegates.clone(),
    })?;
    input.attach_aux(DelegateIndex {
        delegates,
        subrange: cfg.subrange,
        n,
    });
    Ok(())
}

/// Top-k via delegate select.
pub fn delegate_select_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
    cfg: DelegateConfig,
) -> Result<TopKResult<T>, TopKError> {
    let k_req = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();

    let idx = obtain_index(dev, input, &cfg)?;
    let c = idx.delegates.len();
    let k_eff = k_req.next_power_of_two();

    // which subranges can still contribute?
    let (ids, count) = if c > k_req {
        // top-k over the delegate set; its k-th item is the threshold
        let del_top = bitonic_topk(dev, &idx.delegates, k_req, cfg.bitonic)?;
        let threshold = del_top.items[k_req - 1];
        let ids = dev.alloc::<u32>(c);
        let count = dev.alloc::<f64>(1);
        dev.launch(&ThresholdScanKernel {
            delegates: idx.delegates.clone(),
            threshold,
            ids: ids.clone(),
            count: count.clone(),
        })?;
        (ids, count.get(0) as usize)
    } else {
        // k ≥ c: every subrange contributes; skip the delegate top-k
        let all: Vec<u32> = (0..c as u32).collect();
        let ids = dev.alloc::<u32>(c);
        ids.upload(&all);
        (ids, c)
    };

    // refine the contributing subranges into k_eff-sized runs
    let id_list = ids.read_range(0..count);
    let read_elems: usize = id_list
        .iter()
        .map(|&sub| {
            let lo = sub as usize * cfg.subrange;
            (lo + cfg.subrange).min(n) - lo
        })
        .sum();
    let runs = dev.alloc_filled::<T>(count * k_eff, T::min_sentinel());
    dev.launch(&RefineKernel {
        input: input.clone(),
        ids,
        count,
        subrange: cfg.subrange,
        n,
        k_eff,
        read_elems,
        runs: runs.clone(),
    })?;

    let merged = bitonic_topk_from_runs(dev, &runs, count * k_eff, k_req, cfg.bitonic)?;
    Ok(cap.finish(dev, merged.items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, BucketKiller, Distribution, Increasing, Kv, Uniform};
    use simt::LaunchWindow;

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn matches_reference_across_shapes() {
        let dev = Device::titan_x();
        for (n, k) in [
            (1usize << 16, 1usize),
            (1 << 16, 64),
            (1 << 14, 300),
            (3000, 8),
            (10, 64), // k > n clamps
            (1, 1),
        ] {
            let data: Vec<f32> = Uniform.generate(n, 7);
            let input = dev.upload(&data);
            let r = delegate_select_topk(&dev, &input, k, DelegateConfig::default()).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, k.min(n))),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn matches_reference_on_adversarial_distributions() {
        let dev = Device::titan_x();
        let n = 1usize << 14;
        for (name, data) in [
            ("sorted", Increasing.generate(n, 9)),
            ("bucket-killer", BucketKiller.generate(n, 9)),
            ("all-equal", vec![1.5f32; n]),
        ] {
            let input = dev.upload(&data);
            for k in [1usize, 32, 100] {
                let r = delegate_select_topk(&dev, &input, k, DelegateConfig::default()).unwrap();
                assert_eq!(
                    keybits(&r.items),
                    keybits(&reference_topk(&data, k)),
                    "{name} k={k}"
                );
            }
        }
    }

    #[test]
    fn duplicate_keys_tie_break_by_id() {
        // the same regime as backend conformance: equal keys must resolve
        // to the smallest row ids, exactly like the bitonic oracle
        let dev = Device::titan_x();
        let data: Vec<Kv<u32>> = (0..20_000u32).map(|i| Kv::new(i % 37, i)).collect();
        let input = dev.upload(&data);
        let r = delegate_select_topk(&dev, &input, 100, DelegateConfig::default()).unwrap();
        let oracle = bitonic_topk(&dev, &input, 100, BitonicConfig::default()).unwrap();
        let sig = |v: &[Kv<u32>]| v.iter().map(|kv| (kv.key, kv.value)).collect::<Vec<_>>();
        assert_eq!(sig(&r.items), sig(&oracle.items));
    }

    #[test]
    fn warm_queries_skip_extraction_and_slash_traffic() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 18, 21);
        let input = dev.upload(&data);

        // cold: extraction runs inside the query
        let cold = delegate_select_topk(&dev, &input, 32, DelegateConfig::default()).unwrap();
        let cold_bytes = LaunchWindow::from_reports(&cold.reports)
            .stats
            .global_bytes();
        assert!(cold.reports.iter().any(|r| r.name == "delegate_extract"));

        // warm: the cached index is reused; no extraction launch
        let warm = delegate_select_topk(&dev, &input, 32, DelegateConfig::default()).unwrap();
        let warm_bytes = LaunchWindow::from_reports(&warm.reports)
            .stats
            .global_bytes();
        assert!(warm.reports.iter().all(|r| r.name != "delegate_extract"));
        assert_eq!(keybits(&cold.items), keybits(&warm.items));
        assert!(
            (warm_bytes as f64) < 0.25 * cold_bytes as f64,
            "warm {warm_bytes} should be well under cold {cold_bytes}"
        );

        // mutating the input invalidates the cache: extraction returns
        input.set(0, f32::MAX);
        let fresh = delegate_select_topk(&dev, &input, 1, DelegateConfig::default()).unwrap();
        assert!(fresh.reports.iter().any(|r| r.name == "delegate_extract"));
        assert_eq!(fresh.items[0], f32::MAX);
    }

    #[test]
    fn warm_helper_is_idempotent() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 3);
        let input = dev.upload(&data);
        let before = dev.log_len();
        warm_delegate_index(&dev, &input, DelegateConfig::default()).unwrap();
        assert_eq!(dev.log_len(), before + 1, "one extraction launch");
        warm_delegate_index(&dev, &input, DelegateConfig::default()).unwrap();
        assert_eq!(dev.log_len(), before + 1, "second warm launches nothing");
    }

    fn sig<K: datagen::SortKey>(v: &[Kv<K>]) -> Vec<(K, u32)> {
        v.iter().map(|kv| (kv.key, kv.value)).collect()
    }

    #[test]
    fn extended_index_matches_cold_rebuild_bit_for_bit() {
        // duplicate-heavy keys with a non-multiple old row count, so the
        // straddling subrange and the id tie-breaks are both exercised
        let dev = Device::titan_x();
        let s = DEFAULT_SUBRANGE;
        let n0 = 5 * s + 731;
        let delta = 2 * s + 17;
        let data: Vec<Kv<u32>> = (0..(n0 + delta) as u32)
            .map(|i| Kv::new(i % 97, i))
            .collect();

        // prior index over the first n0 rows
        let old_input = dev.upload(&data[..n0]);
        warm_delegate_index(&dev, &old_input, DelegateConfig::default()).unwrap();
        let prior = old_input.aux::<DelegateIndex<Kv<u32>>>().unwrap();

        // the appended buffer: same prefix, delta new rows
        let input = dev.upload(&data);
        let before = dev.log_len();
        extend_delegate_index(&dev, &input, &prior, DelegateConfig::default()).unwrap();
        let reports = dev.log_since(before);
        assert!(reports.iter().any(|r| r.name == "delegate_extend"));
        assert!(reports.iter().all(|r| r.name != "delegate_extract"));

        // bit-identical to a cold rebuild (keys AND row ids)
        let cold_input = dev.upload(&data);
        warm_delegate_index(&dev, &cold_input, DelegateConfig::default()).unwrap();
        let cold = cold_input.aux::<DelegateIndex<Kv<u32>>>().unwrap();
        let warm = input.aux::<DelegateIndex<Kv<u32>>>().unwrap();
        assert_eq!(warm.n, cold.n);
        assert_eq!(sig(&warm.delegates.to_vec()), sig(&cold.delegates.to_vec()));

        // and the extended index serves queries identically to the oracle
        let r = delegate_select_topk(&dev, &input, 64, DelegateConfig::default()).unwrap();
        assert!(r.reports.iter().all(|r| r.name != "delegate_extract"));
        let oracle = bitonic_topk(&dev, &input, 64, BitonicConfig::default()).unwrap();
        assert_eq!(sig(&r.items), sig(&oracle.items));
    }

    #[test]
    fn extension_reads_only_the_delta() {
        let dev = Device::titan_x();
        let n0 = 1usize << 18;
        let delta = 1usize << 12;
        let data: Vec<f32> = Uniform.generate(n0 + delta, 33);

        let old_input = dev.upload(&data[..n0]);
        let before = dev.log_len();
        warm_delegate_index(&dev, &old_input, DelegateConfig::default()).unwrap();
        let cold_bytes = LaunchWindow::from_reports(&dev.log_since(before))
            .stats
            .global_bytes();
        let prior = old_input.aux::<DelegateIndex<f32>>().unwrap();

        let input = dev.upload(&data);
        let before = dev.log_len();
        extend_delegate_index(&dev, &input, &prior, DelegateConfig::default()).unwrap();
        let extend_bytes = LaunchWindow::from_reports(&dev.log_since(before))
            .stats
            .global_bytes();
        assert!(
            (extend_bytes as f64) < 0.1 * cold_bytes as f64,
            "extension {extend_bytes} should be a small fraction of the {cold_bytes} full scan"
        );

        // an unchanged-length prior re-attaches without launching
        let prior = input.aux::<DelegateIndex<f32>>().unwrap();
        input.set(0, data[0]); // bump the version without changing data
        let before = dev.log_len();
        extend_delegate_index(&dev, &input, &prior, DelegateConfig::default()).unwrap();
        assert_eq!(dev.log_len(), before, "no launch on a zero-row extension");
        assert!(input.aux::<DelegateIndex<f32>>().is_some());
    }

    #[test]
    fn incompatible_prior_falls_back_to_full_extraction() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 41);
        let input = dev.upload(&data[..1 << 13]);
        warm_delegate_index(&dev, &input, DelegateConfig::default()).unwrap();
        let prior = input.aux::<DelegateIndex<f32>>().unwrap();

        // granularity mismatch: the prior cannot be reused
        let grown = dev.upload(&data);
        let small = DelegateConfig {
            subrange: 256,
            ..DelegateConfig::default()
        };
        let before = dev.log_len();
        extend_delegate_index(&dev, &grown, &prior, small).unwrap();
        let reports = dev.log_since(before);
        assert!(reports.iter().any(|r| r.name == "delegate_extract"));
        let idx = grown.aux::<DelegateIndex<f32>>().unwrap();
        assert_eq!(idx.subrange(), 256);
        assert_eq!(idx.rows(), data.len());
        let r = delegate_select_topk(&dev, &grown, 32, small).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&data, 32)));
    }

    #[test]
    fn subrange_granularity_is_part_of_the_cache_key() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 5);
        let input = dev.upload(&data);
        let small = DelegateConfig {
            subrange: 256,
            ..DelegateConfig::default()
        };
        warm_delegate_index(&dev, &input, DelegateConfig::default()).unwrap();
        let before = dev.log_len();
        // a different granularity must rebuild, not reuse
        let r = delegate_select_topk(&dev, &input, 16, small).unwrap();
        assert!(r.reports.iter().any(|r| r.name == "delegate_extract"));
        assert!(dev.log_len() > before);
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&data, 16)));
    }
}
