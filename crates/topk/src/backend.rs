//! The execution-backend abstraction: one top-k surface, two engines.
//!
//! Everything above the kernels (the qdb engine, the bench harness, the
//! examples) talks to a [`Backend`]: upload a slice, get a
//! [`BackendBuffer`] handle, run a [`TopKRequest`], get the winners plus
//! an [`ExecReport`]. Two implementations ship (the Candle idiom — a
//! device/backend pair with per-backend storage behind one API):
//!
//! * [`SimtBackend`] wraps the `simt` simulator. It funnels into the same
//!   `dispatch` every existing entry point uses, so the kernel sequence —
//!   and therefore every `sim_*` metric, sanitizer finding, fault-plan
//!   interaction, and stream placement — is **bit-identical** to calling
//!   [`TopKRequest::run`] directly. Its report carries modeled `sim_*`
//!   metrics (deterministic) alongside host wall-clock.
//! * [`CpuBackend`] is a real engine: `std::thread::scope` parallelism
//!   over the `topk-cpu` kernels (parallel chunked local top-k, then a
//!   sequential merge). Its report carries `host_*` wall-clock only —
//!   there is nothing modeled about it.
//!
//! Runtime backend selection goes through the enum-dispatched
//! [`ExecBackend`] (the trait's generic methods keep it from being
//! `dyn`-compatible, exactly like Candle's `Device` enum solves it).
//!
//! Simulator-only features degrade with *typed* errors, never silently:
//! a request pinned to a simt stream returns
//! [`TopKError::UnsupportedOnBackend`] on the CPU, and handing a backend
//! the other backend's buffer returns [`TopKError::BackendMismatch`].

use std::rc::Rc;
use std::time::{Duration, Instant};

use datagen::{rev_slice, TopKItem};
use simt::{Device, GpuBuffer, LaunchReport, SimTime};
use topk_cpu::{CpuBitonic, CpuDelegateSelect, CpuRadixSelect, CpuSort, CpuTopK, HandPq, StlPq};

use crate::{dispatch, KeyOrder, TopKAlgorithm, TopKError, TopKRequest, TopKResult};

/// Which engine a backend (or a buffer) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The `simt` simulator: modeled time, bit-exact metrics.
    Simt,
    /// Real multi-threaded CPU execution: wall-clock time.
    Cpu,
}

impl BackendKind {
    /// Stable lower-case name (`"simt"` / `"cpu"`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Simt => "simt",
            BackendKind::Cpu => "cpu",
        }
    }
}

/// A backend-owned input buffer: simulated device memory or pinned host
/// memory, behind one handle (per-backend storage, Candle-style).
/// Cloning is cheap (reference-counted) for both variants.
#[derive(Debug, Clone)]
pub enum BackendBuffer<T: TopKItem> {
    /// Simulated device memory, usable by [`SimtBackend`].
    Simt(GpuBuffer<T>),
    /// Host memory, usable by [`CpuBackend`].
    Cpu(Rc<Vec<T>>),
}

impl<T: TopKItem> BackendBuffer<T> {
    /// Which backend this buffer belongs to.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendBuffer::Simt(_) => BackendKind::Simt,
            BackendBuffer::Cpu(_) => BackendKind::Cpu,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BackendBuffer::Simt(b) => b.len(),
            BackendBuffer::Cpu(v) => v.len(),
        }
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the contents back to a host `Vec` (backend-agnostic).
    pub fn to_vec(&self) -> Vec<T> {
        match self {
            BackendBuffer::Simt(b) => b.to_vec(),
            BackendBuffer::Cpu(v) => v.as_ref().clone(),
        }
    }
}

/// The simulator half of an [`ExecReport`]: modeled kernel time plus the
/// per-launch reports the `sim_*` metrics derive from. Deterministic and
/// bit-exact — identical inputs produce identical numbers on every run.
#[derive(Debug, Clone)]
pub struct SimExec {
    /// Total modeled device time across the launches.
    pub time: SimTime,
    /// Per-kernel launch reports, in launch order.
    pub reports: Vec<LaunchReport>,
}

/// What an execution cost, in each backend's native currency.
///
/// Every run reports `host_wall` (real elapsed time — on the simulator
/// this is the cost of *simulating*, not a paper claim). Simulator runs
/// additionally report the modeled [`SimExec`]; CPU runs report the
/// worker-thread count. Metric names follow the bench-report convention:
/// `sim_*` metrics are bit-exact and diffed exactly, `host_*` metrics
/// are wall-clock and diffed with direction-aware tolerances.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// The executing backend.
    pub backend: BackendKind,
    /// Real elapsed host time for the call.
    pub host_wall: Duration,
    /// Modeled metrics — `Some` exactly when `backend` is simt.
    pub sim: Option<SimExec>,
    /// Worker threads used — `Some` exactly when `backend` is CPU.
    pub threads: Option<usize>,
}

impl ExecReport {
    /// The report as `(metric name, value)` cells ready for a bench
    /// report: `sim_*` from the modeled run, `host_*` from wall-clock.
    pub fn metric_cells(&self) -> Vec<(String, f64)> {
        let mut cells = Vec::new();
        if let Some(sim) = &self.sim {
            cells.push(("sim_time_ms".to_string(), sim.time.seconds() * 1e3));
            let bytes: u64 = sim.reports.iter().map(|r| r.stats.global_bytes()).sum();
            cells.push(("sim_global_bytes".to_string(), bytes as f64));
            cells.push(("sim_launches".to_string(), sim.reports.len() as f64));
        }
        cells.push((
            "host_wall_ms".to_string(),
            self.host_wall.as_secs_f64() * 1e3,
        ));
        if let Some(t) = self.threads {
            cells.push(("host_threads".to_string(), t as f64));
        }
        cells
    }
}

/// A top-k outcome from any backend: the winning items plus the cost
/// report. [`BackendTopK::into_sim_result`] recovers the classic
/// simulator-shaped [`TopKResult`] when the run was simulated.
#[derive(Debug, Clone)]
pub struct BackendTopK<T> {
    /// The `k` winners in requested key order.
    pub items: Vec<T>,
    /// What the run cost on the executing backend.
    pub report: ExecReport,
}

impl<T> BackendTopK<T> {
    /// Converts into the simulator-native [`TopKResult`] — `None` when
    /// the run had no modeled component (i.e. it ran on the CPU).
    pub fn into_sim_result(self) -> Option<TopKResult<T>> {
        let sim = self.report.sim?;
        Some(TopKResult {
            items: self.items,
            time: sim.time,
            reports: sim.reports,
        })
    }
}

/// An execution engine for top-k requests.
///
/// The contract every implementation upholds:
///
/// * `upload`/`download` round-trip exactly (no precision or ordering
///   changes);
/// * `topk` validates `k >= 1` and non-empty input with the same typed
///   errors on every backend, and returns the winners in requested key
///   order with ties broken by row id wherever the item type carries one
///   (`Kv` and friends) — so two backends agree on key signature;
/// * features a backend cannot honor fail with
///   [`TopKError::UnsupportedOnBackend`], never silently degrade;
/// * the [`ExecReport`] prices the run in the backend's native currency
///   (`sim_*` modeled, `host_*` wall-clock).
///
/// The generic methods make the trait non-`dyn`-compatible; use
/// [`ExecBackend`] where the backend is chosen at runtime.
pub trait Backend {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// Stable lower-case backend name for reports and errors.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Moves host data into a backend-owned buffer.
    fn upload<T: TopKItem>(&self, host: &[T]) -> BackendBuffer<T>;

    /// Copies a backend buffer back to the host. Fails with
    /// [`TopKError::BackendMismatch`] on the other backend's buffer.
    fn download<T: TopKItem>(&self, buf: &BackendBuffer<T>) -> Result<Vec<T>, TopKError>;

    /// Executes one top-k request against an uploaded buffer.
    fn topk<T: TopKItem>(
        &self,
        req: &TopKRequest,
        input: &BackendBuffer<T>,
    ) -> Result<BackendTopK<T>, TopKError>;
}

/// Rejects a buffer that belongs to the other backend.
fn expect_kind<T: TopKItem>(backend: BackendKind, buf: &BackendBuffer<T>) -> Result<(), TopKError> {
    if buf.kind() == backend {
        Ok(())
    } else {
        Err(TopKError::BackendMismatch {
            backend: backend.name(),
            buffer: buf.kind().name(),
        })
    }
}

/// The simulator backend: borrows a [`Device`] and funnels every request
/// through the exact same dispatch path as [`TopKRequest::run`], so the
/// modeled metrics stay bit-exact through the trait.
#[derive(Clone, Copy)]
pub struct SimtBackend<'d> {
    dev: &'d Device,
}

impl<'d> SimtBackend<'d> {
    /// A backend over the given simulated device.
    pub fn new(dev: &'d Device) -> Self {
        SimtBackend { dev }
    }

    /// The underlying simulated device — the escape hatch for
    /// simulator-only machinery (sanitizer, fault plans, streams).
    pub fn device(&self) -> &'d Device {
        self.dev
    }
}

impl Backend for SimtBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Simt
    }

    fn upload<T: TopKItem>(&self, host: &[T]) -> BackendBuffer<T> {
        BackendBuffer::Simt(self.dev.upload(host))
    }

    fn download<T: TopKItem>(&self, buf: &BackendBuffer<T>) -> Result<Vec<T>, TopKError> {
        expect_kind(BackendKind::Simt, buf)?;
        Ok(buf.to_vec())
    }

    fn topk<T: TopKItem>(
        &self,
        req: &TopKRequest,
        input: &BackendBuffer<T>,
    ) -> Result<BackendTopK<T>, TopKError> {
        expect_kind(BackendKind::Simt, input)?;
        let BackendBuffer::Simt(buf) = input else {
            unreachable!("kind checked above");
        };
        let start = Instant::now();
        let r = run_simt(req, self.dev, buf)?;
        Ok(BackendTopK {
            items: r.items,
            report: ExecReport {
                backend: BackendKind::Simt,
                host_wall: start.elapsed(),
                sim: Some(SimExec {
                    time: r.time,
                    reports: r.reports,
                }),
                threads: None,
            },
        })
    }
}

/// The one simulated execution path: order handling, stream scoping, and
/// algorithm dispatch. [`TopKRequest::run`] and [`SimtBackend::topk`]
/// both land here, which is what keeps them bit-identical.
pub(crate) fn run_simt<T: TopKItem>(
    req: &TopKRequest,
    dev: &Device,
    input: &GpuBuffer<T>,
) -> Result<TopKResult<T>, TopKError> {
    use datagen::RevView;
    let exec = || match req.order {
        KeyOrder::Largest => dispatch(req.alg, dev, input, req.k),
        KeyOrder::Smallest => {
            let mapped = input.as_rev_view();
            let r = dispatch(req.alg, dev, mapped.view(), req.k)?;
            Ok(TopKResult {
                items: r.items.into_iter().map(|x| x.0).collect(),
                time: r.time,
                reports: r.reports,
            })
        }
    };
    match req.stream {
        Some(id) => dev.stream_scope(id, exec),
        None => exec(),
    }
}

/// The real-hardware backend: scoped-thread parallelism over the
/// `topk-cpu` kernels (parallel chunked local top-k, sequential merge),
/// priced in wall-clock.
///
/// Algorithm mapping — every [`TopKAlgorithm`] has a CPU counterpart, so
/// request values are portable across backends:
///
/// | request | CPU kernel |
/// |---|---|
/// | `Sort` | [`CpuSort`] (full sort-and-choose) |
/// | `PerThread` | [`StlPq`] (library priority queue) |
/// | `PerThreadRegisters` | [`HandPq`] (hand-rolled flat heap) |
/// | `RadixSelect` | [`CpuRadixSelect`] (MSD digit histograms) |
/// | `BucketSelect` | [`CpuRadixSelect`] — the host analog of both §2.3 selection schemes; there is no meaningful CPU min/max bucketing distinct from digit selection |
/// | `Bitonic(_)` | [`CpuBitonic`] (Appendix C SIMD port; the GPU-side `BitonicConfig` does not apply) |
/// | `DelegateSelect(cfg)` | [`CpuDelegateSelect`] (chunk delegates + threshold gather at the same subrange granularity) |
#[derive(Debug, Clone, Copy)]
pub struct CpuBackend {
    threads: usize,
}

impl CpuBackend {
    /// A backend using all available cores (as reported by the OS).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A backend with an explicit worker-thread count (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        CpuBackend {
            threads: threads.max(1),
        }
    }

    /// The worker-thread count requests run with.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `alg`'s CPU counterpart over `data`.
fn run_cpu_kernel<T: TopKItem>(alg: TopKAlgorithm, data: &[T], k: usize, threads: usize) -> Vec<T> {
    let bitonic = CpuBitonic::default();
    let kernel: &dyn CpuTopK<T> = match alg {
        TopKAlgorithm::Sort => &CpuSort,
        TopKAlgorithm::PerThread => &StlPq,
        TopKAlgorithm::PerThreadRegisters => &HandPq,
        TopKAlgorithm::RadixSelect | TopKAlgorithm::BucketSelect => &CpuRadixSelect,
        TopKAlgorithm::Bitonic(_) => &bitonic,
        TopKAlgorithm::DelegateSelect(cfg) => {
            let delegate = CpuDelegateSelect {
                subrange: cfg.subrange,
            };
            return delegate.topk(data, k, threads);
        }
    };
    kernel.topk(data, k, threads)
}

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn upload<T: TopKItem>(&self, host: &[T]) -> BackendBuffer<T> {
        BackendBuffer::Cpu(Rc::new(host.to_vec()))
    }

    fn download<T: TopKItem>(&self, buf: &BackendBuffer<T>) -> Result<Vec<T>, TopKError> {
        expect_kind(BackendKind::Cpu, buf)?;
        Ok(buf.to_vec())
    }

    fn topk<T: TopKItem>(
        &self,
        req: &TopKRequest,
        input: &BackendBuffer<T>,
    ) -> Result<BackendTopK<T>, TopKError> {
        expect_kind(BackendKind::Cpu, input)?;
        let BackendBuffer::Cpu(data) = input else {
            unreachable!("kind checked above");
        };
        if req.stream.is_some() {
            return Err(TopKError::UnsupportedOnBackend {
                backend: "cpu",
                feature: "simt streams",
            });
        }
        if req.k == 0 {
            return Err(TopKError::ZeroK);
        }
        if data.is_empty() {
            return Err(TopKError::EmptyInput);
        }
        let start = Instant::now();
        let items = match req.order {
            KeyOrder::Largest => run_cpu_kernel(req.alg, data, req.k, self.threads),
            KeyOrder::Smallest => {
                // the host twin of the device path's as_rev_view: wrap
                // in the order reversal, then the largest-k kernels
                run_cpu_kernel(req.alg, &rev_slice(data), req.k, self.threads)
                    .into_iter()
                    .map(|r| r.0)
                    .collect()
            }
        };
        Ok(BackendTopK {
            items,
            report: ExecReport {
                backend: BackendKind::Cpu,
                host_wall: start.elapsed(),
                sim: None,
                threads: Some(self.threads),
            },
        })
    }
}

/// Runtime backend selection, enum-dispatched (the Candle `Device`
/// idiom): one value that is either engine, implementing [`Backend`] by
/// delegation.
pub enum ExecBackend<'d> {
    /// The simulator engine.
    Simt(SimtBackend<'d>),
    /// The real CPU engine.
    Cpu(CpuBackend),
}

impl<'d> ExecBackend<'d> {
    /// A simulator-backed engine over `dev`.
    pub fn simt(dev: &'d Device) -> Self {
        ExecBackend::Simt(SimtBackend::new(dev))
    }

    /// A CPU engine with the given worker-thread count.
    pub fn cpu(threads: usize) -> Self {
        ExecBackend::Cpu(CpuBackend::with_threads(threads))
    }

    /// The simulator backend, when this is one.
    pub fn as_simt(&self) -> Option<&SimtBackend<'d>> {
        match self {
            ExecBackend::Simt(b) => Some(b),
            ExecBackend::Cpu(_) => None,
        }
    }

    /// The CPU backend, when this is one.
    pub fn as_cpu(&self) -> Option<&CpuBackend> {
        match self {
            ExecBackend::Cpu(b) => Some(b),
            ExecBackend::Simt(_) => None,
        }
    }
}

impl Backend for ExecBackend<'_> {
    fn kind(&self) -> BackendKind {
        match self {
            ExecBackend::Simt(b) => b.kind(),
            ExecBackend::Cpu(b) => b.kind(),
        }
    }

    fn upload<T: TopKItem>(&self, host: &[T]) -> BackendBuffer<T> {
        match self {
            ExecBackend::Simt(b) => b.upload(host),
            ExecBackend::Cpu(b) => b.upload(host),
        }
    }

    fn download<T: TopKItem>(&self, buf: &BackendBuffer<T>) -> Result<Vec<T>, TopKError> {
        match self {
            ExecBackend::Simt(b) => b.download(buf),
            ExecBackend::Cpu(b) => b.download(buf),
        }
    }

    fn topk<T: TopKItem>(
        &self,
        req: &TopKRequest,
        input: &BackendBuffer<T>,
    ) -> Result<BackendTopK<T>, TopKError> {
        match self {
            ExecBackend::Simt(b) => b.topk(req, input),
            ExecBackend::Cpu(b) => b.topk(req, input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{Distribution, Kv, Uniform};

    #[test]
    fn both_backends_agree_through_the_trait() {
        let dev = Device::titan_x();
        let simt = ExecBackend::simt(&dev);
        let cpu = ExecBackend::cpu(4);
        let data: Vec<f32> = Uniform.generate(1 << 12, 9);
        let req = TopKRequest::largest(16);
        let a = simt.topk(&req, &simt.upload(&data)).unwrap();
        let b = cpu.topk(&req, &cpu.upload(&data)).unwrap();
        let ka: Vec<u32> = a.items.iter().map(|x| x.key_bits()).collect();
        let kb: Vec<u32> = b.items.iter().map(|x| x.key_bits()).collect();
        assert_eq!(ka, kb);
        assert!(a.report.sim.is_some() && a.report.threads.is_none());
        assert!(b.report.sim.is_none() && b.report.threads == Some(4));
    }

    #[test]
    fn metric_cells_follow_the_naming_convention() {
        let dev = Device::titan_x();
        let simt = SimtBackend::new(&dev);
        let data: Vec<f32> = Uniform.generate(1 << 10, 2);
        let out = simt
            .topk(&TopKRequest::largest(4), &simt.upload(&data))
            .unwrap();
        let cells = out.report.metric_cells();
        assert!(cells.iter().any(|(n, _)| n == "sim_time_ms"));
        assert!(cells.iter().any(|(n, _)| n == "host_wall_ms"));
        for (name, _) in &cells {
            assert!(
                name.starts_with("sim_") || name.starts_with("host_"),
                "{name}"
            );
        }
        let cpu = CpuBackend::with_threads(2);
        let out = cpu
            .topk(&TopKRequest::largest(4), &cpu.upload(&data))
            .unwrap();
        let cells = out.report.metric_cells();
        assert!(cells.iter().all(|(n, _)| !n.starts_with("sim_")));
        assert!(cells.iter().any(|(n, _)| n == "host_threads"));
    }

    #[test]
    fn mismatched_buffers_are_typed_errors() {
        let dev = Device::titan_x();
        let simt = SimtBackend::new(&dev);
        let cpu = CpuBackend::with_threads(1);
        let sim_buf = simt.upload(&[1.0f32, 2.0]);
        let cpu_buf = cpu.upload(&[1.0f32, 2.0]);
        assert_eq!(
            cpu.topk(&TopKRequest::largest(1), &sim_buf).unwrap_err(),
            TopKError::BackendMismatch {
                backend: "cpu",
                buffer: "simt"
            }
        );
        assert_eq!(
            simt.topk(&TopKRequest::largest(1), &cpu_buf).unwrap_err(),
            TopKError::BackendMismatch {
                backend: "simt",
                buffer: "cpu"
            }
        );
        assert!(simt.download(&cpu_buf).is_err());
        assert!(cpu.download(&sim_buf).is_err());
    }

    #[test]
    fn streams_are_unsupported_on_cpu() {
        let dev = Device::titan_x();
        let st = dev.create_stream();
        let cpu = CpuBackend::with_threads(2);
        let buf = cpu.upload(&[3.0f32, 1.0, 2.0]);
        let err = cpu
            .topk(&TopKRequest::largest(2).on_stream(st.id()), &buf)
            .unwrap_err();
        assert_eq!(
            err,
            TopKError::UnsupportedOnBackend {
                backend: "cpu",
                feature: "simt streams",
            }
        );
        assert!(err.to_string().contains("cpu"));
    }

    #[test]
    fn cpu_smallest_k_and_tie_break() {
        let cpu = CpuBackend::with_threads(3);
        let data: Vec<Kv<u32>> = (0..4096u32).map(|i| Kv::new(i % 97, i)).collect();
        let buf = cpu.upload(&data);
        let low = cpu.topk(&TopKRequest::smallest(5), &buf).unwrap();
        assert!(low.items.windows(2).all(|w| w[0].key <= w[1].key));
        assert_eq!(low.items[0].key, 0);
        let high = cpu.topk(&TopKRequest::largest(5), &buf).unwrap();
        assert!(high.items.iter().all(|kv| kv.key == 96));
    }

    #[test]
    fn upload_download_roundtrip() {
        let dev = Device::titan_x();
        for be in [ExecBackend::simt(&dev), ExecBackend::cpu(2)] {
            let data = vec![4u32, 1, 9];
            let buf = be.upload(&data);
            assert_eq!(buf.len(), 3);
            assert!(!buf.is_empty());
            assert_eq!(be.download(&buf).unwrap(), data);
            assert_eq!(buf.to_vec(), data);
        }
    }
}
