//! Out-of-core top-k: data larger than device memory (the Section 4.3
//! discussion point).
//!
//! The paper observes that top-k's *reductive* nature makes oversubscribed
//! inputs easy: process the data in memory-sized chunks, keep each chunk's
//! top-k, and reduce the concatenated winners — overlapping each chunk's
//! PCI-E transfer with the previous chunk's computation, as GPU sorts do.
//!
//! This module implements exactly that on the simulator: transfers are
//! timed against [`simt::DeviceSpec::pcie_bw`], chunk compute against the
//! usual kernel model, and the modeled wall time composes them either
//! serially or double-buffered (overlapped).

use crate::bitonic::{bitonic_topk, BitonicConfig};
use crate::util::sort_desc;
use crate::TopKError;
use datagen::TopKItem;
use simt::{Device, SimTime};

/// Configuration for the chunked pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedConfig {
    /// Elements per chunk; `None` sizes chunks to a quarter of device
    /// memory (leaving room for the working buffers and double buffering).
    pub chunk_elems: Option<usize>,
    /// Overlap transfers with computation (double buffering).
    pub overlap: bool,
    /// Bitonic configuration for the per-chunk top-k.
    pub bitonic: BitonicConfig,
}

impl Default for ChunkedConfig {
    fn default() -> Self {
        Self {
            chunk_elems: None,
            overlap: true,
            bitonic: BitonicConfig::default(),
        }
    }
}

/// Result of a chunked top-k, with the time decomposition.
#[derive(Debug, Clone)]
pub struct ChunkedResult<T> {
    /// The global top-k, descending.
    pub items: Vec<T>,
    /// Number of chunks processed.
    pub chunks: usize,
    /// Total device compute time (all chunk kernels + the final reduce).
    pub compute_time: SimTime,
    /// Total host→device transfer time.
    pub transfer_time: SimTime,
    /// Modeled end-to-end wall time: serial sum, or the double-buffered
    /// pipeline `max(transfer, compute)` composition when overlapped.
    pub wall_time: SimTime,
}

/// Top-k over host data of arbitrary size, streamed through the device in
/// chunks.
///
/// # Errors
/// Propagates kernel launch failures; `k` must fit a single chunk.
pub fn chunked_bitonic_topk<T: TopKItem>(
    host_data: &[T],
    k: usize,
    dev: &Device,
    cfg: ChunkedConfig,
) -> Result<ChunkedResult<T>, TopKError> {
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if host_data.is_empty() {
        return Err(TopKError::EmptyInput);
    }
    let spec = *dev.spec();
    let chunk = cfg
        .chunk_elems
        .unwrap_or(spec.global_mem_bytes / 4 / T::SIZE_BYTES)
        .max(k.next_power_of_two() * 2)
        .min(host_data.len());

    let mut per_chunk_compute: Vec<f64> = Vec::new();
    let mut per_chunk_transfer: Vec<f64> = Vec::new();
    let mut winners: Vec<T> = Vec::new();

    for piece in host_data.chunks(chunk) {
        per_chunk_transfer.push(spec.transfer_seconds(std::mem::size_of_val(piece)));
        let input = dev
            .try_upload(piece)
            .map_err(|_| TopKError::Launch(simt::LaunchError::EmptyLaunch))?;
        let r = bitonic_topk(dev, &input, k.min(piece.len()), cfg.bitonic)?;
        per_chunk_compute.push(r.time.seconds());
        winners.extend_from_slice(&r.items);
    }
    let chunks = per_chunk_compute.len();

    // final reduction over the concatenated winners (typically tiny)
    let mut final_compute = 0.0;
    let items = if winners.len() > k {
        let input = dev
            .try_upload(&winners)
            .map_err(|_| TopKError::Launch(simt::LaunchError::EmptyLaunch))?;
        let r = bitonic_topk(dev, &input, k.min(winners.len()), cfg.bitonic)?;
        final_compute = r.time.seconds();
        per_chunk_transfer.push(0.0); // winners stayed on device in a real pipeline
        r.items
    } else {
        sort_desc(&mut winners);
        winners
    };

    let compute_total: f64 = per_chunk_compute.iter().sum::<f64>() + final_compute;
    let transfer_total: f64 = per_chunk_transfer.iter().sum();
    let wall = if cfg.overlap {
        // double buffering: chunk i's transfer hides behind chunk i−1's
        // compute; the pipeline costs the first transfer, then the max of
        // each overlapping (compute_i, transfer_{i+1}) pair, then the tail
        let mut t = per_chunk_transfer.first().copied().unwrap_or(0.0);
        for (i, compute) in per_chunk_compute.iter().enumerate() {
            let next_transfer = per_chunk_transfer.get(i + 1).copied().unwrap_or(0.0);
            t += compute.max(next_transfer);
        }
        t + final_compute
    } else {
        compute_total + transfer_total
    };

    Ok(ChunkedResult {
        items,
        chunks,
        compute_time: SimTime::from_seconds(compute_total),
        transfer_time: SimTime::from_seconds(transfer_total),
        wall_time: SimTime::from_seconds(wall),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Uniform};
    use simt::DeviceSpec;

    #[test]
    fn matches_reference_across_chunk_counts() {
        let data: Vec<f32> = Uniform.generate(1 << 15, 200);
        let dev = Device::titan_x();
        for chunk in [1 << 12, 1 << 13, 1 << 15, 1 << 20] {
            let r = chunked_bitonic_topk(
                &data,
                32,
                &dev,
                ChunkedConfig {
                    chunk_elems: Some(chunk),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(r.items, reference_topk(&data, 32), "chunk={chunk}");
        }
    }

    #[test]
    fn chunk_count_is_ceil_division() {
        let data: Vec<f32> = Uniform.generate(10_000, 201);
        let dev = Device::titan_x();
        let r = chunked_bitonic_topk(
            &data,
            8,
            &dev,
            ChunkedConfig {
                chunk_elems: Some(4096),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.chunks, 3);
    }

    #[test]
    fn overlap_beats_serial() {
        let data: Vec<f32> = Uniform.generate(1 << 16, 202);
        let dev = Device::titan_x();
        let base = ChunkedConfig {
            chunk_elems: Some(1 << 13),
            ..Default::default()
        };
        let overlapped = chunked_bitonic_topk(&data, 16, &dev, base).unwrap();
        let serial = chunked_bitonic_topk(
            &data,
            16,
            &dev,
            ChunkedConfig {
                overlap: false,
                ..base
            },
        )
        .unwrap();
        assert!(overlapped.wall_time.seconds() < serial.wall_time.seconds());
        assert_eq!(overlapped.items, serial.items);
        // the pipeline can never beat the slower of its two resources
        assert!(
            overlapped.wall_time.seconds()
                >= overlapped
                    .transfer_time
                    .seconds()
                    .max(overlapped.compute_time.seconds())
                    * 0.99
        );
    }

    #[test]
    fn transfer_dominates_at_pcie_speeds() {
        // PCI-E is ~20× slower than device memory: the paper's point that
        // reductive top-k should be streamed, not staged
        let data: Vec<f32> = Uniform.generate(1 << 16, 203);
        let dev = Device::titan_x();
        let r = chunked_bitonic_topk(&data, 32, &dev, ChunkedConfig::default()).unwrap();
        assert!(r.transfer_time.seconds() > r.compute_time.seconds());
    }

    #[test]
    fn data_larger_than_device_memory() {
        // a small device forces multiple chunks via the default sizing
        let spec = DeviceSpec {
            global_mem_bytes: 64 * 1024,
            ..DeviceSpec::titan_x_maxwell()
        };
        let dev = Device::new(spec);
        let data: Vec<f32> = Uniform.generate(40_000, 204); // 160 KB > 64 KB
        let r = chunked_bitonic_topk(&data, 16, &dev, ChunkedConfig::default()).unwrap();
        assert!(r.chunks >= 8, "chunks={}", r.chunks);
        assert_eq!(r.items, reference_topk(&data, 16));
    }

    #[test]
    fn rejects_zero_k_and_empty() {
        let dev = Device::titan_x();
        assert!(matches!(
            chunked_bitonic_topk(&[1.0f32], 0, &dev, ChunkedConfig::default()),
            Err(TopKError::ZeroK)
        ));
        assert!(matches!(
            chunked_bitonic_topk::<f32>(&[], 5, &dev, ChunkedConfig::default()),
            Err(TopKError::EmptyInput)
        ));
    }
}
