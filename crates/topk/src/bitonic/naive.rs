//! The unoptimized baseline: every bitonic network step is its own kernel
//! reading and writing global memory (the 521 ms starting point of the
//! Section 4.3 optimization ladder).

use datagen::TopKItem;
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};
use sortnet::{host, local_sort_steps, rebuild_steps, Step};

use crate::TopKError;

/// Applies one compare-exchange step to the whole live prefix, straight
/// from global memory. Streaming traffic: read + write of every element.
struct GlobalStepKernel<T: TopKItem> {
    data: GpuBuffer<T>,
    n: usize,
    step: Step,
}

impl<T: TopKItem> Kernel for GlobalStepKernel<T> {
    fn name(&self) -> &'static str {
        "bitonic_global_step"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        let data = BufferDecl::of("data", &self.data);
        Some(AccessSpec::bulk(
            "step",
            vec![
                BulkAccess {
                    buf: data.clone(),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: data,
                    elems: self.n,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bytes = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write(bytes);
        blk.bulk_ops(self.n as u64 / 2);
        let mut v = self.data.to_vec();
        host::apply_step(&mut v[..self.n], self.step);
        self.data.upload(&v);
    }
}

/// Pairwise-max merge over 2k windows, global memory to global memory.
struct GlobalMergeKernel<T: TopKItem> {
    data: GpuBuffer<T>,
    n: usize,
    k: usize,
}

impl<T: TopKItem> Kernel for GlobalMergeKernel<T> {
    fn name(&self) -> &'static str {
        "bitonic_global_merge"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        let data = BufferDecl::of("data", &self.data);
        Some(AccessSpec::bulk(
            "merge",
            vec![
                BulkAccess {
                    buf: data.clone(),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: data,
                    elems: self.n / 2,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bytes = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write(bytes / 2);
        blk.bulk_ops(self.n as u64 / 2);
        let v = self.data.to_vec();
        let mut out = vec![T::min_sentinel(); self.n / 2];
        host::merge_halve(&v[..self.n], self.k, &mut out);
        let mut buf = v;
        buf[..self.n / 2].copy_from_slice(&out);
        self.data.upload(&buf);
    }
}

/// Bitonic top-k with per-step global kernels. `data` must already be
/// padded to a power of two with min sentinels; returns the ascending
/// sorted top-`k_eff` run in `data[0..k_eff]`.
pub(crate) fn run_global_steps<T: TopKItem>(
    dev: &Device,
    data: &GpuBuffer<T>,
    n_pad: usize,
    k_eff: usize,
) -> Result<(), TopKError> {
    for step in local_sort_steps(k_eff) {
        dev.launch(&GlobalStepKernel {
            data: data.clone(),
            n: n_pad,
            step,
        })?;
    }
    let mut cur = n_pad;
    while cur > k_eff {
        dev.launch(&GlobalMergeKernel {
            data: data.clone(),
            n: cur,
            k: k_eff,
        })?;
        cur /= 2;
        for step in rebuild_steps(k_eff) {
            dev.launch(&GlobalStepKernel {
                data: data.clone(),
                n: cur,
                step,
            })?;
        }
    }
    Ok(())
}
