//! Bitonic top-k (Sections 3.2 and 4.3) — the paper's novel algorithm.
//!
//! The algorithm decomposes into three operators — **local sort**,
//! **merge**, **rebuild** (see `sortnet`) — and reduces the input by 2×
//! per merge with no unnecessary work beyond the massively parallel
//! network structure. The implementation here realizes the full
//! optimization ladder of Section 4.3 (configurable via
//! [`BitonicConfig`]/[`OptLevel`]):
//!
//! 1. per-step global kernels (baseline),
//! 2. operators staged in shared memory,
//! 3. operator fusion into SortReducer/BitonicReducer kernels,
//! 4. combined steps executed in registers,
//! 5. shared-memory padding,
//! 6. chunk permutation,
//! 7. partition reassignment.
//!
//! Because the fused kernels run on the simulator's tracked shared-memory
//! path, each optimization changes *actual access patterns*, and its
//! effect shows up in measured bank-conflict counters — not in a
//! hand-waved constant.

mod config;
mod naive;
mod reducer;

pub use config::{BitonicConfig, OptLevel};

use crate::util::{validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{Device, GpuBuffer, LaunchError};
use sortnet::{log2, next_pow2};

use reducer::{bitonic_reducer_ops, final_reducer_ops, sort_reducer_ops, ReduceOp, ReducerKernel};

/// Shared-memory budget for the staged segment: most of the per-block
/// limit, leaving ~8% for padding and kernel bookkeeping.
fn seg_bytes_budget(dev: &Device) -> usize {
    dev.spec().shared_mem_per_block * 11 / 12
}

/// Largest power-of-two segment of `T` items that fits the budget.
fn max_seg_elems<T: TopKItem>(dev: &Device) -> usize {
    let budget = seg_bytes_budget(dev);
    let mut seg = 1usize;
    while 2 * seg * T::SIZE_BYTES <= budget {
        seg *= 2;
    }
    seg
}

/// Launches one reducer over `cur` elements of `input`, writing
/// `cur >> merges(ops)` to `output`.
#[allow(clippy::too_many_arguments)]
fn launch_reducer<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    output: &GpuBuffer<T>,
    cur: usize,
    seg: usize,
    k_eff: usize,
    ops: Vec<ReduceOp>,
    cfg: BitonicConfig,
    name: &'static str,
) -> Result<usize, TopKError> {
    let nt_pref = cfg.block_dim.unwrap_or(256);
    let block_dim = (seg / cfg.elems()).clamp(32, nt_pref).min(seg);
    let kernel = ReducerKernel {
        input: input.clone(),
        output: output.clone(),
        seg,
        k: k_eff,
        ops,
        cfg,
        block_dim,
        grid_dim: cur / seg,
        kernel_name: name,
    };
    let out = kernel.out_seg() * kernel.grid_dim;
    dev.launch(&kernel)?;
    Ok(out)
}

/// Bitonic top-k: returns the largest `k` items, descending.
pub fn bitonic_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
    cfg: BitonicConfig,
) -> Result<TopKResult<T>, TopKError> {
    let k_req = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();
    let k_eff = next_pow2(k_req);

    // ---- baseline ladder level: per-step global kernels
    if cfg.opt == OptLevel::GlobalSteps {
        let n_pad = next_pow2(n).max(k_eff);
        let mut host = input.to_vec();
        host.resize(n_pad, T::min_sentinel());
        let data = dev.upload(&host);
        naive::run_global_steps(dev, &data, n_pad, k_eff)?;
        let mut items = data.read_range(0..k_eff);
        items.reverse();
        items.truncate(k_req);
        return Ok(cap.finish(dev, items));
    }

    // shared-memory staging requires a 2k window to fit one block
    let max_seg = max_seg_elems::<T>(dev);
    if 2 * k_eff > max_seg {
        return Err(TopKError::Launch(LaunchError::SharedMemoryExceeded {
            requested: 2 * k_eff * T::SIZE_BYTES,
            limit: seg_bytes_budget(dev),
        }));
    }

    let b = cfg.elems();
    let nt_pref = cfg.block_dim.unwrap_or(256);
    let seg = (b * nt_pref).min(max_seg).max(2 * k_eff);
    let n_pad = next_pow2(n);

    // ---- monolithic case: the whole (padded) input fits one block
    if n_pad <= seg {
        let seg_m = n_pad.max(k_eff);
        let out = dev.alloc_filled::<T>(k_eff, T::min_sentinel());
        let merges = log2(seg_m / k_eff) as usize;
        let mut ops = vec![ReduceOp::LocalSort];
        for _ in 0..merges {
            ops.push(ReduceOp::Merge);
            ops.push(ReduceOp::Rebuild);
        }
        let nt = (seg_m / b).clamp(32, nt_pref).min(seg_m);
        dev.launch(&ReducerKernel {
            input: padded_copy(dev, input, seg_m),
            output: out.clone(),
            seg: seg_m,
            k: k_eff,
            ops,
            cfg,
            block_dim: nt,
            grid_dim: 1,
            kernel_name: "bitonic_monolithic",
        })?;
        let mut items = out.to_vec();
        items.reverse();
        items.truncate(k_req);
        return Ok(cap.finish(dev, items));
    }

    // ---- multi-block pipeline
    let padded_in = padded_copy(dev, input, n_pad);

    if !cfg.fused() {
        // SharedMem level: one kernel per operator, full array passes
        return shared_mem_pipeline(dev, cap, &padded_in, n_pad, k_eff, seg, cfg, k_req);
    }

    // fused: SortReducer then BitonicReducers, ping-ponging two work
    // buffers of n_pad >> merges — the paper's "extra buffer of size n/8"
    let merges_sr = (log2(b) as usize).min(log2(seg / k_eff) as usize);
    let work_len = n_pad >> merges_sr;
    let work = [
        dev.alloc_filled::<T>(work_len, T::min_sentinel()),
        dev.alloc_filled::<T>(work_len.max(k_eff), T::min_sentinel()),
    ];

    let cur = launch_reducer(
        dev,
        &padded_in,
        &work[0],
        n_pad,
        seg,
        k_eff,
        sort_reducer_ops(merges_sr),
        cfg,
        "bitonic_sort_reducer",
    )?;
    // state: `work[0][0..cur]` holds bitonic runs of k_eff
    let mut items = reduce_bitonic_runs(dev, work, cur, k_eff, seg, cfg)?;
    items.reverse();
    items.truncate(k_req);
    Ok(cap.finish(dev, items))
}

/// Drains the BitonicReducer pipeline: `work[0][0..cur]` holds bitonic
/// runs of `k_eff`; returns the surviving `k_eff` items ascending.
fn reduce_bitonic_runs<T: TopKItem>(
    dev: &Device,
    work: [GpuBuffer<T>; 2],
    mut cur: usize,
    k_eff: usize,
    seg: usize,
    cfg: BitonicConfig,
) -> Result<Vec<T>, TopKError> {
    let b = cfg.elems();
    let nt_pref = cfg.block_dim.unwrap_or(256);
    let mut src = 0usize;
    loop {
        if cur == k_eff {
            // just rebuild the single remaining bitonic run
            let nt = (k_eff / 2).clamp(32, nt_pref).min(k_eff);
            dev.launch(&ReducerKernel {
                input: work[src].clone(),
                output: work[1 - src].clone(),
                seg: k_eff,
                k: k_eff,
                ops: vec![ReduceOp::Rebuild],
                cfg,
                block_dim: nt,
                grid_dim: 1,
                kernel_name: "bitonic_final_rebuild",
            })?;
            src = 1 - src;
            break;
        }
        if cur <= seg {
            // final kernel: reduce to k and sort in one block
            let merges_f = log2(cur / k_eff) as usize;
            launch_reducer(
                dev,
                &work[src],
                &work[1 - src],
                cur,
                cur,
                k_eff,
                final_reducer_ops(merges_f),
                cfg,
                "bitonic_final_reducer",
            )?;
            src = 1 - src;
            break;
        }
        let merges_br = (log2(b) as usize).min(log2(seg / k_eff) as usize);
        cur = launch_reducer(
            dev,
            &work[src],
            &work[1 - src],
            cur,
            seg,
            k_eff,
            bitonic_reducer_ops(merges_br),
            cfg,
            "bitonic_reducer",
        )?;
        src = 1 - src;
    }
    Ok(work[src].read_range(0..k_eff))
}

/// Continues the reduction from data that is *already* in bitonic runs of
/// `next_pow2(k)` — the entry point for fused operators (Section 5): a
/// FusedSortReducer kernel elsewhere filters/projects and produces the
/// first-stage reduction; this drains the rest of the pipeline.
///
/// `runs[0..valid]` must hold bitonic runs of `next_pow2(k)`; anything
/// beyond is ignored. Returns the largest `k` items, descending.
pub fn bitonic_topk_from_runs<T: TopKItem>(
    dev: &Device,
    runs: &GpuBuffer<T>,
    valid: usize,
    k: usize,
    cfg: BitonicConfig,
) -> Result<TopKResult<T>, TopKError> {
    let k_req = validate(runs, k.min(valid.max(1)))?;
    let cap = LogCapture::begin(dev);
    let k_eff = next_pow2(k_req);
    assert!(
        valid.is_multiple_of(k_eff),
        "runs must be whole multiples of k_eff"
    );
    let max_seg = max_seg_elems::<T>(dev);
    if 2 * k_eff > max_seg {
        return Err(TopKError::Launch(LaunchError::SharedMemoryExceeded {
            requested: 2 * k_eff * T::SIZE_BYTES,
            limit: seg_bytes_budget(dev),
        }));
    }
    let b = cfg.elems();
    let nt_pref = cfg.block_dim.unwrap_or(256);
    let seg = (b * nt_pref).min(max_seg).max(2 * k_eff);
    let cur = next_pow2(valid).max(k_eff);
    // sentinel-run padding: whole runs of MIN are valid bitonic runs
    let work = [
        padded_copy(dev, runs, cur.max(runs.len())),
        dev.alloc_filled::<T>(cur.max(k_eff), T::min_sentinel()),
    ];
    // blank out any junk between `valid` and `cur`
    if valid < cur {
        let mut host = work[0].to_vec();
        for slot in host.iter_mut().take(cur).skip(valid) {
            *slot = T::min_sentinel();
        }
        work[0].upload(&host);
    }
    let mut items = reduce_bitonic_runs(dev, work, cur, k_eff, seg, cfg)?;
    items.reverse();
    items.truncate(k_req);
    Ok(cap.finish(dev, items))
}

/// Copies `input` into a fresh power-of-two buffer padded with min
/// sentinels (host-side staging; the copy is not traffic-modeled, exactly
/// as `cudaMemcpy` padding would happen once outside the measured kernels).
fn padded_copy<T: TopKItem>(dev: &Device, input: &GpuBuffer<T>, len: usize) -> GpuBuffer<T> {
    if input.len() == len {
        return input.clone();
    }
    let mut host = input.to_vec();
    host.resize(len, T::min_sentinel());
    dev.upload(&host)
}

/// The SharedMem ladder level: local sort / merge / rebuild as separate
/// kernels, each staging through shared memory but paying a full global
/// round trip per operator.
#[allow(clippy::too_many_arguments)]
fn shared_mem_pipeline<T: TopKItem>(
    dev: &Device,
    cap: LogCapture,
    padded_in: &GpuBuffer<T>,
    n_pad: usize,
    k_eff: usize,
    seg: usize,
    cfg: BitonicConfig,
    k_req: usize,
) -> Result<TopKResult<T>, TopKError> {
    let a = dev.alloc_filled::<T>(n_pad, T::min_sentinel());
    let b = dev.alloc_filled::<T>(n_pad / 2, T::min_sentinel());

    // local sort (full pass, no reduction)
    launch_reducer(
        dev,
        padded_in,
        &a,
        n_pad,
        seg.min(n_pad),
        k_eff,
        vec![ReduceOp::LocalSort],
        cfg,
        "bitonic_local_sort",
    )?;

    let bufs = [a, b];
    let mut src = 0usize;
    let mut cur = n_pad;
    while cur > k_eff {
        let seg_m = seg.min(cur);
        launch_reducer(
            dev,
            &bufs[src],
            &bufs[1 - src],
            cur,
            seg_m,
            k_eff,
            vec![ReduceOp::Merge],
            cfg,
            "bitonic_merge",
        )?;
        src = 1 - src;
        cur /= 2;
        launch_reducer(
            dev,
            &bufs[src],
            &bufs[src],
            cur,
            seg_m.min(cur).max(k_eff),
            k_eff,
            vec![ReduceOp::Rebuild],
            cfg,
            "bitonic_rebuild",
        )?;
    }

    let mut items = bufs[src].read_range(0..k_eff);
    items.reverse();
    items.truncate(k_req);
    Ok(cap.finish(dev, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, BucketKiller, Distribution, Increasing, Kkkv, Kkv, Kv, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    fn check<T: TopKItem>(data: &[T], k: usize, cfg: BitonicConfig) {
        let dev = Device::titan_x();
        let input = dev.upload(data);
        let r = bitonic_topk(&dev, &input, k, cfg).unwrap();
        let mut expect = data.to_vec();
        expect.sort_by_key(|x| std::cmp::Reverse(x.key_bits()));
        expect.truncate(k.min(data.len()));
        assert_eq!(
            keybits(&r.items),
            keybits(&expect),
            "k={k} cfg={cfg:?} n={}",
            data.len()
        );
    }

    #[test]
    fn matches_reference_across_k_full_opt() {
        let data: Vec<f32> = Uniform.generate(1 << 14, 60);
        for k in [1usize, 2, 3, 8, 32, 100, 256, 1024] {
            check(&data, k, BitonicConfig::default());
        }
    }

    #[test]
    fn matches_reference_every_opt_level() {
        let data: Vec<f32> = Uniform.generate(1 << 13, 61);
        for opt in OptLevel::ladder() {
            check(&data, 32, BitonicConfig::at_level(opt));
        }
    }

    #[test]
    fn small_and_awkward_sizes() {
        for n in [1usize, 2, 3, 5, 31, 32, 33, 100, 1000, 4097] {
            let data: Vec<u32> = Uniform.generate(n, n as u64);
            check(&data, 4, BitonicConfig::default());
            check(&data, 1, BitonicConfig::default());
        }
    }

    #[test]
    fn k_larger_than_n() {
        let data: Vec<u32> = Uniform.generate(10, 62);
        check(&data, 64, BitonicConfig::default());
    }

    #[test]
    fn other_key_types() {
        let f64s: Vec<f64> = Uniform.generate(1 << 12, 63);
        check(&f64s, 32, BitonicConfig::default());
        let i32s: Vec<i32> = Uniform.generate(1 << 12, 64);
        check(&i32s, 32, BitonicConfig::default());
        let u64s: Vec<u64> = Uniform.generate(1 << 12, 65);
        check(&u64s, 16, BitonicConfig::default());
    }

    #[test]
    fn payload_items() {
        let kv: Vec<Kv<f32>> = Uniform
            .generate(1 << 12, 66)
            .into_iter()
            .enumerate()
            .map(|(i, k): (usize, f32)| Kv::new(k, i as u32))
            .collect();
        check(&kv, 32, BitonicConfig::default());

        let kkv: Vec<Kkv<f32>> = (0..(1 << 11))
            .map(|i| Kkv::new((i % 37) as f32, (i % 113) as f32, i))
            .collect();
        check(&kkv, 16, BitonicConfig::default());

        let kkkv: Vec<Kkkv<f32>> = (0..(1 << 11))
            .map(|i| Kkkv::new((i % 17) as f32, (i % 29) as f32, (i % 41) as f32, i))
            .collect();
        check(&kkkv, 8, BitonicConfig::default());
    }

    #[test]
    fn distribution_insensitive_time() {
        // Section 6.4: bitonic performs precisely the same operations
        // regardless of input distribution
        let dev = Device::titan_x();
        let n = 1 << 13;
        let uni: Vec<f32> = Uniform.generate(n, 67);
        let inc: Vec<f32> = Increasing.generate(n, 67);
        let bk: Vec<f32> = BucketKiller.generate(n, 67);
        let cfg = BitonicConfig::default();
        let tu = bitonic_topk(&dev, &dev.upload(&uni), 32, cfg).unwrap().time;
        let ti = bitonic_topk(&dev, &dev.upload(&inc), 32, cfg).unwrap().time;
        let tb = bitonic_topk(&dev, &dev.upload(&bk), 32, cfg).unwrap().time;
        assert!((tu.seconds() - ti.seconds()).abs() < 1e-12);
        assert!((tu.seconds() - tb.seconds()).abs() < 1e-12);
    }

    #[test]
    fn optimization_ladder_improves_time() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 68);
        let input = dev.upload(&data);
        let times: Vec<f64> = OptLevel::ladder()
            .iter()
            .map(|&opt| {
                bitonic_topk(&dev, &input, 32, BitonicConfig::at_level(opt))
                    .unwrap()
                    .time
                    .seconds()
            })
            .collect();
        // each level at least as fast as two levels before it (allow local
        // noise between adjacent levels), and the ends strictly ordered
        assert!(
            times.last().unwrap() * 3.0 < times[0],
            "full opt should beat baseline by a lot: {times:?}"
        );
        for i in 2..times.len() {
            assert!(
                times[i] <= times[i - 2] * 1.05,
                "ladder not monotonic-ish at {i}: {times:?}"
            );
        }
    }

    #[test]
    fn padding_reduces_bank_conflicts() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 69);
        let input = dev.upload(&data);
        let before = bitonic_topk(
            &dev,
            &input,
            32,
            BitonicConfig::at_level(OptLevel::CombinedSteps),
        )
        .unwrap();
        let after =
            bitonic_topk(&dev, &input, 32, BitonicConfig::at_level(OptLevel::Padding)).unwrap();
        let c_before: u64 = before
            .reports
            .iter()
            .map(|r| r.stats.shared_conflict_cycles)
            .sum();
        let c_after: u64 = after
            .reports
            .iter()
            .map(|r| r.stats.shared_conflict_cycles)
            .sum();
        assert!(
            c_after < c_before / 2,
            "padding should remove most conflicts: before={c_before} after={c_after}"
        );
    }

    #[test]
    fn chunk_permutation_removes_residual_conflicts() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 70);
        let input = dev.upload(&data);
        let pad = bitonic_topk(
            &dev,
            &input,
            128,
            BitonicConfig::at_level(OptLevel::Padding),
        )
        .unwrap();
        let perm = bitonic_topk(
            &dev,
            &input,
            128,
            BitonicConfig::at_level(OptLevel::ChunkPermute),
        )
        .unwrap();
        let c_pad: u64 = pad
            .reports
            .iter()
            .map(|r| r.stats.shared_conflict_cycles)
            .sum();
        let c_perm: u64 = perm
            .reports
            .iter()
            .map(|r| r.stats.shared_conflict_cycles)
            .sum();
        assert!(
            c_perm <= c_pad,
            "permutation should not add conflicts: pad={c_pad} perm={c_perm}"
        );
    }

    #[test]
    fn memory_usage_is_fraction_of_input() {
        // Section 4.3 discussion: bitonic top-k allocates ~n/8 extra
        let dev = Device::titan_x();
        let n = 1 << 16;
        let data: Vec<f32> = Uniform.generate(n, 71);
        let input = dev.upload(&data);
        dev.reset_memory_highwater();
        let _ = bitonic_topk(&dev, &input, 32, BitonicConfig::default()).unwrap();
        let extra = dev.memory_highwater() as f64 - (n * 4) as f64;
        assert!(
            extra <= (n * 4) as f64 / 4.0,
            "extra allocation {extra} should be ≤ n/4 bytes (got {} of input)",
            extra / (n as f64 * 4.0)
        );
    }

    #[test]
    fn rejects_k_too_large_for_shared() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 15, 72);
        let input = dev.upload(&data);
        // k_eff = 8192 → 2k windows of 64 KB don't fit shared memory
        assert!(matches!(
            bitonic_topk(&dev, &input, 8192, BitonicConfig::default()),
            Err(TopKError::Launch(LaunchError::SharedMemoryExceeded { .. }))
        ));
    }

    #[test]
    fn figure8_elems_per_thread_sweep_runs() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 13, 73);
        let input = dev.upload(&data);
        for b in [8usize, 16, 32, 64] {
            let r =
                bitonic_topk(&dev, &input, 32, BitonicConfig::with_elems_per_thread(b)).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, 32)),
                "B={b}"
            );
        }
    }
}
