//! The fused reducer kernel family (SortReducer / BitonicReducer /
//! monolithic final reducer), with the Section 4.3 shared-memory
//! optimizations realized as actual access-pattern changes the simulator
//! measures.

use datagen::TopKItem;
use simt::{
    AccessSpec, BlockCtx, BufferDecl, GlobalStream, GpuBuffer, Kernel, PhaseSpec, SharedEv,
    SharedHandle, SharedStep,
};
use sortnet::{chunk_rotation, local_sort_steps, rebuild_steps, PadMap, StepGroupPlan};

use super::config::BitonicConfig;

/// One operator inside a fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReduceOp {
    /// Unsorted → sorted runs of k (only valid as the first op).
    LocalSort,
    /// Bitonic runs of k → sorted runs of k.
    Rebuild,
    /// Pairwise max over 2k windows; halves the live length.
    Merge,
}

/// A fused reducer: loads a segment to shared memory, applies a sequence
/// of operators, writes the reduced segment back.
pub(crate) struct ReducerKernel<T: TopKItem> {
    pub input: GpuBuffer<T>,
    pub output: GpuBuffer<T>,
    /// Segment (elements) each block loads.
    pub seg: usize,
    /// Run length (the internally rounded-up k).
    pub k: usize,
    pub ops: Vec<ReduceOp>,
    pub cfg: BitonicConfig,
    pub block_dim: usize,
    pub grid_dim: usize,
    pub kernel_name: &'static str,
}

impl<T: TopKItem> ReducerKernel<T> {
    /// Output elements each block produces.
    pub fn out_seg(&self) -> usize {
        let merges = self.ops.iter().filter(|o| **o == ReduceOp::Merge).count();
        self.seg >> merges
    }

    fn pad_map(&self) -> PadMap {
        // banks in the element domain: 32 words / words-per-element
        let wpe = T::SIZE_BYTES.div_ceil(4);
        PadMap::new((32 / wpe).max(1), self.cfg.padding())
    }

    /// Shared bytes needed for the (possibly padded) segment.
    pub fn shared_bytes(&self) -> usize {
        self.pad_map().padded_len(self.seg) * T::SIZE_BYTES
    }

    /// Predicts the bank-conflict cycles of one warp executing a group
    /// with the given per-lane rotation, by replaying the slot/bank
    /// geometry of the first warp's first sets. Used to pick the chunk
    /// visit order — the paper derives its permutation by inspecting
    /// exactly this pattern (Figure 10); we generalize by evaluating the
    /// candidate orders.
    fn predict_conflicts(
        group: &sortnet::CombinedStep,
        pad: PadMap,
        workers: usize,
        ws: usize,
        sets_total: usize,
        rotate: bool,
    ) -> u64 {
        let m_count = group.elems_per_set();
        let wpe = T::SIZE_BYTES.div_ceil(4);
        let lanes = ws.min(workers);
        let per = sets_total / workers.max(1);
        let mut cycles = 0u64;
        for slot in 0..m_count {
            let mut banks = [0u32; 32];
            let mut words: Vec<u32> = Vec::with_capacity(lanes);
            for l in 0..lanes {
                let rot = if rotate {
                    chunk_rotation(l, m_count)
                } else {
                    0
                };
                let m = (slot + rot) % m_count;
                let word = (pad.index(group.element(l * per.max(1), m)) * wpe) as u32;
                words.push(word);
            }
            words.sort_unstable();
            words.dedup();
            for w in words {
                banks[(w as usize) % 32] += 1;
            }
            let degree = *banks.iter().max().unwrap() as u64;
            cycles += degree.saturating_sub(1);
        }
        cycles
    }

    /// Executes one step-group plan over the live prefix of the segment.
    fn run_plan(
        &self,
        blk: &mut BlockCtx,
        sh: SharedHandle<T>,
        pad: PadMap,
        plan: &StepGroupPlan,
        cur_len: usize,
        active: usize,
    ) {
        let ws = blk.spec().warp_size;
        let permute = self.cfg.chunk_permute();
        for group in &plan.groups {
            let m_count = group.elems_per_set();
            let sets_total = cur_len / m_count;
            let workers = active.min(sets_total);
            // chunk permutation: rotate the per-lane visit order when the
            // aligned order would conflict and the rotated one is better
            let use_rot = permute
                && m_count > 1
                && Self::predict_conflicts(group, pad, workers, ws, sets_total, true)
                    < Self::predict_conflicts(group, pad, workers, ws, sets_total, false);
            blk.step(|lane| {
                let t = lane.tid();
                if t >= workers {
                    return;
                }
                let rot = if use_rot {
                    chunk_rotation(lane.lane_in_warp(ws), m_count)
                } else {
                    0
                };
                let mut local: Vec<T> = vec![T::min_sentinel(); m_count];
                // blocked set assignment, as in the paper's Figure 6: each
                // thread owns a contiguous range of closed sets
                let per = sets_total / workers;
                for i in 0..per {
                    let set = t * per + i;
                    for i in 0..m_count {
                        let m = (i + rot) % m_count;
                        local[m] = lane.sread(sh, pad.index(group.element(set, m)));
                    }
                    for &step in &group.steps {
                        let lb = group.local_bit_for(step.j);
                        for m in 0..m_count {
                            let pm = m ^ (1 << lb);
                            if pm > m {
                                let gi = group.element(set, m);
                                let asc = step.ascending(gi);
                                if asc == local[pm].item_lt(&local[m]) {
                                    local.swap(m, pm);
                                }
                            }
                        }
                        // ~4 scalar ops per compare-exchange: load-compare,
                        // select, two conditional moves
                        lane.ops(4 * m_count as u64 / 2);
                    }
                    for i in 0..m_count {
                        let m = (i + rot) % m_count;
                        lane.swrite(sh, pad.index(group.element(set, m)), local[m]);
                    }
                }
            });
        }
    }

    /// Executes a merge: pairwise max over aligned 2k windows, compacting
    /// the live prefix from `cur_len` to `cur_len/2`. Two warp-synchronous
    /// steps (read into registers, barrier, write) as on real hardware.
    fn run_merge(
        &self,
        blk: &mut BlockCtx,
        sh: SharedHandle<T>,
        pad: PadMap,
        cur_len: usize,
        active: usize,
    ) {
        let k = self.k;
        let half = cur_len / 2;
        let workers = active.min(half);
        let per_thread = half / workers.max(1);
        let mut staged: Vec<Vec<T>> = vec![Vec::with_capacity(per_thread); workers];

        blk.step(|lane| {
            let t = lane.tid();
            if t >= workers {
                return;
            }
            let mut p = t;
            while p < half {
                let w = p / k;
                let j = p % k;
                let a = lane.sread(sh, pad.index(2 * k * w + j));
                let b = lane.sread(sh, pad.index(2 * k * w + j + k));
                staged[t].push(if a.item_lt(&b) { b } else { a });
                lane.ops(4);
                p += workers;
            }
        });
        blk.step(|lane| {
            let t = lane.tid();
            if t >= workers {
                return;
            }
            for (i, v) in staged[t].iter().enumerate() {
                let p = t + i * workers;
                lane.swrite(sh, pad.index(p), *v);
            }
        });
    }

    /// Shared word of element `idx` under the kernel's pad map. The
    /// reducer's one shared allocation starts at word 0.
    fn word_of(&self, pad: PadMap, idx: usize) -> u32 {
        (pad.index(idx) * T::SIZE_BYTES.div_ceil(4)) as u32
    }

    /// Declares one [`Self::run_plan`] invocation: one barrier interval
    /// per step group, with the same worker/rotation arithmetic.
    fn plan_phase(
        &self,
        name: String,
        plan: &StepGroupPlan,
        pad: PadMap,
        cur_len: usize,
        active: usize,
        ws: usize,
    ) -> PhaseSpec {
        let wpe = T::SIZE_BYTES.div_ceil(4) as u32;
        let permute = self.cfg.chunk_permute();
        let mut shared_steps = Vec::new();
        for group in &plan.groups {
            let m_count = group.elems_per_set();
            let sets_total = cur_len / m_count;
            let workers = active.min(sets_total);
            let mut lanes: Vec<Vec<SharedEv>> = vec![Vec::new(); self.block_dim];
            if workers > 0 {
                let use_rot = permute
                    && m_count > 1
                    && Self::predict_conflicts(group, pad, workers, ws, sets_total, true)
                        < Self::predict_conflicts(group, pad, workers, ws, sets_total, false);
                let per = sets_total / workers;
                for (t, lane) in lanes.iter_mut().enumerate().take(workers) {
                    let rot = if use_rot {
                        chunk_rotation(t % ws, m_count)
                    } else {
                        0
                    };
                    for i in 0..per {
                        let set = t * per + i;
                        for write in [false, true] {
                            for j in 0..m_count {
                                let m = (j + rot) % m_count;
                                lane.push(SharedEv {
                                    word: self.word_of(pad, group.element(set, m)),
                                    words: wpe,
                                    write,
                                });
                            }
                        }
                    }
                }
            }
            shared_steps.push(SharedStep { lanes });
        }
        PhaseSpec {
            name,
            shared_steps,
            ..PhaseSpec::default()
        }
    }

    /// Declares one [`Self::run_merge`] invocation: the read step and
    /// the write-back step, with the same per-lane strided loops.
    fn merge_phase(&self, name: String, pad: PadMap, cur_len: usize, active: usize) -> PhaseSpec {
        let wpe = T::SIZE_BYTES.div_ceil(4) as u32;
        let k = self.k;
        let half = cur_len / 2;
        let workers = active.min(half);
        let mut reads: Vec<Vec<SharedEv>> = vec![Vec::new(); self.block_dim];
        let mut writes: Vec<Vec<SharedEv>> = vec![Vec::new(); self.block_dim];
        for t in 0..workers {
            let mut staged = 0usize;
            let mut p = t;
            while p < half {
                let w = p / k;
                let j = p % k;
                for idx in [2 * k * w + j, 2 * k * w + j + k] {
                    reads[t].push(SharedEv {
                        word: self.word_of(pad, idx),
                        words: wpe,
                        write: false,
                    });
                }
                staged += 1;
                p += workers;
            }
            for i in 0..staged {
                writes[t].push(SharedEv {
                    word: self.word_of(pad, t + i * workers),
                    words: wpe,
                    write: true,
                });
            }
        }
        PhaseSpec {
            name,
            shared_steps: vec![SharedStep { lanes: reads }, SharedStep { lanes: writes }],
            ..PhaseSpec::default()
        }
    }
}

impl<T: TopKItem> Kernel for ReducerKernel<T> {
    fn name(&self) -> &'static str {
        self.kernel_name
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn grid_dim(&self) -> usize {
        self.grid_dim
    }
    fn shared_bytes_per_block(&self) -> usize {
        self.shared_bytes()
    }
    fn regs_per_thread(&self) -> usize {
        // the combined-step register set plus loop state; beyond B = 16
        // this is what costs occupancy in Figure 8
        32 + self.cfg.group_budget() * T::SIZE_BYTES.div_ceil(4)
    }

    /// The contract mirrors `run_block` phase by phase with the same
    /// integer arithmetic — load, each operator's barrier intervals,
    /// store — so the static prediction reproduces the replay's
    /// counters exactly. The sorting network is data-independent, which
    /// is what makes a complete static declaration possible. Lane
    /// rotation assumes the 32-lane warps every shipped device uses.
    fn access_spec(&self) -> Option<AccessSpec> {
        let nt = self.block_dim;
        if nt == 0 || self.grid_dim == 0 || self.seg == 0 {
            return Some(AccessSpec::default());
        }
        let ws = 32usize;
        let pad = self.pad_map();
        let wpe = T::SIZE_BYTES.div_ceil(4) as u32;
        let mut phases = Vec::new();

        // ---- load
        let b_elems = self.seg / nt;
        let mut lanes: Vec<Vec<SharedEv>> = vec![Vec::with_capacity(b_elems); nt];
        for (t, lane) in lanes.iter_mut().enumerate() {
            for j in 0..b_elems {
                lane.push(SharedEv {
                    word: self.word_of(pad, t + j * nt),
                    words: wpe,
                    write: true,
                });
            }
        }
        phases.push(PhaseSpec {
            name: "load".to_string(),
            globals: vec![GlobalStream {
                buf: BufferDecl::of("input", &self.input),
                write: false,
                base: 0,
                lane_stride: 1,
                slot_stride: nt,
                slots: b_elems,
                block_stride: self.seg,
                active: nt,
                bound: None,
            }],
            shared_steps: vec![SharedStep { lanes }],
            ..PhaseSpec::default()
        });

        // ---- operator pipeline
        let mut cur_len = self.seg;
        for (oi, &op) in self.ops.iter().enumerate() {
            let active = if self.cfg.reassign() {
                (cur_len / self.cfg.elems()).clamp(1, nt)
            } else {
                nt.min(cur_len)
            };
            let avail = (cur_len / active).max(2);
            let budget = self.cfg.group_budget().min(avail);
            match op {
                ReduceOp::LocalSort => {
                    let plan = StepGroupPlan::plan(&local_sort_steps(self.k), budget);
                    phases.push(self.plan_phase(
                        format!("op{oi}:local-sort"),
                        &plan,
                        pad,
                        cur_len,
                        active,
                        ws,
                    ));
                }
                ReduceOp::Rebuild => {
                    let plan = StepGroupPlan::plan(&rebuild_steps(self.k), budget);
                    phases.push(self.plan_phase(
                        format!("op{oi}:rebuild"),
                        &plan,
                        pad,
                        cur_len,
                        active,
                        ws,
                    ));
                }
                ReduceOp::Merge => {
                    phases.push(self.merge_phase(format!("op{oi}:merge"), pad, cur_len, active));
                    cur_len /= 2;
                }
            }
        }

        // ---- store
        let mut lanes: Vec<Vec<SharedEv>> = vec![Vec::new(); nt];
        for (t, lane) in lanes.iter_mut().enumerate() {
            let mut p = t;
            while p < cur_len {
                lane.push(SharedEv {
                    word: self.word_of(pad, p),
                    words: wpe,
                    write: false,
                });
                p += nt;
            }
        }
        phases.push(PhaseSpec {
            name: "store".to_string(),
            globals: vec![GlobalStream {
                buf: BufferDecl::of("output", &self.output),
                write: true,
                base: 0,
                lane_stride: 1,
                slot_stride: nt,
                slots: cur_len.div_ceil(nt),
                block_stride: cur_len,
                active: nt,
                bound: Some(cur_len),
            }],
            shared_steps: vec![SharedStep { lanes }],
            ..PhaseSpec::default()
        });
        Some(AccessSpec { phases })
    }

    fn run_block(&self, blk: &mut BlockCtx) {
        let pad = self.pad_map();
        let sh = blk.alloc_shared::<T>(pad.padded_len(self.seg));
        let nt = self.block_dim;
        let b_elems = self.seg / nt;
        let base = blk.block_idx * self.seg;

        // ---- load: coalesced global reads staged into shared memory
        blk.step(|lane| {
            let t = lane.tid();
            for j in 0..b_elems {
                let p = t + j * nt;
                let v = lane.gread(&self.input, base + p);
                lane.swrite(sh, pad.index(p), v);
            }
        });

        // ---- operator pipeline
        let mut cur_len = self.seg;
        for &op in &self.ops {
            // element budget per thread at the current live length
            let active = if self.cfg.reassign() {
                (cur_len / self.cfg.elems()).clamp(1, nt)
            } else {
                nt.min(cur_len)
            };
            let avail = (cur_len / active).max(2);
            let budget = self.cfg.group_budget().min(avail);
            match op {
                ReduceOp::LocalSort => {
                    let plan = StepGroupPlan::plan(&local_sort_steps(self.k), budget);
                    self.run_plan(blk, sh, pad, &plan, cur_len, active);
                }
                ReduceOp::Rebuild => {
                    let plan = StepGroupPlan::plan(&rebuild_steps(self.k), budget);
                    self.run_plan(blk, sh, pad, &plan, cur_len, active);
                }
                ReduceOp::Merge => {
                    self.run_merge(blk, sh, pad, cur_len, active);
                    cur_len /= 2;
                }
            }
        }

        // ---- store: coalesced global writes of the reduced segment
        let out_base = blk.block_idx * cur_len;
        blk.step(|lane| {
            let t = lane.tid();
            let mut p = t;
            while p < cur_len {
                let v = lane.sread(sh, pad.index(p));
                lane.gwrite(&self.output, out_base + p, v);
                p += nt;
            }
        });
    }
}

/// Builds the op list of a SortReducer: local sort, then merge/rebuild
/// alternation ending on a merge — `merges` halvings total.
pub(crate) fn sort_reducer_ops(merges: usize) -> Vec<ReduceOp> {
    let mut ops = vec![ReduceOp::LocalSort];
    for i in 0..merges {
        ops.push(ReduceOp::Merge);
        if i + 1 < merges {
            ops.push(ReduceOp::Rebuild);
        }
    }
    ops
}

/// Builds the op list of a BitonicReducer: rebuild/merge alternation
/// starting from bitonic runs, ending on a merge.
pub(crate) fn bitonic_reducer_ops(merges: usize) -> Vec<ReduceOp> {
    let mut ops = Vec::new();
    for _ in 0..merges {
        ops.push(ReduceOp::Rebuild);
        ops.push(ReduceOp::Merge);
    }
    ops
}

/// Builds the final-kernel op list: from bitonic runs of k, reduce
/// `merges` times and leave a fully sorted run of k.
pub(crate) fn final_reducer_ops(merges: usize) -> Vec<ReduceOp> {
    let mut ops = Vec::new();
    for _ in 0..merges {
        ops.push(ReduceOp::Rebuild);
        ops.push(ReduceOp::Merge);
    }
    ops.push(ReduceOp::Rebuild);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_list_shapes() {
        assert_eq!(
            sort_reducer_ops(3),
            vec![
                ReduceOp::LocalSort,
                ReduceOp::Merge,
                ReduceOp::Rebuild,
                ReduceOp::Merge,
                ReduceOp::Rebuild,
                ReduceOp::Merge
            ]
        );
        assert_eq!(
            bitonic_reducer_ops(2),
            vec![
                ReduceOp::Rebuild,
                ReduceOp::Merge,
                ReduceOp::Rebuild,
                ReduceOp::Merge
            ]
        );
        assert_eq!(final_reducer_ops(0), vec![ReduceOp::Rebuild]);
        assert_eq!(
            final_reducer_ops(1),
            vec![ReduceOp::Rebuild, ReduceOp::Merge, ReduceOp::Rebuild]
        );
    }
}
