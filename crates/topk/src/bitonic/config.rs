//! Configuration of the bitonic top-k optimization ladder (Section 4.3).

/// The cumulative optimization levels of Section 4.3, in the order the
/// paper introduces them. Each level includes all previous ones; the
/// ablation experiment sweeps this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Baseline: every network step is its own kernel, reading and
    /// writing global memory (521 ms for top-32 at 2^29 in the paper).
    GlobalSteps,
    /// Operate in shared memory: one kernel per operator (local sort /
    /// merge / rebuild), staged through shared memory (→ 122 ms).
    SharedMem,
    /// Merge operators into the two fused kernels (SortReducer and
    /// BitonicReducer), 8 elements per thread (→ 48.2 ms).
    FusedKernels,
    /// Combine consecutive steps into register-resident groups, halving
    /// shared traffic (→ 33.7 ms).
    CombinedSteps,
    /// Pad shared memory to break bank conflicts; enables 16 elements
    /// per thread (→ 22.3 ms, then 17.8 ms with B = 16).
    Padding,
    /// Permute chunk visit order to remove the remaining conflicts at
    /// comparison distances > 1 (→ 16 ms).
    ChunkPermute,
    /// Re-assign partitions after reductions so active threads keep a
    /// full complement of elements (→ 15.4 ms; the full algorithm).
    ReassignPartitions,
}

impl OptLevel {
    /// All levels, in ladder order.
    pub fn ladder() -> [OptLevel; 7] {
        [
            OptLevel::GlobalSteps,
            OptLevel::SharedMem,
            OptLevel::FusedKernels,
            OptLevel::CombinedSteps,
            OptLevel::Padding,
            OptLevel::ChunkPermute,
            OptLevel::ReassignPartitions,
        ]
    }

    /// Kebab-case name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            OptLevel::GlobalSteps => "global-steps",
            OptLevel::SharedMem => "shared-mem",
            OptLevel::FusedKernels => "fused-kernels",
            OptLevel::CombinedSteps => "combined-steps",
            OptLevel::Padding => "padding",
            OptLevel::ChunkPermute => "chunk-permute",
            OptLevel::ReassignPartitions => "reassign-partitions",
        }
    }
}

/// User-facing configuration for [`crate::bitonic::bitonic_topk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitonicConfig {
    /// Optimization level (cumulative). Default: everything on.
    pub opt: OptLevel,
    /// Elements per thread (B). `None` picks the level's default
    /// (8 below [`OptLevel::Padding`], 16 from it up — Figure 8 found 16
    /// optimal once padding removes the conflict penalty).
    pub elems_per_thread: Option<usize>,
    /// Preferred threads per block (capped by shared capacity). Default 256.
    pub block_dim: Option<usize>,
}

impl Default for BitonicConfig {
    fn default() -> Self {
        Self {
            opt: OptLevel::ReassignPartitions,
            elems_per_thread: None,
            block_dim: None,
        }
    }
}

impl BitonicConfig {
    /// Config at a given ladder level (defaults elsewhere).
    pub fn at_level(opt: OptLevel) -> Self {
        Self {
            opt,
            ..Self::default()
        }
    }

    /// Config with an explicit B (the Figure 8 sweep).
    pub fn with_elems_per_thread(b: usize) -> Self {
        assert!(
            b.is_power_of_two() && b >= 2,
            "B must be a power of two ≥ 2"
        );
        Self {
            elems_per_thread: Some(b),
            ..Self::default()
        }
    }

    /// Effective B for this level.
    pub fn elems(&self) -> usize {
        self.elems_per_thread.unwrap_or(match self.opt {
            OptLevel::GlobalSteps | OptLevel::SharedMem => 8,
            OptLevel::FusedKernels | OptLevel::CombinedSteps => 8,
            _ => 16,
        })
    }

    /// Step-group element budget: combined steps need
    /// [`OptLevel::CombinedSteps`]; below it every step stands alone.
    pub fn group_budget(&self) -> usize {
        if self.opt >= OptLevel::CombinedSteps {
            self.elems()
        } else {
            2
        }
    }

    /// Whether shared-memory padding is active at this level.
    pub fn padding(&self) -> bool {
        self.opt >= OptLevel::Padding
    }

    /// Whether chunk permutation is active at this level.
    pub fn chunk_permute(&self) -> bool {
        self.opt >= OptLevel::ChunkPermute
    }

    /// Whether partition reassignment is active at this level.
    pub fn reassign(&self) -> bool {
        self.opt >= OptLevel::ReassignPartitions
    }

    /// Whether operators are fused into SortReducer/BitonicReducer.
    pub fn fused(&self) -> bool {
        self.opt >= OptLevel::FusedKernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered() {
        let l = OptLevel::ladder();
        for w in l.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn defaults_follow_the_paper() {
        let full = BitonicConfig::default();
        assert_eq!(full.elems(), 16);
        assert_eq!(full.group_budget(), 16);
        assert!(full.padding() && full.chunk_permute() && full.reassign());

        let fused = BitonicConfig::at_level(OptLevel::FusedKernels);
        assert_eq!(fused.elems(), 8);
        assert_eq!(fused.group_budget(), 2, "no combined steps yet");
        assert!(!fused.padding());

        let combined = BitonicConfig::at_level(OptLevel::CombinedSteps);
        assert_eq!(combined.group_budget(), 8);
    }

    #[test]
    fn explicit_b_override() {
        let c = BitonicConfig::with_elems_per_thread(32);
        assert_eq!(c.elems(), 32);
        assert_eq!(c.group_budget(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_b() {
        let _ = BitonicConfig::with_elems_per_thread(12);
    }
}
