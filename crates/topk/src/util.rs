//! Shared plumbing for the algorithm modules: launch-log capture,
//! argument validation, and result finishing.

use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{Device, GpuBuffer};

/// Captures the slice of the device launch log produced by one algorithm
/// invocation, so its reports (and total time) can be attributed.
pub(crate) struct LogCapture {
    start: usize,
}

impl LogCapture {
    pub fn begin(dev: &Device) -> Self {
        Self {
            start: dev.log_len(),
        }
    }

    pub fn finish<T>(self, dev: &Device, items: Vec<T>) -> TopKResult<T> {
        let reports = dev.log_since(self.start);
        let time = reports.iter().map(|r| r.time).sum();
        TopKResult {
            items,
            time,
            reports,
        }
    }
}

/// Common argument validation. Returns the effective `k` (clamped to `n`).
pub(crate) fn validate<T: TopKItem>(input: &GpuBuffer<T>, k: usize) -> Result<usize, TopKError> {
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if input.is_empty() {
        return Err(TopKError::EmptyInput);
    }
    Ok(k.min(input.len()))
}

/// Sorts a small result set descending by key (host-side tie-stable
/// finishing step shared by the selection algorithms).
pub(crate) fn sort_desc<T: TopKItem>(items: &mut [T]) {
    items.sort_by_key(|x| std::cmp::Reverse(x.key_bits()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_clamps_k() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[1.0f32, 2.0, 3.0]);
        assert_eq!(validate(&buf, 10).unwrap(), 3);
        assert_eq!(validate(&buf, 2).unwrap(), 2);
        assert_eq!(validate(&buf, 0).unwrap_err(), TopKError::ZeroK);
    }

    #[test]
    fn sort_desc_orders_by_key_bits() {
        let mut v = vec![1.0f32, -3.0, 2.0, 0.0];
        sort_desc(&mut v);
        assert_eq!(v, vec![2.0, 1.0, 0.0, -3.0]);
    }

    #[test]
    fn log_capture_attributes_only_new_launches() {
        let dev = Device::titan_x();
        struct Nop;
        impl simt::Kernel for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn block_dim(&self) -> usize {
                32
            }
            fn grid_dim(&self) -> usize {
                1
            }
            fn run_block(&self, _b: &mut simt::BlockCtx) {}
        }
        dev.launch(&Nop).unwrap(); // preexisting launch
        let cap = LogCapture::begin(&dev);
        dev.launch(&Nop).unwrap();
        dev.launch(&Nop).unwrap();
        let r = cap.finish(&dev, vec![0u32]);
        assert_eq!(r.reports.len(), 2);
        assert!(r.time.seconds() > 0.0);
    }
}
