#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! GPU top-k algorithms on the `simt` simulator — the paper's contribution.
//!
//! Six algorithms (Section 3 plus the Dr. Top-k follow-up), all
//! returning the largest `k` items in descending key order:
//!
//! | Algorithm | Module | Paper |
//! |---|---|---|
//! | Sort & choose (LSD radix sort) | [`sort`] | §3, baseline |
//! | Per-thread heaps (+ register variant) | [`per_thread`] | §3.1, App. A |
//! | Radix select | [`radix_select`] | §2.3/§4.2 |
//! | Bucket select | [`bucket_select`] | §2.3/§4.2 |
//! | **Bitonic top-k** | [`bitonic`] | §3.2/§4.3 |
//! | Delegate select | [`delegate`] | Dr. Top-k (PAPERS.md) |
//!
//! Every algorithm is functionally executed on simulated device buffers —
//! results are real and tested against a sort oracle — while the
//! simulator's traffic counters drive the modeled kernel times
//! (see the `simt` crate docs).
//!
//! # Example
//!
//! All entry points go through [`TopKRequest`]: algorithm, `k`, key
//! order, and (optionally) the stream to launch on travel in one value.
//!
//! ```
//! use simt::Device;
//! use topk::{bitonic::BitonicConfig, TopKAlgorithm, TopKRequest};
//!
//! let dev = Device::titan_x();
//! let data: Vec<f32> = (0..4096).map(|i| (i * 31 % 4096) as f32).collect();
//! let input = dev.upload(&data);
//! let result = TopKRequest::largest(8)
//!     .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
//!     .run(&dev, &input)
//!     .unwrap();
//! assert_eq!(result.items.len(), 8);
//! assert_eq!(result.items[0], 4095.0);
//!
//! // smallest-k is the same request with the order flipped; the input
//! // buffer is reinterpreted in place (no host round-trip).
//! let low = TopKRequest::smallest(3).run(&dev, &input).unwrap();
//! assert_eq!(low.items[0], 0.0);
//! ```

pub mod backend;
pub mod batched;
pub mod bitonic;
pub mod bucket_select;
pub mod chunked;
pub mod delegate;
pub mod hybrid;
pub mod per_thread;
pub mod radix_select;
pub mod sort;
pub(crate) mod util;

use datagen::TopKItem;
use simt::{Device, GpuBuffer, LaunchError, LaunchReport, SimTime, StreamId};

pub use backend::{
    Backend, BackendBuffer, BackendKind, BackendTopK, CpuBackend, ExecBackend, ExecReport, SimExec,
    SimtBackend,
};

/// Errors top-k execution can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKError {
    /// `k` must be at least 1.
    ZeroK,
    /// The input buffer is empty.
    EmptyInput,
    /// A kernel could not launch — e.g. per-thread top-k's shared-memory
    /// footprint exceeds the device limit for large `k` (Section 6.2).
    Launch(LaunchError),
    /// The request asks for a feature the executing backend does not
    /// have (e.g. simt streams or the sanitizer on the CPU backend).
    /// Simulator-only machinery degrades loudly, never silently.
    UnsupportedOnBackend {
        /// The backend that rejected the request.
        backend: &'static str,
        /// The unavailable feature.
        feature: &'static str,
    },
    /// A [`backend::BackendBuffer`] belonging to one backend was handed
    /// to the other (e.g. a simulated device buffer to [`CpuBackend`]).
    BackendMismatch {
        /// The backend that was asked to execute.
        backend: &'static str,
        /// The backend the buffer belongs to.
        buffer: &'static str,
    },
}

impl From<LaunchError> for TopKError {
    fn from(e: LaunchError) -> Self {
        TopKError::Launch(e)
    }
}

impl std::fmt::Display for TopKError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::EmptyInput => write!(f, "input is empty"),
            TopKError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            TopKError::UnsupportedOnBackend { backend, feature } => {
                write!(f, "the {backend} backend does not support {feature}")
            }
            TopKError::BackendMismatch { backend, buffer } => {
                write!(f, "the {backend} backend was handed a {buffer} buffer")
            }
        }
    }
}

impl std::error::Error for TopKError {}

/// The outcome of a top-k invocation.
#[derive(Debug, Clone)]
pub struct TopKResult<T> {
    /// The largest `k` items, descending by key. If `k > n` all items are
    /// returned.
    pub items: Vec<T>,
    /// Total modeled device time across the algorithm's kernel launches.
    pub time: SimTime,
    /// Per-kernel launch reports, in launch order.
    pub reports: Vec<LaunchReport>,
}

impl<T> TopKResult<T> {
    /// Aggregate global memory traffic over all launches.
    pub fn global_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.global_bytes()).sum()
    }

    /// Aggregate effective shared-memory traffic over all launches.
    pub fn shared_eff_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.shared_eff_bytes).sum()
    }
}

/// Algorithm selector for experiment sweeps and the query planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKAlgorithm {
    /// Full LSD radix sort, then take the first `k`.
    Sort,
    /// Per-thread heaps in shared memory (Algorithm 1).
    PerThread,
    /// Per-thread linear buffer held in registers (Appendix A).
    PerThreadRegisters,
    /// MSD radix select with the §4.2 output optimizations.
    RadixSelect,
    /// Min/max bucket select.
    BucketSelect,
    /// Bitonic top-k with the given optimization configuration.
    Bitonic(bitonic::BitonicConfig),
    /// Delegate-centric top-k (Dr. Top-k): per-subrange delegates,
    /// top-k over delegates, refinement over contributing subranges.
    DelegateSelect(delegate::DelegateConfig),
}

impl TopKAlgorithm {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            TopKAlgorithm::Sort => "sort",
            TopKAlgorithm::PerThread => "per-thread",
            TopKAlgorithm::PerThreadRegisters => "per-thread-regs",
            TopKAlgorithm::RadixSelect => "radix-select",
            TopKAlgorithm::BucketSelect => "bucket-select",
            TopKAlgorithm::Bitonic(_) => "bitonic",
            TopKAlgorithm::DelegateSelect(_) => "delegate-select",
        }
    }

    /// All seven algorithms at their default configurations.
    ///
    /// This is the Figure 11 line-up plus [`PerThreadRegisters`]
    /// (Appendix A) and [`DelegateSelect`] (the Dr. Top-k follow-up):
    /// the paper's figure omits the register variant because it
    /// coincides with per-thread heaps at small `k`, but sweeps and
    /// agreement tests here cover all seven variants.
    ///
    /// [`PerThreadRegisters`]: TopKAlgorithm::PerThreadRegisters
    /// [`DelegateSelect`]: TopKAlgorithm::DelegateSelect
    pub fn all() -> Vec<TopKAlgorithm> {
        vec![
            TopKAlgorithm::Sort,
            TopKAlgorithm::PerThread,
            TopKAlgorithm::PerThreadRegisters,
            TopKAlgorithm::RadixSelect,
            TopKAlgorithm::BucketSelect,
            TopKAlgorithm::Bitonic(bitonic::BitonicConfig::default()),
            TopKAlgorithm::DelegateSelect(delegate::DelegateConfig::default()),
        ]
    }
}

/// Which end of the key order a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyOrder {
    /// The largest `k` items, descending (`ORDER BY key DESC LIMIT k`).
    #[default]
    Largest,
    /// The smallest `k` items, ascending (`ORDER BY key ASC LIMIT k`).
    Smallest,
}

/// A top-k invocation: algorithm, `k`, key order, and the stream to
/// launch on, in one builder-style value.
///
/// ```
/// use simt::Device;
/// use topk::{TopKAlgorithm, TopKRequest};
///
/// let dev = Device::titan_x();
/// let input = dev.upload(&[5.0f32, 1.0, 9.0, 3.0]);
/// let top = TopKRequest::largest(2).run(&dev, &input).unwrap();
/// assert_eq!(top.items, vec![9.0, 5.0]);
/// let bottom = TopKRequest::smallest(2)
///     .with_alg(TopKAlgorithm::Sort)
///     .run(&dev, &input)
///     .unwrap();
/// assert_eq!(bottom.items, vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKRequest {
    /// The algorithm to dispatch to.
    pub alg: TopKAlgorithm,
    /// How many items to return.
    pub k: usize,
    /// Largest-k (descending) or smallest-k (ascending).
    pub order: KeyOrder,
    /// Stream to issue the kernels on; `None` launches on whatever
    /// stream is current (the default stream outside any scope).
    pub stream: Option<StreamId>,
}

impl TopKRequest {
    /// A request for `alg` with the given order.
    pub fn new(alg: TopKAlgorithm, k: usize, order: KeyOrder) -> Self {
        TopKRequest {
            alg,
            k,
            order,
            stream: None,
        }
    }

    /// Largest-k with the default algorithm (bitonic top-k).
    pub fn largest(k: usize) -> Self {
        Self::new(
            TopKAlgorithm::Bitonic(bitonic::BitonicConfig::default()),
            k,
            KeyOrder::Largest,
        )
    }

    /// Smallest-k with the default algorithm (bitonic top-k).
    pub fn smallest(k: usize) -> Self {
        Self::new(
            TopKAlgorithm::Bitonic(bitonic::BitonicConfig::default()),
            k,
            KeyOrder::Smallest,
        )
    }

    /// Selects the algorithm.
    pub fn with_alg(mut self, alg: TopKAlgorithm) -> Self {
        self.alg = alg;
        self
    }

    /// Selects the key order.
    pub fn with_order(mut self, order: KeyOrder) -> Self {
        self.order = order;
        self
    }

    /// Issues the kernels on the given stream (see `simt::Stream`).
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Executes the request on the simulator — shorthand for running on a
    /// [`SimtBackend`] over `dev` (see [`TopKRequest::run_on`] for the
    /// backend-generic entry point). The kernel sequence is identical
    /// either way.
    ///
    /// Smallest-k reinterprets the input buffer **in place** as the
    /// order-reversing [`datagen::item::Rev`] wrapper (via the safe
    /// [`datagen::RevView::as_rev_view`] — no host round-trip, no extra
    /// device memory) and returns items in ascending key order.
    pub fn run<T: TopKItem>(
        &self,
        dev: &Device,
        input: &GpuBuffer<T>,
    ) -> Result<TopKResult<T>, TopKError> {
        backend::run_simt(self, dev, input)
    }

    /// Executes the request on any [`Backend`]: the simulator, the real
    /// multi-threaded CPU engine, or the runtime-selected
    /// [`ExecBackend`].
    ///
    /// ```
    /// use topk::{Backend, CpuBackend, TopKRequest};
    ///
    /// let cpu = CpuBackend::with_threads(4);
    /// let input = cpu.upload(&[5.0f32, 1.0, 9.0, 3.0]);
    /// let top = TopKRequest::largest(2).run_on(&cpu, &input).unwrap();
    /// assert_eq!(top.items, vec![9.0, 5.0]);
    /// assert!(top.report.sim.is_none(), "CPU runs are wall-clock only");
    /// ```
    pub fn run_on<T: TopKItem, B: Backend>(
        &self,
        backend: &B,
        input: &BackendBuffer<T>,
    ) -> Result<BackendTopK<T>, TopKError> {
        backend.topk(self, input)
    }
}

/// Single dispatch point every entry path funnels through.
pub(crate) fn dispatch<T: TopKItem>(
    alg: TopKAlgorithm,
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
) -> Result<TopKResult<T>, TopKError> {
    match alg {
        TopKAlgorithm::Sort => sort::sort_topk(dev, input, k),
        TopKAlgorithm::PerThread => {
            per_thread::per_thread_topk(dev, input, k, per_thread::Variant::SharedHeap)
        }
        TopKAlgorithm::PerThreadRegisters => {
            per_thread::per_thread_topk(dev, input, k, per_thread::Variant::RegisterBuffer)
        }
        TopKAlgorithm::RadixSelect => radix_select::radix_select_topk(dev, input, k),
        TopKAlgorithm::BucketSelect => bucket_select::bucket_select_topk(dev, input, k),
        TopKAlgorithm::Bitonic(cfg) => bitonic::bitonic_topk(dev, input, k, cfg),
        TopKAlgorithm::DelegateSelect(cfg) => delegate::delegate_select_topk(dev, input, k, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{Distribution, Uniform};

    #[test]
    fn dispatcher_runs_every_algorithm() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 3);
        let input = dev.upload(&data);
        let expect = datagen::reference_topk(&data, 16);
        assert_eq!(TopKAlgorithm::all().len(), 7, "all seven variants");
        for alg in TopKAlgorithm::all() {
            let r = TopKRequest::largest(16)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap();
            let got: Vec<u32> = r.items.iter().map(|x| x.key_bits()).collect();
            let want: Vec<u32> = expect.iter().map(|x| x.key_bits()).collect();
            assert_eq!(got, want, "algorithm {}", alg.name());
            assert!(r.time.seconds() > 0.0, "{} reported no time", alg.name());
            assert!(!r.reports.is_empty());
        }
    }

    #[test]
    fn zero_k_rejected() {
        let dev = Device::titan_x();
        let input = dev.upload(&[1.0f32, 2.0]);
        for alg in TopKAlgorithm::all() {
            let req = TopKRequest::largest(0).with_alg(alg);
            assert_eq!(req.run(&dev, &input).unwrap_err(), TopKError::ZeroK);
        }
    }

    #[test]
    fn smallest_k_mode() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 5);
        let input = dev.upload(&data);
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(16);
        for alg in TopKAlgorithm::all() {
            let r = TopKRequest::smallest(16)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap();
            assert_eq!(r.items, expect, "{} smallest-k", alg.name());
        }
    }

    #[test]
    fn smallest_k_with_negatives() {
        let dev = Device::titan_x();
        let data = vec![3.0f32, -7.5, 0.0, -1.0, 12.0, -7.4];
        let input = dev.upload(&data);
        let r = TopKRequest::smallest(3).run(&dev, &input).unwrap();
        assert_eq!(r.items, vec![-7.5, -7.4, -1.0]);
    }

    #[test]
    fn smallest_k_leaves_input_intact_without_reupload() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 10, 11);
        let input = dev.upload(&data);
        let before = dev.memory_highwater();
        let r = TopKRequest::smallest(8).run(&dev, &input).unwrap();
        assert_eq!(r.items.len(), 8);
        // the in-place view adds no allocation for the wrapped input
        // (scratch buffers of the algorithm itself still count)
        assert!(
            dev.memory_highwater() - before < input.len() * 4,
            "smallest-k must not duplicate the input buffer"
        );
        assert_eq!(input.to_vec(), data, "input restored after the view");
    }

    #[test]
    fn empty_input_rejected() {
        let dev = Device::titan_x();
        let input = dev.upload::<f32>(&[]);
        for alg in TopKAlgorithm::all() {
            let req = TopKRequest::new(alg, 4, KeyOrder::Largest);
            assert_eq!(req.run(&dev, &input).unwrap_err(), TopKError::EmptyInput);
        }
    }

    #[test]
    fn request_runs_on_chosen_stream() {
        let dev = Device::titan_x();
        let st = dev.create_stream();
        let data: Vec<f32> = Uniform.generate(1 << 10, 7);
        let input = dev.upload(&data);
        let r = TopKRequest::largest(4)
            .on_stream(st.id())
            .run(&dev, &input)
            .unwrap();
        assert!(r.reports.iter().all(|rep| rep.stream == st.id().0));
        assert_eq!(dev.stream_log(st.id()).len(), r.reports.len());
    }
}
