#![warn(missing_docs)]
//! GPU top-k algorithms on the `simt` simulator — the paper's contribution.
//!
//! Five algorithms (Section 3), all returning the largest `k` items in
//! descending key order:
//!
//! | Algorithm | Module | Paper |
//! |---|---|---|
//! | Sort & choose (LSD radix sort) | [`sort`] | §3, baseline |
//! | Per-thread heaps (+ register variant) | [`per_thread`] | §3.1, App. A |
//! | Radix select | [`radix_select`] | §2.3/§4.2 |
//! | Bucket select | [`bucket_select`] | §2.3/§4.2 |
//! | **Bitonic top-k** | [`bitonic`] | §3.2/§4.3 |
//!
//! Every algorithm is functionally executed on simulated device buffers —
//! results are real and tested against a sort oracle — while the
//! simulator's traffic counters drive the modeled kernel times
//! (see the `simt` crate docs).
//!
//! # Example
//!
//! ```
//! use simt::Device;
//! use topk::{bitonic::BitonicConfig, TopKAlgorithm};
//!
//! let dev = Device::titan_x();
//! let data: Vec<f32> = (0..4096).map(|i| (i * 31 % 4096) as f32).collect();
//! let input = dev.upload(&data);
//! let result = TopKAlgorithm::Bitonic(BitonicConfig::default())
//!     .run(&dev, &input, 8)
//!     .unwrap();
//! assert_eq!(result.items.len(), 8);
//! assert_eq!(result.items[0], 4095.0);
//! ```

pub mod batched;
pub mod bitonic;
pub mod bucket_select;
pub mod chunked;
pub mod hybrid;
pub mod per_thread;
pub mod radix_select;
pub mod sort;
pub(crate) mod util;

use datagen::TopKItem;
use simt::{Device, GpuBuffer, LaunchError, LaunchReport, SimTime};

/// Errors top-k execution can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKError {
    /// `k` must be at least 1.
    ZeroK,
    /// The input buffer is empty.
    EmptyInput,
    /// A kernel could not launch — e.g. per-thread top-k's shared-memory
    /// footprint exceeds the device limit for large `k` (Section 6.2).
    Launch(LaunchError),
}

impl From<LaunchError> for TopKError {
    fn from(e: LaunchError) -> Self {
        TopKError::Launch(e)
    }
}

impl std::fmt::Display for TopKError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::EmptyInput => write!(f, "input is empty"),
            TopKError::Launch(e) => write!(f, "kernel launch failed: {e}"),
        }
    }
}

impl std::error::Error for TopKError {}

/// The outcome of a top-k invocation.
#[derive(Debug, Clone)]
pub struct TopKResult<T> {
    /// The largest `k` items, descending by key. If `k > n` all items are
    /// returned.
    pub items: Vec<T>,
    /// Total modeled device time across the algorithm's kernel launches.
    pub time: SimTime,
    /// Per-kernel launch reports, in launch order.
    pub reports: Vec<LaunchReport>,
}

impl<T> TopKResult<T> {
    /// Aggregate global memory traffic over all launches.
    pub fn global_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.global_bytes()).sum()
    }

    /// Aggregate effective shared-memory traffic over all launches.
    pub fn shared_eff_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.shared_eff_bytes).sum()
    }
}

/// Algorithm selector for experiment sweeps and the query planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKAlgorithm {
    /// Full LSD radix sort, then take the first `k`.
    Sort,
    /// Per-thread heaps in shared memory (Algorithm 1).
    PerThread,
    /// Per-thread linear buffer held in registers (Appendix A).
    PerThreadRegisters,
    /// MSD radix select with the §4.2 output optimizations.
    RadixSelect,
    /// Min/max bucket select.
    BucketSelect,
    /// Bitonic top-k with the given optimization configuration.
    Bitonic(bitonic::BitonicConfig),
}

impl TopKAlgorithm {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            TopKAlgorithm::Sort => "sort",
            TopKAlgorithm::PerThread => "per-thread",
            TopKAlgorithm::PerThreadRegisters => "per-thread-regs",
            TopKAlgorithm::RadixSelect => "radix-select",
            TopKAlgorithm::BucketSelect => "bucket-select",
            TopKAlgorithm::Bitonic(_) => "bitonic",
        }
    }

    /// Runs the selected algorithm.
    pub fn run<T: TopKItem>(
        &self,
        dev: &Device,
        input: &GpuBuffer<T>,
        k: usize,
    ) -> Result<TopKResult<T>, TopKError> {
        match self {
            TopKAlgorithm::Sort => sort::sort_topk(dev, input, k),
            TopKAlgorithm::PerThread => {
                per_thread::per_thread_topk(dev, input, k, per_thread::Variant::SharedHeap)
            }
            TopKAlgorithm::PerThreadRegisters => {
                per_thread::per_thread_topk(dev, input, k, per_thread::Variant::RegisterBuffer)
            }
            TopKAlgorithm::RadixSelect => radix_select::radix_select_topk(dev, input, k),
            TopKAlgorithm::BucketSelect => bucket_select::bucket_select_topk(dev, input, k),
            TopKAlgorithm::Bitonic(cfg) => bitonic::bitonic_topk(dev, input, k, *cfg),
        }
    }

    /// Runs the algorithm in smallest-k mode (`ORDER BY … ASC LIMIT k`):
    /// items are wrapped in the order-reversing [`datagen::item::Rev`]
    /// adapter, so the same kernels compute the bottom-k. Returns items in
    /// ascending key order.
    pub fn run_smallest<T: TopKItem>(
        &self,
        dev: &Device,
        input: &GpuBuffer<T>,
        k: usize,
    ) -> Result<TopKResult<T>, TopKError> {
        use datagen::item::Rev;
        let wrapped: Vec<Rev<T>> = input.to_vec().into_iter().map(Rev).collect();
        let winput = dev.upload(&wrapped);
        let r = self.run(dev, &winput, k)?;
        Ok(TopKResult {
            items: r.items.into_iter().map(|x| x.0).collect(),
            time: r.time,
            reports: r.reports,
        })
    }

    /// All algorithms at their default configurations (the Figure 11
    /// line-up).
    pub fn all() -> Vec<TopKAlgorithm> {
        vec![
            TopKAlgorithm::Sort,
            TopKAlgorithm::PerThread,
            TopKAlgorithm::RadixSelect,
            TopKAlgorithm::BucketSelect,
            TopKAlgorithm::Bitonic(bitonic::BitonicConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{Distribution, Uniform};

    #[test]
    fn dispatcher_runs_every_algorithm() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 3);
        let input = dev.upload(&data);
        let expect = datagen::reference_topk(&data, 16);
        for alg in TopKAlgorithm::all() {
            let r = alg.run(&dev, &input, 16).unwrap();
            let got: Vec<u32> = r.items.iter().map(|x| x.key_bits()).collect();
            let want: Vec<u32> = expect.iter().map(|x| x.key_bits()).collect();
            assert_eq!(got, want, "algorithm {}", alg.name());
            assert!(r.time.seconds() > 0.0, "{} reported no time", alg.name());
            assert!(!r.reports.is_empty());
        }
    }

    #[test]
    fn zero_k_rejected() {
        let dev = Device::titan_x();
        let input = dev.upload(&[1.0f32, 2.0]);
        for alg in TopKAlgorithm::all() {
            assert_eq!(alg.run(&dev, &input, 0).unwrap_err(), TopKError::ZeroK);
        }
    }

    #[test]
    fn smallest_k_mode() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 5);
        let input = dev.upload(&data);
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(16);
        for alg in TopKAlgorithm::all() {
            let r = alg.run_smallest(&dev, &input, 16).unwrap();
            assert_eq!(r.items, expect, "{} smallest-k", alg.name());
        }
    }

    #[test]
    fn smallest_k_with_negatives() {
        let dev = Device::titan_x();
        let data = vec![3.0f32, -7.5, 0.0, -1.0, 12.0, -7.4];
        let input = dev.upload(&data);
        let r = TopKAlgorithm::Bitonic(bitonic::BitonicConfig::default())
            .run_smallest(&dev, &input, 3)
            .unwrap();
        assert_eq!(r.items, vec![-7.5, -7.4, -1.0]);
    }

    #[test]
    fn empty_input_rejected() {
        let dev = Device::titan_x();
        let input = dev.upload::<f32>(&[]);
        for alg in TopKAlgorithm::all() {
            assert_eq!(alg.run(&dev, &input, 4).unwrap_err(), TopKError::EmptyInput);
        }
    }
}
