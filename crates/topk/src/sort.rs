//! Sort-and-choose: LSD radix sort of the whole input, then take the
//! first `k` (the paper's baseline, Section 3).
//!
//! The sort is the standard GPU LSD radix sort (Section 2.2): for each
//! 8-bit digit from least to most significant, a histogram kernel and a
//! scatter kernel. Both are streaming kernels, so traffic is charged in
//! bulk: the histogram pass reads the whole array; the scatter pass reads
//! it again and writes it fully, with a partially-coalesced penalty on the
//! scattered writes. The work is independent of `k` — which is exactly why
//! the Sort line in Figure 11 is flat.

use crate::util::{validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::{RadixBits, TopKItem};
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};

/// Scattered writes reach only part of peak bandwidth; LSD radix scatter
/// has locality within digit buckets, so the penalty is mild.
pub(crate) const SCATTER_WRITE_DEGREE: f64 = 2.0;

/// Histogram pass: streams the input once and counts digit occurrences.
struct RadixHistKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    n: usize,
}

impl<T: TopKItem> Kernel for RadixHistKernel<T> {
    fn name(&self) -> &'static str {
        "radix_sort_hist"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        // one block here stands in for the whole grid: traffic is charged
        // in aggregate and the counting is done functionally
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "hist",
            vec![BulkAccess {
                buf: BufferDecl::of("input", &self.input),
                elems: self.n,
                write: false,
            }],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        blk.bulk_global_read((self.n * T::SIZE_BYTES) as u64);
        // per-element digit extraction + histogram increment
        blk.bulk_ops(2 * self.n as u64);
        let _ = &self.input; // counts are recomputed in the scatter pass
    }
}

/// Scatter pass: stable counting-sort of one digit into the output buffer.
struct RadixScatterKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    output: GpuBuffer<T>,
    n: usize,
    digit: u32,
}

impl<T: TopKItem> RadixScatterKernel<T> {
    /// Descending digit of an item: complemented so larger keys land first.
    fn digit_of(item: &T, digit: u32) -> usize {
        255 - (item.key_bits() >> (8 * digit)).low_u8() as usize
    }
}

impl<T: TopKItem> Kernel for RadixScatterKernel<T> {
    fn name(&self) -> &'static str {
        "radix_sort_scatter"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "scatter",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("output", &self.output),
                    elems: self.n,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bytes = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write((bytes as f64 * SCATTER_WRITE_DEGREE) as u64);
        blk.bulk_ops(4 * self.n as u64);

        // functional stable counting sort on this digit
        let src = self.input.to_vec();
        let mut counts = [0usize; 256];
        for item in &src[..self.n] {
            counts[Self::digit_of(item, self.digit)] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            offsets[d] = acc;
            acc += counts[d];
        }
        let mut dst = src.clone();
        for item in &src[..self.n] {
            let d = Self::digit_of(item, self.digit);
            dst[offsets[d]] = *item;
            offsets[d] += 1;
        }
        self.output.upload(&dst);
    }
}

/// Full radix sort (descending by key) followed by choosing the first `k`.
pub fn sort_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
) -> Result<TopKResult<T>, TopKError> {
    let k = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();
    let digits = T::KeyBits::BITS / 8;

    // double buffering, as real LSD sorts do (extra buffer of size n —
    // the memory-usage point of Section 4.3's discussion)
    let mut src = dev.upload(&input.to_vec());
    let mut dst = dev.alloc::<T>(n);

    for d in 0..digits {
        dev.launch(&RadixHistKernel {
            input: src.clone(),
            n,
        })?;
        dev.launch(&RadixScatterKernel {
            input: src.clone(),
            output: dst.clone(),
            n,
            digit: d,
        })?;
        std::mem::swap(&mut src, &mut dst);
    }

    let items = src.read_range(0..k);
    Ok(cap.finish(dev, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Increasing, Kv, Uniform};

    #[test]
    fn sorts_and_chooses_floats() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(4096, 1);
        let input = dev.upload(&data);
        let r = sort_topk(&dev, &input, 32).unwrap();
        assert_eq!(r.items, reference_topk(&data, 32));
    }

    #[test]
    fn works_on_u64_with_eight_passes() {
        let dev = Device::titan_x();
        let data: Vec<u64> = Uniform.generate(2048, 5);
        let input = dev.upload(&data);
        let r = sort_topk(&dev, &input, 10).unwrap();
        assert_eq!(r.items, reference_topk(&data, 10));
        // 8 digits × 2 kernels
        assert_eq!(r.reports.len(), 16);
    }

    #[test]
    fn negative_and_positive_i32() {
        let dev = Device::titan_x();
        let data: Vec<i32> = vec![-50, 10, -3, 99, 0, -100, 42];
        let input = dev.upload(&data);
        let r = sort_topk(&dev, &input, 3).unwrap();
        assert_eq!(r.items, vec![99, 42, 10]);
    }

    #[test]
    fn time_is_independent_of_k() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 2);
        let input = dev.upload(&data);
        let t8 = sort_topk(&dev, &input, 8).unwrap().time;
        let t512 = sort_topk(&dev, &input, 512).unwrap().time;
        assert!((t8.seconds() - t512.seconds()).abs() < 1e-12);
    }

    #[test]
    fn time_is_independent_of_distribution() {
        let dev = Device::titan_x();
        let a: Vec<f32> = Uniform.generate(1 << 14, 2);
        let b: Vec<f32> = Increasing.generate(1 << 14, 2);
        let ta = sort_topk(&dev, &dev.upload(&a), 8).unwrap().time;
        let tb = sort_topk(&dev, &dev.upload(&b), 8).unwrap().time;
        assert!((ta.seconds() - tb.seconds()).abs() < 1e-12);
    }

    #[test]
    fn carries_payloads_stably() {
        let dev = Device::titan_x();
        let data: Vec<Kv<u32>> = (0..1024u32).map(|i| Kv::new(i % 17, i)).collect();
        let input = dev.upload(&data);
        let r = sort_topk(&dev, &input, 5).unwrap();
        for item in &r.items {
            assert_eq!(item.key, 16);
        }
        // LSD is stable: equal keys keep input order
        let values: Vec<u32> = r.items.iter().map(|i| i.value).collect();
        assert_eq!(values, vec![16, 33, 50, 67, 84]);
    }

    #[test]
    fn sort_is_the_slowest_reasonable_baseline() {
        // traffic should be ≈ digits × (2 reads + 2 writes-equivalent) × n×4B
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 14, 9);
        let input = dev.upload(&data);
        let r = sort_topk(&dev, &input, 8).unwrap();
        let d = (1u64 << 14) * 4;
        let expect = 4 * (d + d + 2 * d);
        assert_eq!(r.global_bytes(), expect);
    }
}
