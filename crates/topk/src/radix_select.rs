//! Radix select adapted to top-k (Sections 2.3 and 4.2).
//!
//! MSD radix selection with 8-bit digits: each pass histograms the current
//! candidate set on one digit, finds the digit value `b` holding the k-th
//! largest element, and then — the paper's §4.2 refinements —
//!
//! * items with digit **greater** than `b` are written straight to the
//!   result array (they are certainly in the top-k),
//! * items with digit **equal** to `b` become the next pass's candidates,
//! * if the candidate set would not shrink, the clustering write is
//!   skipped and the pass re-reads the same input (this is what makes the
//!   bucket-killer distribution degenerate to sort-like cost, Figure 12b).
//!
//! After the last digit all remaining candidates share every digit — i.e.
//! they are key-equal — and the result is padded from them.

use crate::util::{sort_desc, validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::{RadixBits, TopKItem};
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};

/// Histogram pass over the candidate set: one streaming read plus the
/// per-thread digit-count writeback of the paper's cost model
/// (16 × 4 bytes per thread, Section 7.1).
struct RsHistKernel<T: TopKItem> {
    candidates: GpuBuffer<T>,
    n: usize,
    digit: u32,
    /// Filled functionally for the host-side bucket decision.
    hist_out: GpuBuffer<u32>,
}

impl<T: TopKItem> Kernel for RsHistKernel<T> {
    fn name(&self) -> &'static str {
        "radix_select_hist"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "hist",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("candidates", &self.candidates),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("hist_out", &self.hist_out),
                    elems: self.hist_out.len(),
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bytes = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        // per-thread digit counts written out (§7.1: 16 ints × threads);
        // the launch uses fewer threads when the input is small
        let threads = (self.n as u64 / 64).clamp(256, 24 * 2048);
        blk.bulk_global_write(16 * 4 * threads);
        blk.bulk_ops(2 * self.n as u64);

        let cand = self.candidates.to_vec();
        let mut hist = vec![0u32; 256];
        for item in &cand[..self.n] {
            hist[item.key_bits().msd_digit(self.digit) as usize] += 1;
        }
        self.hist_out.upload(&hist);
    }
}

/// Prefix-sum over the digit histogram (small, Section 7.1's `T_I2`).
struct RsPrefixKernel {
    bins: usize,
    n: usize,
}

impl Kernel for RsPrefixKernel {
    fn name(&self) -> &'static str {
        "radix_select_prefix"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        // operates on the per-thread count scratch, not a declared buffer
        Some(AccessSpec::bulk("prefix", Vec::new()))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let threads = (self.n as u64 / 64).clamp(256, 24 * 2048);
        blk.bulk_global_read(self.bins as u64 * 4 * threads / 256);
        blk.bulk_global_write(self.bins as u64 * 4 * threads / 256);
        blk.bulk_ops(threads);
    }
}

/// Clustering pass: writes the `> b` items to the result region and the
/// `== b` items to the next candidate buffer.
struct RsScatterKernel<T: TopKItem> {
    candidates: GpuBuffer<T>,
    n: usize,
    digit: u32,
    bucket: u8,
    next: GpuBuffer<T>,
    result: GpuBuffer<T>,
    result_fill: usize,
    /// Outputs: (next_len, appended_to_result)
    out_counts: GpuBuffer<u32>,
}

impl<T: TopKItem> Kernel for RsScatterKernel<T> {
    fn name(&self) -> &'static str {
        "radix_select_scatter"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "scatter",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("candidates", &self.candidates),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("next", &self.next),
                    elems: self.n,
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("result", &self.result),
                    elems: self.result.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out_counts", &self.out_counts),
                    elems: 2,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let cand = self.candidates.to_vec();
        let mut next = Vec::new();
        let mut winners = Vec::new();
        for item in &cand[..self.n] {
            let d = item.key_bits().msd_digit(self.digit);
            if d > self.bucket {
                winners.push(*item);
            } else if d == self.bucket {
                next.push(*item);
            }
        }

        let bytes_in = (self.n * T::SIZE_BYTES) as u64;
        let bytes_out = ((next.len() + winners.len()) * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes_in);
        blk.bulk_global_write((bytes_out as f64 * crate::sort::SCATTER_WRITE_DEGREE) as u64);
        blk.bulk_ops(3 * self.n as u64);

        let mut res = self.result.to_vec();
        res[self.result_fill..self.result_fill + winners.len()].copy_from_slice(&winners);
        self.result.upload(&res);
        self.out_counts.set(0, next.len() as u32);
        self.out_counts.set(1, winners.len() as u32);
        let mut next_buf = self.next.to_vec();
        next_buf[..next.len()].copy_from_slice(&next);
        self.next.upload(&next_buf);
    }
}

/// Top-k via MSD radix select.
pub fn radix_select_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
) -> Result<TopKResult<T>, TopKError> {
    let k = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();
    let digits = T::KeyBits::BITS / 8;

    let result = dev.alloc_filled::<T>(k, T::min_sentinel());
    let hist_out = dev.alloc::<u32>(256);
    let out_counts = dev.alloc::<u32>(2);
    // the candidate set starts at the caller's buffer (read-only) and then
    // ping-pongs between two work buffers — the "extra buffer of size n"
    // the paper's memory-usage discussion attributes to selection methods
    let works = [dev.alloc::<T>(n), dev.alloc::<T>(n)];
    let mut cand = input.clone();
    let mut next_i = 0usize;
    let mut cur_n = n;
    let mut k_rem = k;
    let mut result_fill = 0usize;

    for d in 0..digits {
        if k_rem == 0 || cur_n == 0 {
            break;
        }
        dev.launch(&RsHistKernel {
            candidates: cand.clone(),
            n: cur_n,
            digit: d,
            hist_out: hist_out.clone(),
        })?;
        dev.launch(&RsPrefixKernel {
            bins: 256,
            n: cur_n,
        })?;

        // find bucket b holding the k_rem-th largest, scanning digits high→low
        let hist = hist_out.to_vec();
        let mut acc = 0usize;
        let mut bucket = 0u8;
        for b in (0..256usize).rev() {
            acc += hist[b] as usize;
            if acc >= k_rem {
                bucket = b as u8;
                break;
            }
        }
        let higher: usize = hist[bucket as usize + 1..]
            .iter()
            .map(|&c| c as usize)
            .sum();
        let in_bucket = hist[bucket as usize] as usize;

        // §4.2: if nothing is eliminated, skip the clustering write and
        // re-examine the same buffer on the next digit
        if in_bucket == cur_n && higher == 0 {
            continue;
        }

        // write-out: winners (> bucket) to result, == bucket to a work buffer
        let next = works[next_i].clone();
        dev.launch(&RsScatterKernel {
            candidates: cand.clone(),
            n: cur_n,
            digit: d,
            bucket,
            next: next.clone(),
            result: result.clone(),
            result_fill,
            out_counts: out_counts.clone(),
        })?;
        cand = next;
        next_i = 1 - next_i;
        cur_n = out_counts.get(0) as usize;
        let wrote = out_counts.get(1) as usize;
        result_fill += wrote;
        k_rem -= wrote;
    }

    // all remaining candidates are key-equal on every examined digit: pad
    // the result from them (ties broken arbitrarily, like the paper)
    let mut items = result.read_range(0..result_fill);
    if k_rem > 0 {
        let rest = cand.read_range(0..cur_n);
        items.extend_from_slice(&rest[..k_rem.min(rest.len())]);
    }
    sort_desc(&mut items);
    items.truncate(k);
    Ok(cap.finish(dev, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, BucketKiller, Distribution, Kv, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn matches_reference_uniform_f32() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 13, 40);
        let input = dev.upload(&data);
        for k in [1usize, 3, 32, 500, 1024] {
            let r = radix_select_topk(&dev, &input, k).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn matches_reference_u32_and_u64() {
        let dev = Device::titan_x();
        let d32: Vec<u32> = Uniform.generate(1 << 12, 41);
        let r = radix_select_topk(&dev, &dev.upload(&d32), 64).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&d32, 64)));

        let d64: Vec<u64> = Uniform.generate(1 << 12, 42);
        let r = radix_select_topk(&dev, &dev.upload(&d64), 64).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&d64, 64)));
    }

    #[test]
    fn duplicates_pad_from_equal_bucket() {
        let dev = Device::titan_x();
        let data = vec![5u32, 9, 5, 5, 9, 1, 5, 5];
        let input = dev.upload(&data);
        let r = radix_select_topk(&dev, &input, 4).unwrap();
        assert_eq!(r.items, vec![9, 9, 5, 5]);
    }

    #[test]
    fn all_equal_input() {
        let dev = Device::titan_x();
        let data = vec![7.5f32; 512];
        let input = dev.upload(&data);
        let r = radix_select_topk(&dev, &input, 10).unwrap();
        assert_eq!(r.items, vec![7.5f32; 10]);
    }

    #[test]
    fn uniform_ints_reduce_fast() {
        // uniform u32: first pass reduces 256×, so pass-2+ traffic is tiny
        let dev = Device::titan_x();
        let data: Vec<u32> = Uniform.generate(1 << 14, 43);
        let input = dev.upload(&data);
        let r = radix_select_topk(&dev, &input, 32).unwrap();
        let first_pass_read = (1u64 << 14) * 4;
        assert!(
            r.global_bytes() < 4 * first_pass_read,
            "traffic {} should be dominated by one read of the input",
            r.global_bytes()
        );
    }

    #[test]
    fn bucket_killer_degenerates_to_full_scans() {
        let dev = Device::titan_x();
        let n = 1 << 20;
        let uni: Vec<f32> = Uniform.generate(n, 44);
        let bk: Vec<f32> = BucketKiller.generate(n, 44);
        let r_uni = radix_select_topk(&dev, &dev.upload(&uni), 32).unwrap();
        let r_bk = radix_select_topk(&dev, &dev.upload(&bk), 32).unwrap();
        assert_eq!(keybits(&r_bk.items), keybits(&reference_topk(&bk, 32)));
        assert!(
            r_bk.time.seconds() > 1.4 * r_uni.time.seconds(),
            "bucket killer should force ~4 full-array passes: bk={} uni={}",
            r_bk.time,
            r_uni.time
        );
    }

    #[test]
    fn kv_payloads_survive() {
        let dev = Device::titan_x();
        let data: Vec<Kv<f32>> = (0..2048u32).map(|i| Kv::new((i % 997) as f32, i)).collect();
        let input = dev.upload(&data);
        let r = radix_select_topk(&dev, &input, 6).unwrap();
        let expect = {
            let mut v = data.clone();
            v.sort_by(|a, b| b.key.partial_cmp(&a.key).unwrap());
            v.truncate(6);
            v
        };
        assert_eq!(keybits(&r.items), keybits(&expect));
    }

    #[test]
    fn k_equals_n() {
        let dev = Device::titan_x();
        let data: Vec<u32> = Uniform.generate(256, 45);
        let input = dev.upload(&data);
        let r = radix_select_topk(&dev, &input, 256).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&data, 256)));
    }
}
