//! Hybrid top-k strategies — the paper's stated future work
//! ("hybrid solutions could either involve multiple devices (CPUs and
//! GPUs) as well as hybrids of the presented algorithms", Section 8),
//! implemented here as extensions and evaluated in
//! `bench --bin ablation_hybrid`.
//!
//! Two hybrids:
//!
//! * [`select_then_bitonic`] — an algorithm hybrid for large `k`: one or
//!   two MSD radix-select passes cheaply shrink the candidate set (each
//!   pass is a streaming scan), then bitonic top-k finishes on the
//!   survivors where its shared-memory pipeline shines. For `k` beyond
//!   the bitonic/radix crossover this combines radix select's flat cost
//!   with bitonic's small-input speed.
//! * [`cpu_gpu_topk`] — a device hybrid: the input splits between the
//!   simulated GPU and real CPU threads in proportion to their measured
//!   scan bandwidths; each side computes a partial top-k and the winners
//!   merge on the host. Wall time is modeled as the max of the two sides
//!   (they run concurrently).

use crate::bitonic::{bitonic_topk, BitonicConfig};
use crate::util::{sort_desc, validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::{RadixBits, TopKItem};
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel, SimTime};

/// Candidate-narrowing pass: histograms the top digit, keeps every item
/// that could still be in the top-k (digit ≥ cutoff bucket), writes the
/// survivors. One streaming read + a reduced write.
struct NarrowKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    n: usize,
    k: usize,
    digit: u32,
    survivors: GpuBuffer<T>,
    out_count: GpuBuffer<u32>,
}

impl<T: TopKItem> Kernel for NarrowKernel<T> {
    fn name(&self) -> &'static str {
        "hybrid_narrow"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "narrow",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("survivors", &self.survivors),
                    elems: self.n,
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out_count", &self.out_count),
                    elems: 1,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let v = self.input.to_vec();
        let mut hist = vec![0usize; 256];
        for item in &v[..self.n] {
            hist[item.key_bits().msd_digit(self.digit) as usize] += 1;
        }
        // lowest digit value whose suffix still holds k items
        let mut acc = 0usize;
        let mut cutoff = 0usize;
        for b in (0..256).rev() {
            acc += hist[b];
            if acc >= self.k {
                cutoff = b;
                break;
            }
        }
        let survivors: Vec<T> = v[..self.n]
            .iter()
            .filter(|x| (x.key_bits().msd_digit(self.digit) as usize) >= cutoff)
            .copied()
            .collect();

        let bytes_in = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes_in);
        blk.bulk_global_write(
            (survivors.len() as f64 * T::SIZE_BYTES as f64 * crate::sort::SCATTER_WRITE_DEGREE)
                as u64,
        );
        blk.bulk_ops(3 * self.n as u64);

        self.out_count.set(0, survivors.len() as u32);
        let mut buf = self.survivors.to_vec();
        buf[..survivors.len()].copy_from_slice(&survivors);
        self.survivors.upload(&buf);
    }
}

/// Algorithm hybrid: narrow with radix passes, finish with bitonic.
///
/// Narrowing stops as soon as the candidate set is small enough that the
/// bitonic stage is cheap (≤ `n / 64` or two passes, whichever first);
/// if a pass fails to shrink the candidates (duplicate-heavy or
/// adversarial input) it falls back to pure radix select semantics by
/// keeping the survivors anyway — correctness never depends on the data.
pub fn select_then_bitonic<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
) -> Result<TopKResult<T>, TopKError> {
    let k = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();

    let mut cand = input.clone();
    let mut cur_n = n;
    let target = (n / 64).max(4 * k.next_power_of_two());
    let out_count = dev.alloc::<u32>(1);

    for digit in 0..2u32 {
        if cur_n <= target {
            break;
        }
        let survivors = dev.alloc::<T>(cur_n);
        dev.launch(&NarrowKernel {
            input: cand.clone(),
            n: cur_n,
            k,
            digit,
            survivors: survivors.clone(),
            out_count: out_count.clone(),
        })?;
        let m = out_count.get(0) as usize;
        if m == cur_n {
            break; // no reduction: stop narrowing, bitonic handles the rest
        }
        cand = survivors;
        cur_n = m;
    }

    // bitonic finish on the survivors
    let view = dev.upload(&cand.read_range(0..cur_n));
    let r = bitonic_topk(dev, &view, k, BitonicConfig::default())?;
    Ok(cap.finish(dev, r.items))
}

/// Result of the CPU+GPU device hybrid.
#[derive(Debug, Clone)]
pub struct CpuGpuResult<T> {
    /// The global top-k, descending.
    pub items: Vec<T>,
    /// Simulated GPU time for its share.
    pub gpu_time: SimTime,
    /// Measured CPU wall-clock for its share, seconds.
    pub cpu_seconds: f64,
    /// Fraction of the input routed to the GPU.
    pub gpu_fraction: f64,
    /// Modeled combined wall time: `max(gpu, cpu)` (the sides run
    /// concurrently) plus the tiny host merge.
    pub combined_seconds: f64,
}

/// Device hybrid: splits the input between the simulated GPU (bitonic
/// top-k) and real CPU threads (hand-rolled heap), in proportion to
/// `gpu_fraction` (pass the bandwidth ratio; ~0.9 for the paper's
/// hardware). Mixed-fidelity by design: GPU time is simulated, CPU time
/// is measured — the composition mirrors how such a system would overlap
/// the two devices.
pub fn cpu_gpu_topk<T: TopKItem>(
    dev: &Device,
    data: &[T],
    k: usize,
    gpu_fraction: f64,
    cpu_threads: usize,
) -> Result<CpuGpuResult<T>, TopKError> {
    use topk_cpu_shim::host_heap_topk;
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if data.is_empty() {
        return Err(TopKError::EmptyInput);
    }
    let k = k.min(data.len());
    let split = ((data.len() as f64 * gpu_fraction.clamp(0.0, 1.0)) as usize)
        .clamp(k.min(data.len() - 1), data.len() - 1)
        .max(1);
    let (gpu_part, cpu_part) = data.split_at(split);

    let input = dev.upload(gpu_part);
    let gpu_res = bitonic_topk(dev, &input, k.min(gpu_part.len()), BitonicConfig::default())?;

    let t0 = std::time::Instant::now();
    let cpu_winners = if cpu_part.is_empty() {
        Vec::new()
    } else {
        host_heap_topk(cpu_part, k, cpu_threads)
    };
    let cpu_seconds = t0.elapsed().as_secs_f64();

    let mut all = gpu_res.items.clone();
    all.extend_from_slice(&cpu_winners);
    sort_desc(&mut all);
    all.truncate(k);

    Ok(CpuGpuResult {
        items: all,
        gpu_time: gpu_res.time,
        cpu_seconds,
        gpu_fraction: split as f64 / data.len() as f64,
        combined_seconds: gpu_res.time.seconds().max(cpu_seconds) + 1e-6,
    })
}

/// A minimal in-crate heap top-k so `topk` does not depend on `topk-cpu`
/// (which sits above it in the workspace).
mod topk_cpu_shim {
    use datagen::TopKItem;

    fn sift_down<T: TopKItem>(heap: &mut [T], mut i: usize) {
        let n = heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let mut c = l;
            if l + 1 < n && heap[l + 1].item_lt(&heap[l]) {
                c = l + 1;
            }
            if heap[c].item_lt(&heap[i]) {
                heap.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
    }

    fn partition_topk<T: TopKItem>(data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        let mut heap: Vec<T> = data[..k].to_vec();
        for i in (0..k / 2).rev() {
            sift_down(&mut heap, i);
        }
        for &x in &data[k..] {
            if heap[0].item_lt(&x) {
                heap[0] = x;
                sift_down(&mut heap, 0);
            }
        }
        heap
    }

    /// Parallel partitioned heap top-k (keys only; descending).
    pub fn host_heap_topk<T: TopKItem>(data: &[T], k: usize, threads: usize) -> Vec<T> {
        let threads = threads.max(1);
        let chunk = data.len().div_ceil(threads);
        let mut winners: Vec<T> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk)
                .map(|p| s.spawn(move || partition_topk(p, k)))
                .collect();
            for h in handles {
                winners.extend(h.join().expect("cpu partition"));
            }
        });
        winners.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        winners.truncate(k);
        winners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, BucketKiller, Distribution, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn hybrid_matches_reference_across_k() {
        let data: Vec<f32> = Uniform.generate(1 << 14, 300);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        for k in [1usize, 32, 512, 2048] {
            let r = select_then_bitonic(&dev, &input, k).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn hybrid_survives_adversarial_input() {
        // bucket killer: narrowing passes barely reduce; correctness holds
        let data: Vec<f32> = BucketKiller.generate(1 << 13, 301);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let r = select_then_bitonic(&dev, &input, 32).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&data, 32)));
    }

    #[test]
    fn hybrid_beats_pure_bitonic_at_large_k() {
        let data: Vec<u32> = Uniform.generate(1 << 22, 302);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let k = 2048;
        let hybrid = select_then_bitonic(&dev, &input, k).unwrap();
        let pure = bitonic_topk(&dev, &input, k, BitonicConfig::default()).unwrap();
        assert!(
            hybrid.time.seconds() < pure.time.seconds(),
            "hybrid {} should beat pure bitonic {} at k={k}",
            hybrid.time,
            pure.time
        );
        assert_eq!(keybits(&hybrid.items), keybits(&pure.items));
    }

    #[test]
    fn hybrid_close_to_bitonic_at_small_k() {
        // at small k the narrowing pass is pure overhead vs bitonic, but
        // the hybrid must stay within ~2× (one extra scan)
        let data: Vec<f32> = Uniform.generate(1 << 20, 303);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let hybrid = select_then_bitonic(&dev, &input, 32).unwrap();
        let pure = bitonic_topk(&dev, &input, 32, BitonicConfig::default()).unwrap();
        assert!(hybrid.time.seconds() < 3.0 * pure.time.seconds());
    }

    #[test]
    fn cpu_gpu_hybrid_is_correct() {
        let data: Vec<f32> = Uniform.generate(200_000, 304);
        let dev = Device::titan_x();
        for frac in [0.0, 0.3, 0.9, 1.0] {
            let r = cpu_gpu_topk(&dev, &data, 25, frac, 4).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, 25)),
                "frac={frac}"
            );
            assert!(r.combined_seconds > 0.0);
            assert!((0.0..=1.0).contains(&r.gpu_fraction));
        }
    }

    #[test]
    fn cpu_gpu_hybrid_edge_cases() {
        let dev = Device::titan_x();
        assert!(matches!(
            cpu_gpu_topk::<f32>(&dev, &[], 4, 0.5, 2),
            Err(TopKError::EmptyInput)
        ));
        assert!(matches!(
            cpu_gpu_topk(&dev, &[1.0f32], 0, 0.5, 2),
            Err(TopKError::ZeroK)
        ));
        let r = cpu_gpu_topk(&dev, &[3.0f32, 1.0, 2.0], 5, 0.5, 2).unwrap();
        assert_eq!(r.items, vec![3.0, 2.0, 1.0]);
    }
}
