//! Bucket select adapted to top-k (Sections 2.3 and 4.2).
//!
//! An explicit min/max pass bounds the key range; each subsequent pass
//! splits the live range into 16 equal-width buckets, counts candidates
//! per bucket with atomics (the reason bucket select trails radix select,
//! Section 6.2), locates the bucket holding the k-th largest, routes
//! strictly-higher buckets to the result, and recurses into the matched
//! bucket with a narrowed range.
//!
//! `k = 1` short-circuits after the min/max pass, which is why Bucket
//! Select is the fastest method at `k = 1` in Figure 11.

use crate::util::{sort_desc, validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};

const NUM_BUCKETS: usize = 16;

/// Min/max pass: streams the input once, reduces to two values.
struct MinMaxKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    n: usize,
    /// Outputs `[min_value, max_value]` in key-value space.
    out: GpuBuffer<f64>,
}

impl<T: TopKItem> Kernel for MinMaxKernel<T> {
    fn name(&self) -> &'static str {
        "bucket_select_minmax"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "minmax",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("out", &self.out),
                    elems: 2,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        blk.bulk_global_read((self.n * T::SIZE_BYTES) as u64);
        blk.bulk_ops(2 * self.n as u64);
        let v = self.input.to_vec();
        let mut lo = f64::MAX;
        let mut hi = -f64::MAX;
        for item in &v[..self.n] {
            let x = item.key_value();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        self.out.set(0, lo);
        self.out.set(1, hi);
    }
}

/// Assigns a key *value* to one of 16 equal-width buckets of `[lo, hi]`.
///
/// Bucket select bins in value space (not bit space): equal-width value
/// buckets are what make uniform floats reduce ~16× per pass. Values that
/// drift marginally outside the range due to float rounding clamp to the
/// edge buckets.
fn bucket_of(v: f64, lo: f64, hi: f64) -> usize {
    if hi <= lo {
        return 0;
    }
    let rel = (v - lo) / (hi - lo) * NUM_BUCKETS as f64;
    (rel as isize).clamp(0, NUM_BUCKETS as isize - 1) as usize
}

/// The value sub-range bucket `b` covers.
fn bucket_range(b: usize, lo: f64, hi: f64) -> (f64, f64) {
    let w = (hi - lo) / NUM_BUCKETS as f64;
    (lo + w * b as f64, lo + w * (b + 1) as f64)
}

/// One bucketing pass: histogram with atomics, then write-out of the
/// matched bucket (and of certain winners to the result).
struct BucketPassKernel<T: TopKItem> {
    candidates: GpuBuffer<T>,
    n: usize,
    lo: f64,
    hi: f64,
    k_rem: usize,
    next: GpuBuffer<T>,
    result: GpuBuffer<T>,
    result_fill: usize,
    /// Outputs: (next_len, appended, new_lo, new_hi).
    out: GpuBuffer<f64>,
}

impl<T: TopKItem> Kernel for BucketPassKernel<T> {
    fn name(&self) -> &'static str {
        "bucket_select_pass"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "pass",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("candidates", &self.candidates),
                    elems: self.n,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("next", &self.next),
                    elems: self.n,
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("result", &self.result),
                    elems: self.result.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out", &self.out),
                    elems: 4,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let cand = self.candidates.to_vec();
        let mut hist = [0usize; NUM_BUCKETS];
        for item in &cand[..self.n] {
            hist[bucket_of(item.key_value(), self.lo, self.hi)] += 1;
        }

        // pick the bucket with the k_rem-th largest from the top
        let mut acc = 0usize;
        let mut pick = 0usize;
        for b in (0..NUM_BUCKETS).rev() {
            acc += hist[b];
            if acc >= self.k_rem {
                pick = b;
                break;
            }
        }

        let mut winners = Vec::new();
        let mut next = Vec::new();
        for item in &cand[..self.n] {
            let b = bucket_of(item.key_value(), self.lo, self.hi);
            if b > pick {
                winners.push(*item);
            } else if b == pick {
                next.push(*item);
            }
        }

        // histogram read + atomics; clustering read + write
        let bytes_in = (self.n * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(2 * bytes_in);
        blk.bulk_atomics(self.n as u64);
        let bytes_out = ((winners.len() + next.len()) * T::SIZE_BYTES) as u64;
        blk.bulk_global_write((bytes_out as f64 * crate::sort::SCATTER_WRITE_DEGREE) as u64);
        blk.bulk_ops(4 * self.n as u64);

        let mut res = self.result.to_vec();
        res[self.result_fill..self.result_fill + winners.len()].copy_from_slice(&winners);
        self.result.upload(&res);
        let mut next_buf = self.next.to_vec();
        next_buf[..next.len()].copy_from_slice(&next);
        self.next.upload(&next_buf);

        let (nlo, nhi) = bucket_range(pick, self.lo, self.hi);
        self.out.set(0, next.len() as f64);
        self.out.set(1, winners.len() as f64);
        self.out.set(2, nlo);
        self.out.set(3, nhi);
    }
}

/// Top-k via bucket select.
pub fn bucket_select_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
) -> Result<TopKResult<T>, TopKError> {
    let k = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let n = input.len();

    let minmax = dev.alloc::<f64>(2);
    dev.launch(&MinMaxKernel {
        input: input.clone(),
        n,
        out: minmax.clone(),
    })?;
    let (mut lo, mut hi) = (minmax.get(0), minmax.get(1));

    // k = 1: the max is the answer, no bucketing needed (Section 6.2)
    if k == 1 {
        let v = input.to_vec();
        let best = *v
            .iter()
            .max_by_key(|x| x.key_bits())
            .expect("validated non-empty");
        return Ok(cap.finish(dev, vec![best]));
    }

    let result = dev.alloc_filled::<T>(k, T::min_sentinel());
    let out = dev.alloc::<f64>(4);
    // candidates start at the caller's buffer (read-only), then ping-pong
    // between work buffers
    let works = [dev.alloc::<T>(n), dev.alloc::<T>(n)];
    let mut cand_buf = input.clone();
    let mut next_i = 0usize;
    let mut cur_n = n;
    let mut k_rem = k;
    let mut result_fill = 0usize;

    // each pass shrinks the candidate range 16×; 64-bit keys terminate in
    // ≤ 16 passes unless duplicates collapse the range first
    let max_passes = 20;
    for _ in 0..max_passes {
        if k_rem == 0 || cur_n == 0 || hi <= lo || cur_n <= k_rem {
            break;
        }
        dev.launch(&BucketPassKernel {
            candidates: cand_buf.clone(),
            n: cur_n,
            lo,
            hi,
            k_rem,
            next: works[next_i].clone(),
            result: result.clone(),
            result_fill,
            out: out.clone(),
        })?;
        let next_n = out.get(0) as usize;
        let wrote = out.get(1) as usize;
        let (nlo, nhi) = (out.get(2), out.get(3));
        if next_n == cur_n && wrote == 0 && (nhi - nlo) >= (hi - lo) {
            break; // range cannot narrow further (mass of duplicates)
        }
        cand_buf = works[next_i].clone();
        next_i = 1 - next_i;
        cur_n = next_n;
        k_rem -= wrote;
        result_fill += wrote;
        lo = nlo;
        hi = nhi;
    }

    let mut items = result.read_range(0..result_fill);
    if k_rem > 0 {
        let rest = cand_buf.read_range(0..cur_n);
        let mut cand_sorted = rest;
        sort_desc(&mut cand_sorted);
        items.extend_from_slice(&cand_sorted[..k_rem.min(cand_sorted.len())]);
    }
    sort_desc(&mut items);
    items.truncate(k);
    Ok(cap.finish(dev, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, BucketKiller, Distribution, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0.0, 0.0, 160.0), 0);
        assert_eq!(bucket_of(159.9, 0.0, 160.0), 15);
        assert_eq!(bucket_of(80.0, 0.0, 160.0), 8);
        assert_eq!(bucket_of(5.0, 5.0, 5.0), 0);
        // out-of-range values clamp to edge buckets
        assert_eq!(bucket_of(-1.0, 0.0, 160.0), 0);
        assert_eq!(bucket_of(1e9, 0.0, 160.0), 15);
    }

    #[test]
    fn bucket_range_partitions() {
        let (lo, hi) = (100.0f64, 1100.0f64);
        let mut expect_next = lo;
        for b in 0..NUM_BUCKETS {
            let (blo, bhi) = bucket_range(b, lo, hi);
            assert!(
                (blo - expect_next).abs() < 1e-9,
                "bucket {b} not contiguous"
            );
            assert!(bhi > blo);
            expect_next = bhi;
        }
        assert!((expect_next - hi).abs() < 1e-9);
    }

    #[test]
    fn bucket_of_consistent_with_range() {
        let (lo, hi) = (1000.0f64, 987_654.0f64);
        for b in 0..NUM_BUCKETS {
            let (blo, bhi) = bucket_range(b, lo, hi);
            let mid = (blo + bhi) / 2.0;
            assert_eq!(bucket_of(mid, lo, hi), b);
        }
    }

    #[test]
    fn uniform_floats_reduce_sixteen_fold() {
        // value-space binning: uniform (0,1) floats spread evenly
        let vals: Vec<f64> = (0..16000).map(|i| i as f64 / 16000.0).collect();
        let mut hist = [0usize; NUM_BUCKETS];
        for &v in &vals {
            hist[bucket_of(v, 0.0, 1.0)] += 1;
        }
        for (b, &c) in hist.iter().enumerate() {
            assert!((900..1100).contains(&c), "bucket {b} count {c}");
        }
    }

    #[test]
    fn matches_reference_uniform() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 13, 50);
        let input = dev.upload(&data);
        for k in [1usize, 2, 32, 300] {
            let r = bucket_select_topk(&dev, &input, k).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn k1_is_just_minmax() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 51);
        let input = dev.upload(&data);
        let r = bucket_select_topk(&dev, &input, 1).unwrap();
        assert_eq!(r.reports.len(), 1, "k=1 should only run the min/max pass");
        assert_eq!(r.items[0], reference_topk(&data, 1)[0]);
    }

    #[test]
    fn duplicates_terminate() {
        let dev = Device::titan_x();
        let mut data = vec![3.25f32; 1000];
        data[17] = 9.0;
        data[801] = -2.0;
        let input = dev.upload(&data);
        let r = bucket_select_topk(&dev, &input, 5).unwrap();
        assert_eq!(r.items, vec![9.0, 3.25, 3.25, 3.25, 3.25]);
    }

    #[test]
    fn negative_floats() {
        let dev = Device::titan_x();
        let data = vec![-1.0f32, -100.0, -3.5, -0.25, -77.0];
        let input = dev.upload(&data);
        let r = bucket_select_topk(&dev, &input, 2).unwrap();
        assert_eq!(r.items, vec![-0.25, -1.0]);
    }

    #[test]
    fn slower_than_radix_select_on_uniform() {
        // large enough that traffic dominates launch overhead; u32 keys as
        // in Figure 11b, where both reduce maximally per pass
        let dev = Device::titan_x();
        let data: Vec<u32> = Uniform.generate(1 << 22, 52);
        let input = dev.upload(&data);
        let tb = bucket_select_topk(&dev, &input, 32).unwrap().time;
        let tr = crate::radix_select::radix_select_topk(&dev, &input, 32)
            .unwrap()
            .time;
        assert!(
            tb.seconds() > tr.seconds(),
            "bucket={} should trail radix={} (atomics + extra pass)",
            tb,
            tr
        );
    }

    #[test]
    fn bucket_killer_hurts_but_terminates() {
        let dev = Device::titan_x();
        let n = 1 << 13;
        let bk: Vec<f32> = BucketKiller.generate(n, 53);
        let uni: Vec<f32> = Uniform.generate(n, 53);
        let r_bk = bucket_select_topk(&dev, &dev.upload(&bk), 32).unwrap();
        let r_uni = bucket_select_topk(&dev, &dev.upload(&uni), 32).unwrap();
        assert_eq!(keybits(&r_bk.items), keybits(&reference_topk(&bk, 32)));
        assert!(r_bk.time.seconds() > r_uni.time.seconds());
    }
}
