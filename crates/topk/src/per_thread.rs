//! Per-thread top-k (Algorithm 1 / Section 3.1) and its register-buffer
//! variant (Appendix A).
//!
//! Each thread scans a strided slice of the input and maintains its own
//! top-k structure — a min-heap in shared memory, or a linear buffer the
//! compiler holds in registers. A final reduction merges the per-thread
//! results.
//!
//! This kernel's performance is governed by three effects the simulator
//! models explicitly:
//!
//! * **Occupancy**: shared memory per block is `block_dim · k · item`;
//!   large `k` strangles residency, degrading achieved global bandwidth,
//!   and fails outright for `k·32·item > 48 KB` (Figure 11's missing
//!   points at k ≥ 512).
//! * **Thread divergence**: heap updates are data-dependent; a warp pays
//!   the *maximum* sift depth over its 32 lanes every iteration where any
//!   lane updates. The execution here replays the real per-lane updates,
//!   so distribution sensitivity (Figure 12a: sorted input is ~3× worse)
//!   emerges from the data, not from a hand-tuned constant.
//! * **Register spilling** (register variant): beyond the register
//!   budget, part of the buffer lives in off-chip local memory, and every
//!   update scan pays global traffic for the spilled fraction
//!   (Figure 18's cliff between k = 32 and 64).

use crate::util::{sort_desc, validate, LogCapture};
use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel, LaunchError};

/// Which per-thread structure holds the running top-k.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// k-element min-heap per thread, in shared memory (Algorithm 1).
    SharedHeap,
    /// Linear min-tracking buffer per thread, in registers (Appendix A).
    RegisterBuffer,
}

/// Scalar-op cost of one warp-serialized sift level. Calibrated so that a
/// fully-updating warp (sorted input) is compute-bound at ~3× the
/// memory-bound uniform case, matching Figure 12a's per-thread line.
const SIFT_LEVEL_OPS: u64 = 24;
/// Registers available for the register-variant buffer, in 32-bit words
/// (the rest of the 255-register budget is loop state and addresses).
const REG_BUFFER_WORDS: usize = 200;

/// A min-heap over key bits, stored as a flat array — the per-thread
/// structure of Algorithm 1. Returns sift depths so the kernel can model
/// divergence faithfully.
struct MinHeap<T: TopKItem> {
    items: Vec<T>,
}

impl<T: TopKItem> MinHeap<T> {
    fn with_capacity(k: usize) -> Self {
        Self {
            items: Vec::with_capacity(k),
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn min(&self) -> &T {
        &self.items[0]
    }

    /// Pushes during the fill phase; returns sift-up depth.
    fn push(&mut self, v: T) -> u32 {
        self.items.push(v);
        let mut i = self.items.len() - 1;
        let mut depth = 0;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].item_lt(&self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
                depth += 1;
            } else {
                break;
            }
        }
        depth
    }

    /// Replaces the minimum and sifts down; returns sift depth.
    fn replace_min(&mut self, v: T) -> u32 {
        self.items[0] = v;
        let n = self.items.len();
        let mut i = 0;
        let mut depth = 0;
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.items[l].item_lt(&self.items[smallest]) {
                smallest = l;
            }
            if r < n && self.items[r].item_lt(&self.items[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
            depth += 1;
        }
        depth
    }

    fn into_sorted_desc(mut self) -> Vec<T> {
        sort_desc(&mut self.items);
        self.items
    }
}

/// The per-thread top-k kernel: every simulated thread scans its strided
/// slice, maintaining heap (or buffer) state, with warp-level divergence
/// and traffic accounting.
struct PerThreadKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    /// Per-thread results, laid out `O[t + j·nt]` (coalesced write).
    output: GpuBuffer<T>,
    k: usize,
    block_dim: usize,
    grid_dim: usize,
    variant: Variant,
}

impl<T: TopKItem> PerThreadKernel<T> {
    fn total_threads(&self) -> usize {
        self.block_dim * self.grid_dim
    }
}

impl<T: TopKItem> Kernel for PerThreadKernel<T> {
    fn name(&self) -> &'static str {
        match self.variant {
            Variant::SharedHeap => "per_thread_topk",
            Variant::RegisterBuffer => "per_thread_topk_regs",
        }
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn grid_dim(&self) -> usize {
        self.grid_dim
    }
    fn shared_bytes_per_block(&self) -> usize {
        match self.variant {
            Variant::SharedHeap => self.block_dim * self.k * T::SIZE_BYTES,
            Variant::RegisterBuffer => 0,
        }
    }
    fn regs_per_thread(&self) -> usize {
        match self.variant {
            Variant::SharedHeap => 32,
            Variant::RegisterBuffer => {
                let words = self.k * T::SIZE_BYTES / 4 + 32;
                words.min(255) // beyond 255 the buffer spills, not residency
            }
        }
    }

    fn low_occupancy_waiver(&self) -> Option<&'static str> {
        // The shared-heap variant stages block_dim * k items per block, so
        // occupancy collapsing as k grows is the algorithm's documented
        // failure mode (Section 6.2 / Figure 11), not a launch-config bug.
        // The register variant carries k items per thread instead — same
        // story, through the register file.
        Some("per-thread top-k keeps k items per thread resident; occupancy loss at large k is inherent (paper §6.2)")
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "scan",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.input.len(),
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("output", &self.output),
                    elems: self.total_threads() * self.k,
                    write: true,
                },
            ],
        ))
    }

    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.input.len();
        let nt = self.total_threads();
        let ws = blk.spec().warp_size;
        let input = self.input.to_vec();
        let k = self.k;

        let block_lo = blk.block_idx * self.block_dim;
        let mut heaps: Vec<MinHeap<T>> = (0..self.block_dim)
            .map(|_| MinHeap::with_capacity(k))
            .collect();

        // traffic/ops accumulators (charged in bulk at the end)
        let mut global_read_items = 0u64;
        let mut shared_words = 0u64;
        let mut warp_ops = 0u64;
        let mut spill_bytes = 0u64;

        // register-variant spill fraction of the buffer
        let buf_words = k * T::SIZE_BYTES / 4;
        let spill_frac = if buf_words > REG_BUFFER_WORDS {
            (buf_words - REG_BUFFER_WORDS) as f64 / buf_words as f64
        } else {
            0.0
        };

        let iters = n.div_ceil(nt);
        for it in 0..iters {
            for w in 0..self.block_dim / ws.min(self.block_dim) {
                let mut warp_max_sift = 0u32;
                let mut warp_any = false;
                let mut lanes_active = 0u64;
                for lane in 0..ws.min(self.block_dim) {
                    let tid = w * ws + lane;
                    let gtid = block_lo + tid;
                    let idx = gtid + it * nt;
                    if idx >= n {
                        continue;
                    }
                    lanes_active += 1;
                    global_read_items += 1;
                    let x = input[idx];
                    let heap = &mut heaps[tid];
                    let sift = if heap.len() < k {
                        warp_any = true;
                        heap.push(x)
                    } else if heap.min().item_lt(&x) {
                        warp_any = true;
                        heap.replace_min(x)
                    } else {
                        0
                    };
                    warp_max_sift = warp_max_sift.max(sift);
                }
                if lanes_active == 0 {
                    continue;
                }
                match self.variant {
                    Variant::SharedHeap => {
                        // every lane reads the heap root (interleaved layout
                        // → conflict-free); an updating warp pays the max
                        // sift depth in lockstep
                        shared_words += lanes_active * (T::SIZE_BYTES as u64 / 4);
                        warp_ops += ws as u64 * 2;
                        if warp_any {
                            shared_words += lanes_active
                                * 3
                                * (warp_max_sift as u64 + 1)
                                * (T::SIZE_BYTES as u64 / 4);
                            warp_ops += ws as u64 * (warp_max_sift as u64 + 1) * SIFT_LEVEL_OPS;
                        }
                    }
                    Variant::RegisterBuffer => {
                        // min compare is register-resident; an update scans
                        // the whole buffer (k ops per lane, in lockstep)
                        warp_ops += ws as u64 * 2;
                        if warp_any {
                            warp_ops += ws as u64 * k as u64 * 2;
                            spill_bytes += lanes_active
                                * (k as f64 * spill_frac) as u64
                                * T::SIZE_BYTES as u64;
                        }
                    }
                }
            }
        }

        // coalesced output write: O[t + j·nt]
        for (tid, heap) in heaps.into_iter().enumerate() {
            let gtid = block_lo + tid;
            let sorted = heap.into_sorted_desc();
            for (j, item) in sorted.into_iter().enumerate() {
                self.output.set(gtid + j * nt, item);
            }
        }

        blk.bulk_global_read(global_read_items * T::SIZE_BYTES as u64);
        blk.bulk_global_read(spill_bytes); // local-memory spills are global traffic
        blk.bulk_global_write((self.block_dim * k * T::SIZE_BYTES) as u64);
        blk.bulk_shared(shared_words * 4);
        blk.bulk_ops(warp_ops);
    }
}

/// Final reduction: sorts the `nt·k` per-thread winners and keeps `k`.
/// Small relative to the scan, charged as three streaming passes.
struct FinalReduceKernel<T: TopKItem> {
    candidates: GpuBuffer<T>,
    k: usize,
}

impl<T: TopKItem> Kernel for FinalReduceKernel<T> {
    fn name(&self) -> &'static str {
        "per_thread_final_reduce"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        let cand = BufferDecl::of("candidates", &self.candidates);
        Some(AccessSpec::bulk(
            "reduce",
            vec![
                BulkAccess {
                    buf: cand.clone(),
                    elems: self.candidates.len(),
                    write: false,
                },
                BulkAccess {
                    buf: cand,
                    elems: self.candidates.len(),
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let m = self.candidates.len();
        let bytes = (m * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(3 * bytes);
        blk.bulk_global_write(bytes);
        blk.bulk_ops((m as f64 * (self.k.max(2) as f64).log2() * 2.0) as u64);
    }
}

/// Picks the largest power-of-two block size whose shared footprint fits,
/// mirroring how the CUDA implementation would be tuned.
fn pick_block_dim<T: TopKItem>(
    dev: &Device,
    k: usize,
    variant: Variant,
) -> Result<usize, TopKError> {
    let spec = dev.spec();
    match variant {
        Variant::RegisterBuffer => Ok(256),
        Variant::SharedHeap => {
            let mut bd = 256usize;
            while bd >= spec.warp_size && bd * k * T::SIZE_BYTES > spec.shared_mem_per_block {
                bd /= 2;
            }
            if bd < spec.warp_size {
                return Err(TopKError::Launch(LaunchError::SharedMemoryExceeded {
                    requested: spec.warp_size * k * T::SIZE_BYTES,
                    limit: spec.shared_mem_per_block,
                }));
            }
            Ok(bd)
        }
    }
}

/// Per-thread top-k (both variants).
pub fn per_thread_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
    variant: Variant,
) -> Result<TopKResult<T>, TopKError> {
    let k = validate(input, k)?;
    let cap = LogCapture::begin(dev);
    let spec = dev.spec();
    let n = input.len();

    let block_dim = pick_block_dim::<T>(dev, k, variant)?;
    // enough threads to fill the device, but never more threads than
    // elements (each thread must see at least one element)
    let target_threads = spec.num_sms * spec.max_warps_per_sm * spec.warp_size / 2;
    let grid_dim = (target_threads / block_dim)
        .min(n.div_ceil(block_dim))
        .max(1);
    let nt = block_dim * grid_dim;

    // min-sentinel fill: threads that saw fewer than k elements leave
    // their unused slots at the bottom of the order
    let candidates = dev.alloc_filled(nt * k, T::min_sentinel());
    dev.launch(&PerThreadKernel {
        input: input.clone(),
        output: candidates.clone(),
        k,
        block_dim,
        grid_dim,
        variant,
    })?;

    dev.launch(&FinalReduceKernel {
        candidates: candidates.clone(),
        k,
    })?;
    // the per-thread phase kept every candidate that could be in the
    // top-k, so the reduction is a plain sort-and-take over nt·k items
    let mut cand = candidates.to_vec();
    sort_desc(&mut cand);
    cand.truncate(k);

    Ok(cap.finish(dev, cand))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Decreasing, Distribution, Increasing, Kv, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn matches_reference_uniform() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 13, 4);
        let input = dev.upload(&data);
        for k in [1usize, 7, 32, 100] {
            let r = per_thread_topk(&dev, &input, k, Variant::SharedHeap).unwrap();
            assert_eq!(
                keybits(&r.items),
                keybits(&reference_topk(&data, k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn register_variant_matches_reference() {
        let dev = Device::titan_x();
        let data: Vec<u32> = Uniform.generate(1 << 12, 5);
        let input = dev.upload(&data);
        let r = per_thread_topk(&dev, &input, 24, Variant::RegisterBuffer).unwrap();
        assert_eq!(keybits(&r.items), keybits(&reference_topk(&data, 24)));
    }

    #[test]
    fn fails_for_k512_floats_like_the_paper() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 12, 6);
        let input = dev.upload(&data);
        assert!(per_thread_topk(&dev, &input, 512, Variant::SharedHeap).is_err());
        // 256 still launches (32 threads × 256 × 4 B = 32 KB)
        assert!(per_thread_topk(&dev, &input, 256, Variant::SharedHeap).is_ok());
    }

    #[test]
    fn fails_earlier_for_doubles() {
        let dev = Device::titan_x();
        let data: Vec<f64> = Uniform.generate(1 << 12, 6);
        let input = dev.upload(&data);
        // k=256 doubles: 32 × 256 × 8 B = 64 KB > 48 KB
        assert!(per_thread_topk(&dev, &input, 256, Variant::SharedHeap).is_err());
        assert!(per_thread_topk(&dev, &input, 128, Variant::SharedHeap).is_ok());
    }

    #[test]
    fn increasing_is_slower_than_uniform() {
        // The contrast needs the paper's regime: elements-per-thread well
        // beyond 32·k, so uniform warps go quiet after the warm-up while
        // sorted input updates every iteration. A smaller device at 2^24
        // elements reaches that regime at test scale.
        let dev = Device::new(simt::DeviceSpec::small_mobile());
        let n = 1 << 24;
        let uni: Vec<f32> = Uniform.generate(n, 7);
        let inc: Vec<f32> = Increasing.generate(n, 7);
        let tu = per_thread_topk(&dev, &dev.upload(&uni), 8, Variant::SharedHeap)
            .unwrap()
            .time;
        let ti = per_thread_topk(&dev, &dev.upload(&inc), 8, Variant::SharedHeap)
            .unwrap()
            .time;
        assert!(
            ti.seconds() > tu.seconds() * 1.3,
            "sorted input should be much slower: inc={ti} uni={tu}"
        );
    }

    #[test]
    fn decreasing_is_fastest_case() {
        // decreasing: after the fill phase no element ever displaces the
        // heap minimum, so warps run the cheap compare-only path
        let dev = Device::new(simt::DeviceSpec::small_mobile());
        let n = 1 << 22;
        let dec: Vec<f32> = Decreasing.generate(n, 7);
        let inc: Vec<f32> = Increasing.generate(n, 7);
        let rd = per_thread_topk(&dev, &dev.upload(&dec), 8, Variant::SharedHeap).unwrap();
        let ri = per_thread_topk(&dev, &dev.upload(&inc), 8, Variant::SharedHeap).unwrap();
        let ops_d: u64 = rd.reports.iter().map(|r| r.stats.compute_ops).sum();
        let ops_i: u64 = ri.reports.iter().map(|r| r.stats.compute_ops).sum();
        assert!(
            ops_i > 2 * ops_d,
            "increasing should do far more heap work: inc={ops_i} dec={ops_d}"
        );
        assert!(rd.time.seconds() <= ri.time.seconds());
    }

    #[test]
    fn register_variant_spills_for_large_k() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Increasing.generate(1 << 18, 8);
        let input = dev.upload(&data);
        let t64 = per_thread_topk(&dev, &input, 64, Variant::RegisterBuffer).unwrap();
        let t256 = per_thread_topk(&dev, &input, 256, Variant::RegisterBuffer).unwrap();
        // spilled buffer adds global traffic
        assert!(t256.global_bytes() > t64.global_bytes());
    }

    #[test]
    fn kv_payloads_survive() {
        let dev = Device::titan_x();
        let data: Vec<Kv<u32>> = (0..4096u32)
            .map(|i| Kv::new(i.wrapping_mul(2654435761) % 100_000, i))
            .collect();
        let input = dev.upload(&data);
        let r = per_thread_topk(&dev, &input, 8, Variant::SharedHeap).unwrap();
        let mut expect = data.clone();
        expect.sort_by_key(|kv| std::cmp::Reverse(kv.key));
        for (g, e) in r.items.iter().zip(expect.iter()) {
            assert_eq!(g.key, e.key);
        }
    }

    #[test]
    fn small_n_fewer_threads_than_default() {
        let dev = Device::titan_x();
        let data = vec![3.0f32, 1.0, 2.0];
        let input = dev.upload(&data);
        let r = per_thread_topk(&dev, &input, 2, Variant::SharedHeap).unwrap();
        assert_eq!(r.items, vec![3.0, 2.0]);
    }
}
