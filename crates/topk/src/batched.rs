//! Batched top-k: many independent queries in one launch.
//!
//! The paper's introduction motivates GPU top-k with the open feature
//! requests in TensorFlow and ArrayFire — both of which are *row-wise*
//! top-k over a batch of vectors (beam search, sampling, k-NN shortlists).
//! This module extends bitonic top-k to that shape: a `rows × cols`
//! matrix where each row needs its own top-k, executed as one kernel
//! with one thread block per row (cols small enough for shared memory)
//! or a per-row pipeline otherwise.
//!
//! Batching matters because a single row is far too small to fill the
//! device: at `cols = 4096`, one row is one block — a batch of 1024 rows
//! turns the same kernel into a full launch at full occupancy, amortizing
//! the launch overhead 1024×.

use crate::bitonic::{bitonic_topk, BitonicConfig};
use crate::util::LogCapture;
use crate::{TopKError, TopKResult};
use datagen::TopKItem;
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};
use sortnet::{host, next_pow2};
use topk_costmodel::shared_traffic_factor;

/// One block per row: loads the row into shared memory, runs the full
/// local-sort/merge/rebuild pipeline down to `k`, writes `k` winners.
struct BatchedRowKernel<T: TopKItem> {
    input: GpuBuffer<T>,
    output: GpuBuffer<T>,
    rows: usize,
    cols: usize,
    row_pad: usize,
    k_eff: usize,
}

impl<T: TopKItem> Kernel for BatchedRowKernel<T> {
    fn name(&self) -> &'static str {
        "batched_bitonic_row"
    }
    fn block_dim(&self) -> usize {
        (self.row_pad / 16).clamp(32, 256).min(self.row_pad)
    }
    fn grid_dim(&self) -> usize {
        self.rows
    }
    fn shared_bytes_per_block(&self) -> usize {
        // padded staging for the row
        self.row_pad * T::SIZE_BYTES * 33 / 32 + 4
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "row",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("input", &self.input),
                    elems: self.rows * self.cols,
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("output", &self.output),
                    elems: self.rows * self.k_eff,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let row = blk.block_idx;
        let base = row * self.cols;

        // functional per-row reduction via the host network operators
        let mut buf: Vec<T> = self.input.read_range(base..base + self.cols);
        buf.resize(self.row_pad, T::min_sentinel());
        host::local_sort(&mut buf, self.k_eff);
        let mut len = buf.len();
        while len > self.k_eff {
            let mut half = vec![T::min_sentinel(); len / 2];
            host::merge_halve(&buf[..len], self.k_eff, &mut half);
            len /= 2;
            buf[..len].copy_from_slice(&half);
            host::rebuild(&mut buf[..len], self.k_eff);
        }
        buf.truncate(self.k_eff);
        buf.reverse();
        for (j, item) in buf.iter().enumerate() {
            self.output.set(row * self.k_eff + j, *item);
        }

        // traffic: the row in, k out, and the usual shared pipeline factor
        let bytes = (self.cols * T::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write((self.k_eff * T::SIZE_BYTES) as u64);
        let merges = sortnet::log2(self.row_pad / self.k_eff) as usize;
        let factor = shared_traffic_factor(self.k_eff, 16, merges.max(1), true);
        blk.bulk_shared((factor * (self.row_pad * T::SIZE_BYTES) as f64) as u64);
        blk.bulk_ops((self.row_pad * 2 * (merges + 4)) as u64);
    }
}

/// The largest padded row length (in items) that [`batched_bitonic_topk`]
/// can run as a single fused launch on `spec` — one block per row with
/// the whole row staged in shared memory. Longer rows fall back to a
/// per-row pipeline. Callers that coalesce independent queries (the qdb
/// serving layer) use this to decide which queries are batchable.
pub fn max_single_launch_row<T: TopKItem>(spec: &simt::DeviceSpec) -> usize {
    // the staging buffer must fit the block's shared memory
    let budget = spec.shared_mem_per_block * 11 / 12;
    let mut m = 1usize;
    while 2 * m * T::SIZE_BYTES * 33 / 32 <= budget {
        m *= 2;
    }
    m
}

/// Result of a batched query.
#[derive(Debug, Clone)]
pub struct BatchedResult<T> {
    /// `rows` result lists, each the row's largest `k` descending.
    pub rows: Vec<Vec<T>>,
    /// Total modeled device time.
    pub time: simt::SimTime,
}

/// Row-wise top-k over a row-major `rows × cols` matrix.
///
/// Rows whose padded length fits a thread block's shared memory run as
/// one fused launch (one block per row); larger rows fall back to the
/// standard multi-kernel pipeline per row.
pub fn batched_bitonic_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    rows: usize,
    cols: usize,
    k: usize,
) -> Result<BatchedResult<T>, TopKError> {
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if rows == 0 || cols == 0 || input.len() < rows * cols {
        return Err(TopKError::EmptyInput);
    }
    let cap = LogCapture::begin(dev);
    let k_req = k.min(cols);
    let k_eff = next_pow2(k_req);
    let row_pad = next_pow2(cols).max(k_eff);

    let max_row = max_single_launch_row::<T>(dev.spec());

    let mut out_rows: Vec<Vec<T>> = Vec::with_capacity(rows);
    if row_pad <= max_row {
        let output = dev.alloc_filled::<T>(rows * k_eff, T::min_sentinel());
        dev.launch(&BatchedRowKernel {
            input: input.clone(),
            output: output.clone(),
            rows,
            cols,
            row_pad,
            k_eff,
        })?;
        for r in 0..rows {
            let mut row = output.read_range(r * k_eff..r * k_eff + k_eff);
            row.truncate(k_req);
            out_rows.push(row);
        }
    } else {
        // large rows: standard pipeline per row (still correct, just not
        // single-launch)
        for r in 0..rows {
            let row_buf = dev.upload(&input.read_range(r * cols..(r + 1) * cols));
            let res: TopKResult<T> = bitonic_topk(dev, &row_buf, k_req, BitonicConfig::default())?;
            out_rows.push(res.items);
        }
    }

    let summary = cap.finish(dev, Vec::<()>::new());
    Ok(BatchedResult {
        rows: out_rows,
        time: summary.time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Uniform};

    fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        Uniform.generate(rows * cols, seed)
    }

    #[test]
    fn every_row_matches_its_reference() {
        let (rows, cols, k) = (64usize, 512usize, 8usize);
        let data = matrix(rows, cols, 400);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let r = batched_bitonic_topk(&dev, &input, rows, cols, k).unwrap();
        assert_eq!(r.rows.len(), rows);
        for (i, row) in r.rows.iter().enumerate() {
            let expect = reference_topk(&data[i * cols..(i + 1) * cols], k);
            assert_eq!(row, &expect, "row {i}");
        }
    }

    #[test]
    fn non_pow2_cols_and_k_clamp() {
        let (rows, cols) = (7usize, 300usize);
        let data = matrix(rows, cols, 401);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let r = batched_bitonic_topk(&dev, &input, rows, cols, 5).unwrap();
        for (i, row) in r.rows.iter().enumerate() {
            assert_eq!(row, &reference_topk(&data[i * cols..(i + 1) * cols], 5));
        }
        // k > cols clamps to cols
        let r = batched_bitonic_topk(&dev, &input, rows, cols, 1000).unwrap();
        assert_eq!(r.rows[0].len(), cols);
    }

    #[test]
    fn large_rows_fall_back_per_row() {
        let (rows, cols, k) = (3usize, 1 << 14, 16usize);
        let data = matrix(rows, cols, 402);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let r = batched_bitonic_topk(&dev, &input, rows, cols, k).unwrap();
        for (i, row) in r.rows.iter().enumerate() {
            assert_eq!(row, &reference_topk(&data[i * cols..(i + 1) * cols], k));
        }
    }

    #[test]
    fn batching_amortizes_launch_overhead() {
        // 256 rows in one launch vs 256 separate top-k calls
        let (rows, cols, k) = (256usize, 1024usize, 8usize);
        let data = matrix(rows, cols, 403);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let batched = batched_bitonic_topk(&dev, &input, rows, cols, k).unwrap();

        let mut serial = simt::SimTime::ZERO;
        for i in 0..rows {
            let row_buf = dev.upload(&data[i * cols..(i + 1) * cols]);
            serial += bitonic_topk(&dev, &row_buf, k, BitonicConfig::default())
                .unwrap()
                .time;
        }
        assert!(
            batched.time.seconds() * 5.0 < serial.seconds(),
            "batched {} should beat {} serial launches at {}",
            batched.time,
            rows,
            serial
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let dev = Device::titan_x();
        let input = dev.upload(&[1.0f32; 64]);
        assert!(matches!(
            batched_bitonic_topk(&dev, &input, 8, 8, 0),
            Err(TopKError::ZeroK)
        ));
        assert!(matches!(
            batched_bitonic_topk(&dev, &input, 0, 8, 2),
            Err(TopKError::EmptyInput)
        ));
        assert!(matches!(
            batched_bitonic_topk(&dev, &input, 9, 8, 2), // 72 > 64
            Err(TopKError::EmptyInput)
        ));
    }
}
