//! The four Twitter queries of Section 6.8, each with the paper's
//! execution strategies and per-stage kernel-time breakdowns (Figure 16).

use datagen::{Kv, Rev};
use simt::{Device, SimTime};
use topk::bitonic::BitonicConfig;
use topk::{TopKAlgorithm, TopKRequest};

use crate::engine::{
    run_fused_topk, run_topk_stage, FilterKernel, FilterOp, GroupCountKernel, ProjectRankKernel,
    TopKStrategy,
};
use crate::error::QdbError;
use crate::table::GpuTweetTable;

/// How a query executes its top-k (the Figure 16 strategy line-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Separate filter/project kernel, then full sort (MapD's default).
    StageSort,
    /// Separate filter/project kernel, then bitonic top-k.
    StageBitonic,
    /// The Section 5 fused kernel: filter/ranking evaluated inside the
    /// SortReducer.
    CombinedBitonic,
}

impl Strategy {
    /// Name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::StageSort => "filter+sort",
            Strategy::StageBitonic => "filter+bitonic",
            Strategy::CombinedBitonic => "combined-bitonic",
        }
    }

    /// All three strategies, in the Figure 16 order.
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::StageSort,
            Strategy::StageBitonic,
            Strategy::CombinedBitonic,
        ]
    }
}

/// The outcome of one query execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result tweet ids (or uids for Q4), ranked.
    pub ids: Vec<u32>,
    /// Total modeled kernel time on the device.
    pub kernel_time: SimTime,
    /// Per-stage breakdown `(kernel name, time)`.
    pub breakdown: Vec<(String, SimTime)>,
}

fn collect_result(dev: &Device, log_start: usize, ids: Vec<u32>) -> QueryResult {
    let reports = dev.log_since(log_start);
    QueryResult {
        ids,
        kernel_time: reports.iter().map(|r| r.time).sum(),
        breakdown: reports
            .iter()
            .map(|r| (r.name.to_string(), r.time))
            .collect(),
    }
}

/// Q1/Q3: `SELECT id FROM tweets WHERE <filter> ORDER BY retweet_count
/// DESC LIMIT k`.
pub fn filtered_topk(
    dev: &Device,
    table: &GpuTweetTable,
    op: &FilterOp,
    k: usize,
    strategy: Strategy,
) -> Result<QueryResult, QdbError> {
    let log_start = dev.log_len();
    match strategy {
        Strategy::StageSort | Strategy::StageBitonic => {
            let out = dev.try_alloc::<Kv<u32>>(table.len())?;
            let cnt = dev.try_alloc::<u32>(1)?;
            dev.launch(&FilterKernel {
                table,
                op,
                key_col: &table.retweet_count,
                out: out.clone(),
                out_count: cnt.clone(),
            })?;
            let m = cnt.get(0) as usize;
            if m == 0 {
                return Ok(collect_result(dev, log_start, Vec::new()));
            }
            let strat = if strategy == Strategy::StageSort {
                TopKStrategy::Sort
            } else {
                TopKStrategy::Bitonic
            };
            let r = run_topk_stage(dev, &out, m, k.min(m), strat)?;
            let ids = r.items.iter().map(|kv| kv.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
        Strategy::CombinedBitonic => {
            // the fused kernel evaluates the predicate itself; the matched
            // set is computed host-side for the functional result
            let matched: Vec<Kv<u32>> = (0..table.len())
                .filter(|&r| op.matches(table, r))
                .map(|r| Kv::new(table.retweet_count.get(r), table.id.get(r)))
                .collect();
            if matched.is_empty() {
                return Ok(collect_result(dev, log_start, Vec::new()));
            }
            let k = k.min(matched.len());
            let r = run_fused_topk(dev, table, op.pred_bytes(), 4, matched, k)?;
            let ids = r.items.iter().map(|kv| kv.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
    }
}

/// Q1/Q3 reversed: `… ORDER BY retweet_count ASC LIMIT k` — the
/// smallest-k variant. The staged plans run the candidate buffer through
/// [`TopKRequest::smallest`] (an on-device reversed view, no extra pass);
/// the fused plan feeds [`datagen::Rev`]-wrapped pairs to the same
/// FusedSortReducer kernel.
pub fn filtered_bottomk(
    dev: &Device,
    table: &GpuTweetTable,
    op: &FilterOp,
    k: usize,
    strategy: Strategy,
) -> Result<QueryResult, QdbError> {
    let log_start = dev.log_len();
    match strategy {
        Strategy::StageSort | Strategy::StageBitonic => {
            let out = dev.try_alloc::<Kv<u32>>(table.len())?;
            let cnt = dev.try_alloc::<u32>(1)?;
            dev.launch(&FilterKernel {
                table,
                op,
                key_col: &table.retweet_count,
                out: out.clone(),
                out_count: cnt.clone(),
            })?;
            let m = cnt.get(0) as usize;
            if m == 0 {
                return Ok(collect_result(dev, log_start, Vec::new()));
            }
            let view = dev.try_upload(&out.read_range(0..m))?;
            let alg = if strategy == Strategy::StageSort {
                TopKAlgorithm::Sort
            } else {
                TopKAlgorithm::Bitonic(BitonicConfig::default())
            };
            let r = TopKRequest::smallest(k.min(m))
                .with_alg(alg)
                .run(dev, &view)?;
            let ids = r.items.iter().map(|kv| kv.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
        Strategy::CombinedBitonic => {
            let matched: Vec<Rev<Kv<u32>>> = (0..table.len())
                .filter(|&r| op.matches(table, r))
                .map(|r| Rev(Kv::new(table.retweet_count.get(r), table.id.get(r))))
                .collect();
            if matched.is_empty() {
                return Ok(collect_result(dev, log_start, Vec::new()));
            }
            let k = k.min(matched.len());
            let r = run_fused_topk(dev, table, op.pred_bytes(), 4, matched, k)?;
            let ids = r.items.iter().map(|kv| kv.0.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
    }
}

/// Q2: `SELECT id FROM tweets ORDER BY retweet_count + 0.5·likes_count
/// DESC LIMIT k`.
pub fn ranked_topk(
    dev: &Device,
    table: &GpuTweetTable,
    k: usize,
    strategy: Strategy,
) -> Result<QueryResult, QdbError> {
    let log_start = dev.log_len();
    match strategy {
        Strategy::StageSort | Strategy::StageBitonic => {
            let out = dev.try_alloc::<Kv<f32>>(table.len())?;
            dev.launch(&ProjectRankKernel {
                table,
                out: out.clone(),
            })?;
            let strat = if strategy == Strategy::StageSort {
                TopKStrategy::Sort
            } else {
                TopKStrategy::Bitonic
            };
            let r = run_topk_stage(dev, &out, table.len(), k.min(table.len()), strat)?;
            let ids = r.items.iter().map(|kv| kv.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
        Strategy::CombinedBitonic => {
            let matched: Vec<Kv<f32>> = (0..table.len())
                .map(|r| {
                    let rank =
                        table.retweet_count.get(r) as f32 + 0.5 * table.likes_count.get(r) as f32;
                    Kv::new(rank, table.id.get(r))
                })
                .collect();
            let k = k.min(matched.len());
            // the ranking function reads both count columns (8 B/row); no
            // separate predicate column
            let r = run_fused_topk(dev, table, 4, 4, matched, k)?;
            let ids = r.items.iter().map(|kv| kv.value).collect();
            Ok(collect_result(dev, log_start, ids))
        }
    }
}

/// Q4: `SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*)
/// DESC LIMIT k`. Returns uids.
pub fn group_topk(
    dev: &Device,
    table: &GpuTweetTable,
    k: usize,
    strategy: TopKStrategy,
) -> Result<QueryResult, QdbError> {
    let log_start = dev.log_len();
    let out = dev.try_alloc::<Kv<u32>>(table.len())?;
    let cnt = dev.try_alloc::<u32>(1)?;
    dev.launch(&GroupCountKernel {
        table,
        out: out.clone(),
        out_count: cnt.clone(),
    })?;
    let g = cnt.get(0) as usize;
    let r = run_topk_stage(dev, &out, g, k.min(g), strategy)?;
    let ids = r.items.iter().map(|kv| kv.value).collect();
    Ok(collect_result(dev, log_start, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::twitter::TweetTable;

    fn setup(n: usize) -> (Device, TweetTable, GpuTweetTable) {
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 11);
        let gpu = GpuTweetTable::upload(&dev, &host);
        (dev, host, gpu)
    }

    /// Reference Q1 result keys (retweet counts of the winners).
    fn reference_q1_keys(host: &TweetTable, cutoff: u32, k: usize) -> Vec<u32> {
        let mut keys: Vec<u32> = (0..host.len())
            .filter(|&r| host.tweet_time[r] < cutoff)
            .map(|r| host.retweet_count[r])
            .collect();
        keys.sort_unstable_by(|a, b| b.cmp(a));
        keys.truncate(k);
        keys
    }

    #[test]
    fn q1_strategies_agree_and_match_reference() {
        let (dev, host, gpu) = setup(60_000);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let op = FilterOp::TimeLess(cutoff);
        let expect = reference_q1_keys(&host, cutoff, 50);
        for strat in Strategy::all() {
            let r = filtered_topk(&dev, &gpu, &op, 50, strat).unwrap();
            let keys: Vec<u32> = r
                .ids
                .iter()
                .map(|&id| host.retweet_count[id as usize])
                .collect();
            assert_eq!(keys, expect, "{}", strat.name());
            // every returned id must satisfy the predicate
            for &id in &r.ids {
                assert!(host.tweet_time[id as usize] < cutoff, "{}", strat.name());
            }
            assert!(r.kernel_time.seconds() > 0.0);
            assert!(!r.breakdown.is_empty());
        }
    }

    #[test]
    fn q1_zero_selectivity() {
        let (dev, _host, gpu) = setup(10_000);
        for strat in Strategy::all() {
            let r = filtered_topk(&dev, &gpu, &FilterOp::TimeLess(0), 50, strat).unwrap();
            assert!(r.ids.is_empty(), "{}", strat.name());
        }
    }

    #[test]
    fn q1_ascending_returns_the_smallest_keys() {
        let (dev, host, gpu) = setup(30_000);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let op = FilterOp::TimeLess(cutoff);
        let mut expect: Vec<u32> = (0..host.len())
            .filter(|&r| host.tweet_time[r] < cutoff)
            .map(|r| host.retweet_count[r])
            .collect();
        expect.sort_unstable();
        expect.truncate(25);
        for strat in Strategy::all() {
            let r = filtered_bottomk(&dev, &gpu, &op, 25, strat).unwrap();
            let keys: Vec<u32> = r
                .ids
                .iter()
                .map(|&id| host.retweet_count[id as usize])
                .collect();
            assert_eq!(keys, expect, "{}", strat.name());
            for &id in &r.ids {
                assert!(host.tweet_time[id as usize] < cutoff, "{}", strat.name());
            }
        }
    }

    #[test]
    fn q2_ranking_strategies_agree() {
        let (dev, host, gpu) = setup(40_000);
        let rank = |r: usize| host.retweet_count[r] as f32 + 0.5 * host.likes_count[r] as f32;
        let mut expect: Vec<f32> = (0..host.len()).map(rank).collect();
        expect.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        expect.truncate(20);
        for strat in Strategy::all() {
            let r = ranked_topk(&dev, &gpu, 20, strat).unwrap();
            let keys: Vec<f32> = r.ids.iter().map(|&id| rank(id as usize)).collect();
            assert_eq!(keys, expect, "{}", strat.name());
        }
    }

    #[test]
    fn q3_lang_filter() {
        let (dev, host, gpu) = setup(40_000);
        let op = FilterOp::LangIn(vec![0, 1]);
        let r = filtered_topk(&dev, &gpu, &op, 30, Strategy::CombinedBitonic).unwrap();
        assert_eq!(r.ids.len(), 30);
        for &id in &r.ids {
            assert!(host.lang[id as usize] <= 1);
        }
    }

    #[test]
    fn q4_group_by_topk() {
        let (dev, host, gpu) = setup(50_000);
        // reference: count per uid, top-5 counts
        let mut counts = std::collections::HashMap::new();
        for &u in &host.uid {
            *counts.entry(u).or_insert(0u32) += 1;
        }
        let mut ref_counts: Vec<u32> = counts.values().copied().collect();
        ref_counts.sort_unstable_by(|a, b| b.cmp(a));
        ref_counts.truncate(5);

        for strat in [TopKStrategy::Sort, TopKStrategy::Bitonic] {
            let r = group_topk(&dev, &gpu, 5, strat).unwrap();
            let got: Vec<u32> = r.ids.iter().map(|uid| counts[uid]).collect();
            assert_eq!(got, ref_counts, "{strat:?}");
        }
    }

    #[test]
    fn combined_is_fastest_at_full_selectivity() {
        // Figure 16a at selectivity 1: combined < filter+bitonic < filter+sort
        let (dev, host, gpu) = setup(1 << 17);
        let cutoff = host.time_cutoff_for_selectivity(1.0);
        let op = FilterOp::TimeLess(cutoff);
        let t_sort = filtered_topk(&dev, &gpu, &op, 50, Strategy::StageSort)
            .unwrap()
            .kernel_time;
        let t_bitonic = filtered_topk(&dev, &gpu, &op, 50, Strategy::StageBitonic)
            .unwrap()
            .kernel_time;
        let t_combined = filtered_topk(&dev, &gpu, &op, 50, Strategy::CombinedBitonic)
            .unwrap()
            .kernel_time;
        assert!(
            t_bitonic.seconds() < t_sort.seconds(),
            "bitonic {t_bitonic} should beat sort {t_sort}"
        );
        assert!(
            t_combined.seconds() < t_bitonic.seconds(),
            "fusion {t_combined} should beat staged {t_bitonic}"
        );
    }

    #[test]
    fn combined_saves_on_q2_too() {
        let (dev, _host, gpu) = setup(1 << 17);
        let t_staged = ranked_topk(&dev, &gpu, 50, Strategy::StageBitonic)
            .unwrap()
            .kernel_time;
        let t_combined = ranked_topk(&dev, &gpu, 50, Strategy::CombinedBitonic)
            .unwrap()
            .kernel_time;
        assert!(t_combined.seconds() < t_staged.seconds());
    }
}
