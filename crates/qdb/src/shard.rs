//! Sharded top-k: scatter-gather query execution over a simulated
//! multi-GPU node (see [`simt::topology`]).
//!
//! The structure is the delegate-centric one: partition the rows across
//! devices ([`PartitionPolicy`]), run the per-shard top-k *locally* on
//! each device, ship only each shard's k delegate candidates over the
//! interconnect, and merge the delegate runs on device 0 with the
//! existing bitonic reduction ([`topk::bitonic::bitonic_topk_from_runs`]).
//! Because every comparison in the bitonic path breaks key ties by row id
//! (see [`datagen::Kv`]), the merged result is **bit-identical** to the
//! single-device result — the global top-k is always a subset of the
//! union of per-shard top-k sets, and both sides rank it by the same
//! total order.
//!
//! Three layers:
//!
//! * [`sharded_topk`] — the raw primitive over pre-partitioned items;
//! * [`execute_sharded`] — SQL queries against a [`ShardedTable`];
//! * [`ShardedServer`] — serving: one [`Server`] per
//!   device (each with its own admission queue and the full PR 4
//!   degradation ladder), with drain-time gather and merge.
//!
//! Failures are never silently truncated: a shard whose local pass or
//! delegate transfer is defeated (after bounded retries) fails the whole
//! query with a typed [`QdbError`].

use std::collections::HashMap;

use datagen::twitter::TweetTable;
use datagen::{Kv, Rev, TopKItem};
use simt::topology::Cluster;
use simt::SimTime;
use sortnet::next_pow2;
use topk::bitonic::{bitonic_topk, bitonic_topk_from_runs, BitonicConfig};
use topk::delegate::{delegate_select_topk, DelegateConfig};

use crate::engine::FilterOp;
use crate::error::QdbError;
use crate::queries::Strategy;
use crate::server::{
    DegradeLevel, LoadReport, QueryTicket, ResilienceStats, Server, ServerConfig, SubmitOptions,
};
use crate::sql::{execute, parse, OrderBy, Query, SqlError};
use crate::table::GpuTweetTable;

/// How rows are distributed across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Contiguous row ranges, one per device (shard i gets rows
    /// `[i·n/d, (i+1)·n/d)`).
    Range,
    /// Multiplicative hash of the row id — decorrelates the shard from
    /// any ordering in the data.
    Hash,
    /// Row `i` goes to shard `i mod d`.
    RoundRobin,
}

impl PartitionPolicy {
    /// Stable name for experiment tables and EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::Range => "range",
            PartitionPolicy::Hash => "hash",
            PartitionPolicy::RoundRobin => "round-robin",
        }
    }

    /// All policies, in display order.
    pub fn all() -> [PartitionPolicy; 3] {
        [
            PartitionPolicy::Range,
            PartitionPolicy::Hash,
            PartitionPolicy::RoundRobin,
        ]
    }

    /// Shard index for row `row` of `n` under `shards` shards.
    pub fn assign(&self, row: usize, n: usize, shards: usize) -> usize {
        match self {
            PartitionPolicy::Range => (row * shards) / n.max(1),
            PartitionPolicy::Hash => {
                (((row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
            }
            PartitionPolicy::RoundRobin => row % shards,
        }
    }
}

/// Splits row indices `0..n` into per-shard lists (row order preserved
/// within each shard, so shard-local id columns stay sorted).
pub fn partition_indices(n: usize, shards: usize, policy: PartitionPolicy) -> Vec<Vec<usize>> {
    let mut parts = vec![Vec::with_capacity(n / shards.max(1) + 1); shards];
    for row in 0..n {
        parts[policy.assign(row, n, shards)].push(row);
    }
    parts
}

/// One shard: the host-side sub-table (global row ids preserved) and its
/// device-resident upload.
pub struct Shard {
    /// Host columns of this shard's rows; `host.id` holds *global* row
    /// ids, strictly increasing.
    pub host: TweetTable,
    /// The shard uploaded to its device.
    pub gpu: GpuTweetTable,
}

/// A tweet table partitioned across a cluster's devices.
pub struct ShardedTable {
    policy: PartitionPolicy,
    shards: Vec<Shard>,
}

/// Bytes one tweet row occupies on the wire (five u32 columns + lang).
const ROW_BYTES: usize = 4 * 5 + 1;

impl ShardedTable {
    /// Partitions `host` across the cluster's devices under `policy`,
    /// uploading each shard to its device and charging the host→device
    /// load transfers on the interconnect.
    pub fn partition(
        cluster: &Cluster,
        host: &TweetTable,
        policy: PartitionPolicy,
    ) -> Result<Self, QdbError> {
        let d = cluster.num_devices();
        let parts = partition_indices(host.len(), d, policy);
        let mut shards = Vec::with_capacity(d);
        for (i, rows) in parts.iter().enumerate() {
            let sub = TweetTable {
                id: rows.iter().map(|&r| host.id[r]).collect(),
                tweet_time: rows.iter().map(|&r| host.tweet_time[r]).collect(),
                retweet_count: rows.iter().map(|&r| host.retweet_count[r]).collect(),
                likes_count: rows.iter().map(|&r| host.likes_count[r]).collect(),
                lang: rows.iter().map(|&r| host.lang[r]).collect(),
                uid: rows.iter().map(|&r| host.uid[r]).collect(),
            };
            let dev = cluster.device(i);
            let gpu = GpuTweetTable::upload(dev, &sub);
            let label = format!("load:shard{i}");
            retry_transfer(
                cluster,
                usize::MAX,
                i,
                rows.len() * ROW_BYTES,
                &label,
                3,
                &mut 0,
            )?;
            shards.push(Shard { host: sub, gpu });
        }
        Ok(ShardedTable { policy, shards })
    }

    /// The partition policy the table was built with.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Number of shards (== cluster devices).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard by device index.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Rows per shard, in device order.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.host.len()).collect()
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.host.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Issues one delegate (or load) transfer with bounded retries against
/// fault-plan drops. `src == usize::MAX` means host → device `dst_or_src`.
fn retry_transfer(
    cluster: &Cluster,
    src: usize,
    dst: usize,
    bytes: usize,
    label: &str,
    max_retries: usize,
    retries: &mut usize,
) -> Result<simt::topology::Transfer, QdbError> {
    retry_transfer_at(
        cluster,
        src,
        dst,
        bytes,
        label,
        SimTime::ZERO,
        max_retries,
        retries,
    )
}

#[allow(clippy::too_many_arguments)]
fn retry_transfer_at(
    cluster: &Cluster,
    src: usize,
    dst: usize,
    bytes: usize,
    label: &str,
    ready: SimTime,
    max_retries: usize,
    retries: &mut usize,
) -> Result<simt::topology::Transfer, QdbError> {
    let mut attempt = 0usize;
    loop {
        let r = if src == usize::MAX {
            cluster.host_to_device(dst, bytes, label, ready)
        } else {
            cluster.device_to_device(src, dst, bytes, label, ready)
        };
        match r {
            Ok(t) => return Ok(t),
            Err(_) if attempt < max_retries => {
                attempt += 1;
                *retries += 1;
            }
            Err(e) => {
                return Err(QdbError::DeviceFault {
                    what: e.to_string(),
                    transient: true,
                    attempts: attempt + 1,
                })
            }
        }
    }
}

/// Gather-and-merge outcome shared by every sharded path.
struct Merged<T> {
    items: Vec<T>,
    transfer_done: SimTime,
    merge_time: SimTime,
    candidate_bytes: usize,
    transfer_retries: usize,
}

/// Ships each shard's delegates (descending-sorted, ≤ k items) to device
/// 0 and merges them with the bitonic run reducer. `local[i]` is shard
/// `i`'s local completion time — the earliest its delegates can hit the
/// wire.
fn ship_and_merge<T: TopKItem>(
    cluster: &Cluster,
    delegates: Vec<Vec<T>>,
    local: &[SimTime],
    k: usize,
    cfg: BitonicConfig,
    max_retries: usize,
) -> Result<Merged<T>, QdbError> {
    let dev0 = cluster.device(0);
    let total: usize = delegates.iter().map(|d| d.len()).sum();
    let mut transfer_done = local.first().copied().unwrap_or(SimTime::ZERO);
    if total == 0 {
        for &l in local {
            if l.0 > transfer_done.0 {
                transfer_done = l;
            }
        }
        return Ok(Merged {
            items: Vec::new(),
            transfer_done,
            merge_time: SimTime::ZERO,
            candidate_bytes: 0,
            transfer_retries: 0,
        });
    }
    let k_req = k.min(total);
    let k_eff = next_pow2(k_req);

    // scatter-gather: every non-resident shard ships its delegates to
    // device 0; transfers sharing the host→dev0 channel serialize there
    let mut candidate_bytes = 0usize;
    let mut transfer_retries = 0usize;
    for (i, d) in delegates.iter().enumerate() {
        if i == 0 || d.is_empty() {
            continue;
        }
        let bytes = d.len() * T::SIZE_BYTES;
        candidate_bytes += bytes;
        let label = format!("delegates:shard{i}");
        let t = retry_transfer_at(
            cluster,
            i,
            0,
            bytes,
            &label,
            local[i],
            max_retries,
            &mut transfer_retries,
        )?;
        if t.end.0 > transfer_done.0 {
            transfer_done = t.end;
        }
    }

    // pad each delegate list into a whole k_eff run (a descending run
    // with MIN-sentinel tail is a valid bitonic run) and reduce on dev 0
    let mut runs: Vec<T> = Vec::with_capacity(delegates.len() * k_eff);
    for mut d in delegates {
        debug_assert!(d.len() <= k_eff, "delegate list exceeds its run");
        d.resize(k_eff, T::min_sentinel());
        runs.extend(d);
    }
    let valid = runs.len();
    let mut attempt = 0usize;
    let (items, merge_time) = loop {
        let buf = dev0.try_upload(&runs)?;
        let log0 = dev0.log_len();
        match bitonic_topk_from_runs(dev0, &buf, valid, k_req, cfg) {
            Ok(r) => break (r.items, dev0.window_since(log0).time),
            Err(e) => {
                let e: QdbError = e.into();
                if e.is_transient() && attempt < max_retries {
                    attempt += 1;
                    transfer_retries += 1;
                } else {
                    return Err(e);
                }
            }
        }
    };
    Ok(Merged {
        items,
        transfer_done,
        merge_time,
        candidate_bytes,
        transfer_retries,
    })
}

/// Outcome of one raw sharded top-k.
#[derive(Debug, Clone)]
pub struct ShardedTopK<T> {
    /// The merged top-k, descending — bit-identical to the single-device
    /// result over the concatenated input.
    pub items: Vec<T>,
    /// Per-shard local kernel time (shards run concurrently).
    pub local: Vec<SimTime>,
    /// When the last delegate run landed on device 0.
    pub transfer_done: SimTime,
    /// Kernel time of the delegate merge on device 0.
    pub merge_time: SimTime,
    /// End-to-end modeled time: `max(local, transfers) + merge`.
    pub sim_time: SimTime,
    /// Delegate bytes shipped over the interconnect.
    pub candidate_bytes: usize,
    /// Transfer/merge retries consumed against fault plans.
    pub retries: usize,
}

/// Raw sharded top-k over pre-partitioned items: each `parts[i]` runs the
/// bitonic top-k locally on device `i`, delegates ship to device 0, and
/// the runs merge there. Returns the largest `k` items, descending.
pub fn sharded_topk<T: TopKItem>(
    cluster: &Cluster,
    parts: &[Vec<T>],
    k: usize,
    cfg: BitonicConfig,
    max_retries: usize,
) -> Result<ShardedTopK<T>, QdbError> {
    assert_eq!(
        parts.len(),
        cluster.num_devices(),
        "one part per cluster device"
    );
    let mut delegates: Vec<Vec<T>> = Vec::with_capacity(parts.len());
    let mut local = Vec::with_capacity(parts.len());
    let mut retries = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            delegates.push(Vec::new());
            local.push(SimTime::ZERO);
            continue;
        }
        let dev = cluster.device(i);
        let mut attempt = 0usize;
        let (items, time) = loop {
            let log0 = dev.log_len();
            let buf = dev.try_upload(part)?;
            match bitonic_topk(dev, &buf, k.min(part.len()), cfg) {
                Ok(r) => break (r.items, dev.window_since(log0).time),
                Err(e) => {
                    let e: QdbError = e.into();
                    if e.is_transient() && attempt < max_retries {
                        attempt += 1;
                        retries += 1;
                    } else {
                        return Err(e);
                    }
                }
            }
        };
        delegates.push(items);
        local.push(time);
    }
    let merged = ship_and_merge(cluster, delegates, &local, k, cfg, max_retries)?;
    Ok(ShardedTopK {
        items: merged.items,
        sim_time: merged.transfer_done + merged.merge_time,
        local,
        transfer_done: merged.transfer_done,
        merge_time: merged.merge_time,
        candidate_bytes: merged.candidate_bytes,
        retries: retries + merged.transfer_retries,
    })
}

/// Delegates of delegates: like [`sharded_topk`], but each shard runs
/// *delegate select* locally — per-subrange delegates, threshold over
/// the delegate set, refinement of the contributing subranges — and
/// ships its k local winners (themselves a delegate list) to device 0,
/// where the same bitonic run merge produces the global result. The
/// two-level decomposition composes: the shard-level delegate list is
/// exact (tie-safe threshold, full item order), so the merged result is
/// bit-identical to the single-device answer, while each shard's global
/// traffic drops to its refinement volume once its index is warm.
pub fn sharded_delegate_topk<T: TopKItem>(
    cluster: &Cluster,
    parts: &[Vec<T>],
    k: usize,
    cfg: DelegateConfig,
    max_retries: usize,
) -> Result<ShardedTopK<T>, QdbError> {
    assert_eq!(
        parts.len(),
        cluster.num_devices(),
        "one part per cluster device"
    );
    let mut delegates: Vec<Vec<T>> = Vec::with_capacity(parts.len());
    let mut local = Vec::with_capacity(parts.len());
    let mut retries = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            delegates.push(Vec::new());
            local.push(SimTime::ZERO);
            continue;
        }
        let dev = cluster.device(i);
        let mut attempt = 0usize;
        let (items, time) = loop {
            let log0 = dev.log_len();
            let buf = dev.try_upload(part)?;
            match delegate_select_topk(dev, &buf, k.min(part.len()), cfg) {
                Ok(r) => break (r.items, dev.window_since(log0).time),
                Err(e) => {
                    let e: QdbError = e.into();
                    if e.is_transient() && attempt < max_retries {
                        attempt += 1;
                        retries += 1;
                    } else {
                        return Err(e);
                    }
                }
            }
        };
        delegates.push(items);
        local.push(time);
    }
    let merged = ship_and_merge(cluster, delegates, &local, k, cfg.bitonic, max_retries)?;
    Ok(ShardedTopK {
        items: merged.items,
        sim_time: merged.transfer_done + merged.merge_time,
        local,
        transfer_done: merged.transfer_done,
        merge_time: merged.merge_time,
        candidate_bytes: merged.candidate_bytes,
        retries: retries + merged.transfer_retries,
    })
}

/// Outcome of one sharded SQL query.
#[derive(Debug, Clone)]
pub struct ShardedQueryResult {
    /// Result tweet ids, ranked — bit-identical to the single-device
    /// result for the bitonic strategies.
    pub ids: Vec<u32>,
    /// End-to-end modeled time: `max(local, transfers) + merge`.
    pub sim_time: SimTime,
    /// Per-shard local kernel time.
    pub local: Vec<SimTime>,
    /// When the last delegate run landed on device 0.
    pub transfer_done: SimTime,
    /// Kernel time of the delegate merge on device 0.
    pub merge_time: SimTime,
    /// Delegate bytes shipped over the interconnect.
    pub candidate_bytes: usize,
    /// Local-pass, transfer and merge retries consumed.
    pub retries: usize,
}

/// Finds the shard-local row of a global id (shard id columns are
/// strictly increasing by construction).
fn shard_row(shard: &TweetTable, id: u32) -> usize {
    shard
        .host_row(id)
        .expect("delegate id must belong to its shard")
}

trait HostRow {
    fn host_row(&self, id: u32) -> Option<usize>;
}

impl HostRow for TweetTable {
    fn host_row(&self, id: u32) -> Option<usize> {
        self.id.binary_search(&id).ok()
    }
}

/// The f32 rank the engine's ranking kernels compute for a row.
fn rank_key(t: &TweetTable, row: usize) -> f32 {
    t.retweet_count[row] as f32 + 0.5 * t.likes_count[row] as f32
}

/// Executes a parsed query against a sharded table: the per-shard
/// pipeline runs locally on each device (with `max_retries` bounded
/// retries against transient faults), the k delegate candidates per
/// shard ship to device 0, and the bitonic run reducer merges them.
///
/// `GROUP BY` is rejected ([`SqlError::Unsupported`]): row partitioning
/// splits a uid's tweets across shards, so per-shard group counts cannot
/// be merged by taking delegates (that would silently undercount).
///
/// For the bitonic strategies the result is bit-identical to
/// single-device execution; `StageSort`'s radix pass orders key ties by
/// arrival, so its delegate *sets* may differ at duplicate-key
/// boundaries (keys still match).
pub fn execute_sharded(
    cluster: &Cluster,
    table: &ShardedTable,
    q: &Query,
    strategy: Strategy,
    max_retries: usize,
) -> Result<ShardedQueryResult, QdbError> {
    if q.group_by_uid {
        return Err(SqlError::Unsupported("GROUP BY on a sharded table").into());
    }
    if table.is_empty() {
        return Err(QdbError::EmptyTable);
    }
    if q.limit > table.len() {
        return Err(QdbError::InvalidK {
            k: q.limit,
            n: table.len(),
        });
    }

    let mut per_shard: Vec<Vec<u32>> = Vec::with_capacity(table.num_shards());
    let mut local = Vec::with_capacity(table.num_shards());
    let mut retries = 0usize;
    for i in 0..table.num_shards() {
        let shard = table.shard(i);
        if shard.host.is_empty() {
            per_shard.push(Vec::new());
            local.push(SimTime::ZERO);
            continue;
        }
        let dev = cluster.device(i);
        let shard_q = Query {
            limit: q.limit.min(shard.host.len()),
            ..q.clone()
        };
        let mut attempt = 0usize;
        let r = loop {
            match execute(dev, &shard.gpu, &shard_q, strategy) {
                Ok(r) => break r,
                Err(e) if e.is_transient() && attempt < max_retries => {
                    attempt += 1;
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        };
        local.push(r.kernel_time);
        per_shard.push(r.ids);
    }

    let merged = merge_shard_ids(cluster, table, q, per_shard, &local, max_retries)?;
    Ok(ShardedQueryResult {
        ids: merged.0,
        sim_time: merged.1.transfer_done + merged.1.merge_time,
        local,
        transfer_done: merged.1.transfer_done,
        merge_time: merged.1.merge_time,
        candidate_bytes: merged.1.candidate_bytes,
        retries: retries + merged.1.transfer_retries,
    })
}

/// Merge plumbing shared by [`execute_sharded`] and the server: rebuilds
/// each shard's delegate (key, id) pairs from its host columns, ships
/// and merges them, and returns the ranked global ids.
struct MergedIds {
    transfer_done: SimTime,
    merge_time: SimTime,
    candidate_bytes: usize,
    transfer_retries: usize,
}

fn merge_shard_ids(
    cluster: &Cluster,
    table: &ShardedTable,
    q: &Query,
    per_shard: Vec<Vec<u32>>,
    local: &[SimTime],
    max_retries: usize,
) -> Result<(Vec<u32>, MergedIds), QdbError> {
    let cfg = BitonicConfig::default();
    let k = q.limit;
    match (&q.order_by, q.ascending) {
        (OrderBy::RetweetCount, false) => {
            let delegates: Vec<Vec<Kv<u32>>> = per_shard
                .iter()
                .enumerate()
                .map(|(i, ids)| {
                    let h = &table.shard(i).host;
                    ids.iter()
                        .map(|&id| Kv::new(h.retweet_count[shard_row(h, id)], id))
                        .collect()
                })
                .collect();
            let m = ship_and_merge(cluster, delegates, local, k, cfg, max_retries)?;
            Ok((
                m.items.iter().map(|kv| kv.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::RetweetCount, true) => {
            let delegates: Vec<Vec<Rev<Kv<u32>>>> = per_shard
                .iter()
                .enumerate()
                .map(|(i, ids)| {
                    let h = &table.shard(i).host;
                    ids.iter()
                        .map(|&id| Rev(Kv::new(h.retweet_count[shard_row(h, id)], id)))
                        .collect()
                })
                .collect();
            let m = ship_and_merge(cluster, delegates, local, k, cfg, max_retries)?;
            Ok((
                m.items.iter().map(|kv| kv.0.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::Rank { .. }, _) => {
            let delegates: Vec<Vec<Kv<f32>>> = per_shard
                .iter()
                .enumerate()
                .map(|(i, ids)| {
                    let h = &table.shard(i).host;
                    ids.iter()
                        .map(|&id| Kv::new(rank_key(h, shard_row(h, id)), id))
                        .collect()
                })
                .collect();
            let m = ship_and_merge(cluster, delegates, local, k, cfg, max_retries)?;
            Ok((
                m.items.iter().map(|kv| kv.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::Count, _) => Err(SqlError::Unsupported("GROUP BY on a sharded table").into()),
    }
}

/// Renders a validated [`Query`] back to canonical SQL with a replaced
/// LIMIT — how the sharded server forwards a query to a shard whose row
/// count is below the global k.
fn render_sql(q: &Query, limit: usize) -> String {
    let mut s = String::from("SELECT id FROM tweets");
    match &q.filter {
        Some(FilterOp::TimeLess(c)) => s.push_str(&format!(" WHERE tweet_time < {c}")),
        Some(FilterOp::LangIn(codes)) => {
            let names: Vec<String> = codes
                .iter()
                .map(|&c| {
                    let name = match c {
                        0 => "en",
                        1 => "es",
                        2 => "pt",
                        3 => "ja",
                        4 => "ar",
                        _ => "other",
                    };
                    format!("lang = '{name}'")
                })
                .collect();
            s.push_str(&format!(" WHERE {}", names.join(" OR ")));
        }
        None => {}
    }
    match &q.order_by {
        OrderBy::RetweetCount => s.push_str(" ORDER BY retweet_count"),
        OrderBy::Rank { likes_weight } => {
            s.push_str(&format!(
                " ORDER BY retweet_count + {likes_weight} * likes_count"
            ));
        }
        OrderBy::Count => unreachable!("group queries are rejected before rendering"),
    }
    s.push_str(if q.ascending { " ASC" } else { " DESC" });
    s.push_str(&format!(" LIMIT {limit}"));
    s
}

/// Handle for a query submitted to the sharded server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedTicket(pub usize);

/// One sharded query's outcome from a drain.
#[derive(Debug, Clone)]
pub struct ShardedServed {
    /// The submission ticket.
    pub ticket: ShardedTicket,
    /// The original SQL text.
    pub sql: String,
    /// Merged result ids (empty when `error` is set).
    pub ids: Vec<u32>,
    /// End-to-end latency: slowest shard + gather + merge.
    pub latency: SimTime,
    /// Why the query did not complete (`None` = completed). A failed
    /// shard fails the whole query — results are never truncated to the
    /// surviving shards.
    pub error: Option<QdbError>,
    /// The deepest degradation rung any shard used for this query.
    pub degrade: DegradeLevel,
    /// Retries across all shards plus transfer/merge retries.
    pub retries: usize,
    /// The transfer/merge share of `retries` (the shard share is already
    /// in the per-device ledgers).
    pub transfer_retries: usize,
}

impl ShardedServed {
    /// True when the query produced a merged result.
    pub fn completed(&self) -> bool {
        self.error.is_none()
    }
}

/// Everything one [`ShardedServer::drain`] produced.
#[derive(Debug, Clone)]
pub struct ShardedLoadReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<ShardedServed>,
    /// Aggregated resilience ledger: per-shard server ledgers summed,
    /// with completion/failure counted at the sharded-query level.
    pub resilience: ResilienceStats,
    /// Per-device drain reports (admission queues, ladders, traces).
    pub shard_reports: Vec<LoadReport>,
    /// Completion time of the slowest query (0 when none completed).
    pub makespan: SimTime,
}

/// A serving front-end over a sharded table: one [`Server`] per device,
/// each with its own admission queue, retry budget and degradation
/// ladder; queries scatter to every shard at submission and gather-merge
/// at drain.
pub struct ShardedServer<'a> {
    cluster: &'a Cluster,
    table: &'a ShardedTable,
    servers: Vec<Server<'a>>,
    max_retries: usize,
    pending: Vec<(ShardedTicket, String, Query, Vec<Option<QueryTicket>>)>,
    next_ticket: usize,
    shed: usize,
}

impl<'a> ShardedServer<'a> {
    /// Creates one per-device server over each shard.
    pub fn new(cluster: &'a Cluster, table: &'a ShardedTable, cfg: ServerConfig) -> Self {
        assert_eq!(cluster.num_devices(), table.num_shards());
        let max_retries = cfg.max_retries;
        let servers = (0..table.num_shards())
            .map(|i| Server::new(cluster.device(i), &table.shard(i).gpu, cfg.clone()))
            .collect();
        ShardedServer {
            cluster,
            table,
            servers,
            max_retries,
            pending: Vec::new(),
            next_ticket: 0,
            shed: 0,
        }
    }

    /// Parses, validates and scatters one SQL query to every shard's
    /// admission queue. A shard that sheds ([`QdbError::Overloaded`])
    /// sheds the whole query.
    pub fn submit(&mut self, sql: &str) -> Result<ShardedTicket, QdbError> {
        let q = parse(sql)?;
        if q.group_by_uid {
            return Err(SqlError::Unsupported("GROUP BY on a sharded table").into());
        }
        if let OrderBy::Rank { likes_weight } = q.order_by {
            if (likes_weight - 0.5).abs() > 1e-9 {
                return Err(SqlError::Unsupported("ranking weight other than 0.5").into());
            }
            if q.filter.is_some() {
                return Err(SqlError::Unsupported("WHERE combined with a ranking function").into());
            }
        }
        let n = self.table.len();
        if n == 0 {
            return Err(QdbError::EmptyTable);
        }
        if q.limit > n {
            return Err(QdbError::InvalidK { k: q.limit, n });
        }
        let mut tickets = Vec::with_capacity(self.servers.len());
        for (i, server) in self.servers.iter_mut().enumerate() {
            let shard_n = self.table.shard(i).host.len();
            if shard_n == 0 {
                tickets.push(None);
                continue;
            }
            let shard_sql = render_sql(&q, q.limit.min(shard_n));
            match server.submit(&shard_sql, SubmitOptions::default()) {
                Ok(t) => tickets.push(Some(t)),
                Err(e @ QdbError::Overloaded { .. }) => {
                    // already-admitted siblings will run and be discarded —
                    // the price of decentralized admission
                    self.shed += 1;
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
        let ticket = ShardedTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push((ticket, sql.to_string(), q, tickets));
        Ok(ticket)
    }

    /// Number of queries admitted and not yet drained.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains every per-device server, gathers each query's delegates
    /// over the interconnect, merges on device 0 and reports.
    pub fn drain(&mut self) -> ShardedLoadReport {
        let shard_reports: Vec<LoadReport> = self.servers.iter_mut().map(|s| s.drain()).collect();
        let by_ticket: Vec<HashMap<usize, usize>> = shard_reports
            .iter()
            .map(|r| {
                r.queries
                    .iter()
                    .enumerate()
                    .map(|(idx, sq)| (sq.ticket.0, idx))
                    .collect()
            })
            .collect();

        let pending = std::mem::take(&mut self.pending);
        let mut queries = Vec::with_capacity(pending.len());
        for (ticket, sql, q, tickets) in pending {
            let mut per_shard: Vec<Vec<u32>> = Vec::with_capacity(tickets.len());
            let mut local = Vec::with_capacity(tickets.len());
            let mut error: Option<QdbError> = None;
            let mut degrade = DegradeLevel::None;
            let mut retries = 0usize;
            let mut transfer_retries = 0usize;
            for (i, t) in tickets.iter().enumerate() {
                let Some(t) = t else {
                    per_shard.push(Vec::new());
                    local.push(SimTime::ZERO);
                    continue;
                };
                let served = &shard_reports[i].queries[by_ticket[i][&t.0]];
                retries += served.retries;
                degrade = degrade.max(served.degrade);
                if let Some(e) = &served.error {
                    // a failed shard fails the whole query: no silent
                    // truncation to the surviving shards
                    error.get_or_insert_with(|| e.clone());
                }
                per_shard.push(served.result.ids.clone());
                local.push(served.timing.total);
            }
            let (ids, latency, err) = if let Some(e) = error {
                (Vec::new(), SimTime::ZERO, Some(e))
            } else {
                match merge_shard_ids(
                    self.cluster,
                    self.table,
                    &q,
                    per_shard,
                    &local,
                    self.max_retries,
                ) {
                    Ok((ids, m)) => {
                        transfer_retries += m.transfer_retries;
                        (ids, m.transfer_done + m.merge_time, None)
                    }
                    Err(e) => (Vec::new(), SimTime::ZERO, Some(e)),
                }
            };
            queries.push(ShardedServed {
                ticket,
                sql,
                ids,
                latency,
                error: err,
                degrade,
                retries: retries + transfer_retries,
                transfer_retries,
            });
        }

        let mut resilience = ResilienceStats::default();
        for r in &shard_reports {
            resilience.retries += r.resilience.retries;
            resilience.faults_injected += r.resilience.faults_injected;
        }
        resilience.shed = std::mem::take(&mut self.shed);
        for sq in &queries {
            if sq.completed() {
                resilience.completed += 1;
            } else if matches!(sq.error, Some(QdbError::Timeout { .. })) {
                resilience.timed_out += 1;
            } else {
                resilience.failed += 1;
            }
            // shard-level retries are already summed via the per-device
            // ledgers; only the transfer/merge share is new information
            resilience.retries += sq.transfer_retries;
            match sq.degrade {
                DegradeLevel::SerialBitonic => resilience.degraded_serial += 1,
                DegradeLevel::CpuHeap => resilience.degraded_cpu += 1,
                DegradeLevel::None => {}
            }
        }
        let makespan = queries
            .iter()
            .filter(|q| q.completed())
            .map(|q| q.latency)
            .fold(SimTime::ZERO, |a, b| if b.0 > a.0 { b } else { a });
        ShardedLoadReport {
            queries,
            resilience,
            shard_reports,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dist::{Distribution, Uniform};
    use simt::topology::ClusterSpec;
    use simt::{Device, FaultPlan};

    fn keyed(dist: &Uniform, n: usize, seed: u64) -> Vec<Kv<f32>> {
        dist.generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, k)| Kv::new(k, i as u32))
            .collect()
    }

    fn partition_items<T: Clone>(
        items: &[T],
        shards: usize,
        policy: PartitionPolicy,
    ) -> Vec<Vec<T>> {
        partition_indices(items.len(), shards, policy)
            .into_iter()
            .map(|rows| rows.into_iter().map(|r| items[r].clone()).collect())
            .collect()
    }

    #[test]
    fn partitions_cover_every_row_exactly_once() {
        for policy in PartitionPolicy::all() {
            for shards in [1usize, 2, 4, 8] {
                let parts = partition_indices(1000, shards, policy);
                assert_eq!(parts.len(), shards);
                let mut seen = vec![false; 1000];
                for p in &parts {
                    for &r in p {
                        assert!(!seen[r], "{}: row {r} twice", policy.name());
                        seen[r] = true;
                    }
                    // row order preserved → shard id columns stay sorted
                    assert!(p.windows(2).all(|w| w[0] < w[1]));
                }
                assert!(seen.iter().all(|&s| s), "{}", policy.name());
                // no pathological imbalance (hash/rr are near-even; range
                // is exactly even)
                let max = parts.iter().map(Vec::len).max().unwrap();
                let min = parts.iter().map(Vec::len).min().unwrap();
                assert!(max - min <= 200, "{}: {max} vs {min}", policy.name());
            }
        }
    }

    #[test]
    fn sharded_topk_is_bit_identical_to_single_device() {
        let n = 1 << 12;
        let k = 64;
        let items = keyed(&Uniform, n, 77);
        // single-device oracle
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        for policy in PartitionPolicy::all() {
            for devices in [1usize, 2, 4, 8] {
                let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
                let parts = partition_items(&items, devices, policy);
                let r = sharded_topk(&cluster, &parts, k, BitonicConfig::default(), 2).unwrap();
                assert_eq!(r.items, oracle, "{} x {devices} devices", policy.name());
                assert!(r.sim_time.0 > 0.0);
                if devices > 1 {
                    assert!(r.candidate_bytes > 0);
                    assert!(r.transfer_done.0 > 0.0);
                }
            }
        }
    }

    #[test]
    fn sharded_delegate_topk_is_bit_identical_to_single_device() {
        let n = 1 << 14;
        let k = 64;
        let items = keyed(&Uniform, n, 78);
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        // small subranges so the per-shard threshold actually prunes at
        // this n
        let cfg = DelegateConfig {
            subrange: 256,
            ..DelegateConfig::default()
        };
        for devices in [1usize, 2, 4, 8] {
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let parts = partition_items(&items, devices, PartitionPolicy::RoundRobin);
            let r = sharded_delegate_topk(&cluster, &parts, k, cfg, 2).unwrap();
            assert_eq!(r.items, oracle, "{devices} devices");
            assert!(r.sim_time.0 > 0.0);
            if devices > 1 {
                assert!(r.candidate_bytes > 0);
            }
        }
    }

    #[test]
    fn sharded_topk_exact_on_duplicate_heavy_keys() {
        // 4 distinct keys over 2^10 rows: ties everywhere; the id
        // tie-break is what keeps shardings bit-identical
        let n = 1 << 10;
        let k = 32;
        let items: Vec<Kv<f32>> = (0..n).map(|i| Kv::new((i % 4) as f32, i as u32)).collect();
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        // the oracle itself must be the smallest ids of the max key
        assert!(oracle.iter().all(|kv| kv.key == 3.0));
        let ids: Vec<u32> = oracle.iter().map(|kv| kv.value).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascend on ties");
        for policy in PartitionPolicy::all() {
            let cluster = Cluster::new(ClusterSpec::pcie_node(4));
            let parts = partition_items(&items, 4, policy);
            let r = sharded_topk(&cluster, &parts, k, BitonicConfig::default(), 2).unwrap();
            assert_eq!(r.items, oracle, "{}", policy.name());
        }
    }

    #[test]
    fn sharded_timing_is_deterministic_and_scales_down() {
        let n = 1 << 14;
        let items = keyed(&Uniform, n, 5);
        let run = |devices: usize| {
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let parts = partition_items(&items, devices, PartitionPolicy::Range);
            sharded_topk(&cluster, &parts, 32, BitonicConfig::default(), 2).unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.items, b.items);
        // local work shrinks with more devices
        let one = run(1);
        let eight = run(8);
        let max_local_1 = one.local.iter().map(|t| t.0).fold(0.0, f64::max);
        let max_local_8 = eight.local.iter().map(|t| t.0).fold(0.0, f64::max);
        assert!(max_local_8 < max_local_1);
    }

    #[test]
    fn execute_sharded_matches_unsharded_bit_for_bit() {
        let host = TweetTable::generate(20_000, 42);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 25"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 16"
                .to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' \
             ORDER BY retweet_count DESC LIMIT 40"
                .to_string(),
        ];
        for sql in &sqls {
            let q = parse(sql).unwrap();
            let oracle = execute(&dev, &gpu, &q, Strategy::StageBitonic).unwrap().ids;
            for policy in PartitionPolicy::all() {
                for devices in [1usize, 2, 4] {
                    let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
                    let table = ShardedTable::partition(&cluster, &host, policy).unwrap();
                    let r =
                        execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
                    assert_eq!(r.ids, oracle, "{sql} via {} x {devices}", policy.name());
                    assert!(r.sim_time.0 > 0.0);
                }
            }
        }
    }

    #[test]
    fn group_by_is_rejected_on_the_sharded_path() {
        let host = TweetTable::generate(2_000, 7);
        let cluster = Cluster::new(ClusterSpec::pcie_node(2));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        let q =
            parse("SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5")
                .unwrap();
        assert!(matches!(
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        assert!(matches!(
            server.submit(
                "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5"
            ),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
    }

    #[test]
    fn sharded_server_serves_oracle_exact_results() {
        let host = TweetTable::generate(16_000, 9);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 10"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8"
                .to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 6".to_string(),
        ];
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &gpu, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash).unwrap();
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        let tickets: Vec<ShardedTicket> = sqls.iter().map(|s| server.submit(s).unwrap()).collect();
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());
        for (i, t) in tickets.iter().enumerate() {
            let sq = &report.queries[t.0];
            assert!(sq.completed(), "{}: {:?}", sq.sql, sq.error);
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
            assert!(sq.latency.0 > 0.0);
        }
        assert_eq!(report.resilience.completed, sqls.len());
        assert_eq!(report.resilience.shed, 0);
        assert_eq!(report.resilience.retries, 0);
        assert!(report.makespan.0 > 0.0);
        assert_eq!(report.shard_reports.len(), 4);
    }

    #[test]
    fn dead_shard_fails_the_query_with_a_typed_error() {
        let host = TweetTable::generate(4_000, 13);
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        // device 2's transfers always drop: the local pass (CPU rung can
        // still answer) succeeds but the delegates never arrive
        cluster.device(2).set_fault_plan(FaultPlan {
            launch_failure_rate: 1.0,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 8").unwrap();
        let err = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 1).unwrap_err();
        assert!(
            matches!(err, QdbError::DeviceFault { .. }),
            "expected a typed device fault, got {err:?}"
        );
        cluster.device(2).clear_fault_plan();
        // with the plan cleared the same query completes
        let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 1).unwrap();
        assert_eq!(r.ids.len(), 8);
    }

    #[test]
    fn transfer_stalls_slow_the_query_but_keep_it_exact() {
        let host = TweetTable::generate(6_000, 21);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 8").unwrap();
        let clean = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(2));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap()
        };
        let stalled = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(2));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
            cluster.device(1).set_fault_plan(FaultPlan {
                stall_rate: 1.0,
                stall_delay: SimTime(250e-6),
                max_faults: usize::MAX,
                ..FaultPlan::with_seed(3)
            });
            let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
            cluster.device(1).clear_fault_plan();
            r
        };
        assert_eq!(clean.ids, stalled.ids, "stalls must not change results");
        assert!(
            stalled.sim_time.0 > clean.sim_time.0,
            "stall must show up in modeled time: {} vs {}",
            stalled.sim_time,
            clean.sim_time
        );
    }

    #[test]
    fn render_sql_roundtrips_through_the_parser() {
        let sqls = [
            "SELECT id FROM tweets WHERE tweet_time < 120 ORDER BY retweet_count DESC LIMIT 7",
            "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'ja' ORDER BY retweet_count DESC LIMIT 3",
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 9",
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 4",
        ];
        for sql in sqls {
            let q = parse(sql).unwrap();
            let rendered = render_sql(&q, q.limit);
            let q2 = parse(&rendered).unwrap();
            assert_eq!(q, q2, "{sql} -> {rendered}");
            let clamped = parse(&render_sql(&q, 2)).unwrap();
            assert_eq!(clamped.limit, 2);
        }
    }
}
