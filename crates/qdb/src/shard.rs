//! Sharded top-k: scatter-gather query execution over a simulated
//! multi-GPU node (see [`simt::topology`]).
//!
//! The structure is the delegate-centric one: partition the rows across
//! devices ([`PartitionPolicy`]), run the per-shard top-k *locally* on
//! each device, ship only each shard's k delegate candidates over the
//! interconnect, and merge the delegate runs on device 0 with the
//! existing bitonic reduction ([`topk::bitonic::bitonic_topk_from_runs`]).
//! Because every comparison in the bitonic path breaks key ties by row id
//! (see [`datagen::Kv`]), the merged result is **bit-identical** to the
//! single-device result — the global top-k is always a subset of the
//! union of per-shard top-k sets, and both sides rank it by the same
//! total order.
//!
//! Three layers:
//!
//! * [`sharded_topk`] — the raw primitive over pre-partitioned items;
//! * [`execute_sharded`] — SQL queries against a [`ShardedTable`];
//! * [`ShardedServer`] — serving: one [`Server`] per
//!   device (each with its own admission queue and the full PR 4
//!   degradation ladder), with drain-time gather and merge.
//!
//! Failures are never silently truncated: a shard whose local pass or
//! delegate transfer is defeated (after bounded retries) fails the whole
//! query with a typed [`QdbError`].
//!
//! Permanent loss is survived by replication ([`ReplicationFactor`]):
//! each partition is placed on `r` devices (ring placement, replica
//! loads charged on the interconnect), every read path serves from the
//! first *healthy* replica, and the serving layer adds a per-device
//! circuit breaker ([`BreakerState`]), query-time failover and online
//! shard rebuild from the pristine host copy — see DESIGN.md §4.5.
//! Because the merged result is a pure function of the delegate sets,
//! which replica serves never changes a single bit of the answer.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashMap;

use datagen::twitter::TweetTable;
use datagen::{Kv, Rev, TopKItem};
use simt::topology::Cluster;
use simt::SimTime;
use sortnet::next_pow2;
use topk::bitonic::{bitonic_topk, bitonic_topk_from_runs, BitonicConfig};
use topk::delegate::{delegate_select_topk, DelegateConfig};

use crate::engine::FilterOp;
use crate::error::QdbError;
use crate::queries::Strategy;
use crate::server::{
    DegradeLevel, LoadReport, QueryTicket, ResilienceStats, Server, ServerConfig, SubmitOptions,
};
use crate::sql::{execute, parse, OrderBy, Query, SqlError};
use crate::table::{GpuTweetTable, ROW_BYTES};

/// How rows are distributed across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Contiguous row ranges, one per device (shard i gets rows
    /// `[i·n/d, (i+1)·n/d)`).
    Range,
    /// Multiplicative hash of the row id — decorrelates the shard from
    /// any ordering in the data.
    Hash,
    /// Row `i` goes to shard `i mod d`.
    RoundRobin,
}

impl PartitionPolicy {
    /// Stable name for experiment tables and EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::Range => "range",
            PartitionPolicy::Hash => "hash",
            PartitionPolicy::RoundRobin => "round-robin",
        }
    }

    /// All policies, in display order.
    pub fn all() -> [PartitionPolicy; 3] {
        [
            PartitionPolicy::Range,
            PartitionPolicy::Hash,
            PartitionPolicy::RoundRobin,
        ]
    }

    /// Shard index for row `row` of `n` under `shards` shards.
    pub fn assign(&self, row: usize, n: usize, shards: usize) -> usize {
        match self {
            PartitionPolicy::Range => (row * shards) / n.max(1),
            PartitionPolicy::Hash => {
                (((row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
            }
            PartitionPolicy::RoundRobin => row % shards,
        }
    }
}

/// Splits row indices `0..n` into per-shard lists (row order preserved
/// within each shard, so shard-local id columns stay sorted).
pub fn partition_indices(n: usize, shards: usize, policy: PartitionPolicy) -> Vec<Vec<usize>> {
    let mut parts = vec![Vec::with_capacity(n / shards.max(1) + 1); shards];
    for row in 0..n {
        parts[policy.assign(row, n, shards)].push(row);
    }
    parts
}

/// How many devices hold a copy of each partition.
///
/// `r = 1` is the unreplicated behavior (and the default); `r >= 2`
/// survives permanent device loss — reads fail over to any healthy
/// replica, and the answer stays bit-identical regardless of which copy
/// serves. Values above the device count are clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationFactor(pub usize);

impl ReplicationFactor {
    /// The unreplicated default.
    pub const ONE: ReplicationFactor = ReplicationFactor(1);

    /// The factor actually used on a `devices`-wide cluster.
    pub fn effective(self, devices: usize) -> usize {
        self.0.clamp(1, devices.max(1))
    }
}

impl Default for ReplicationFactor {
    fn default() -> Self {
        ReplicationFactor::ONE
    }
}

/// One device-resident copy of a shard.
pub struct Replica {
    /// Cluster index of the device holding this copy.
    pub device: usize,
    /// The copy itself.
    pub gpu: GpuTweetTable,
}

/// One shard: the host-side sub-table (global row ids preserved) and its
/// device-resident replicas (the first is the primary).
pub struct Shard {
    /// Host columns of this shard's rows; `host.id` holds *global* row
    /// ids, strictly increasing. Device loss never touches this copy
    /// (appends extend it, but only with rows every replica also
    /// receives), which is what makes online rebuild possible.
    host: RefCell<TweetTable>,
    /// Rows this shard's device columns were allocated for.
    cap_rows: usize,
    replicas: Vec<Replica>,
}

impl Shard {
    /// The shard's host-side rows (shared-borrow: appends extend the
    /// same columns through a `&ShardedTable`).
    pub fn host(&self) -> Ref<'_, TweetTable> {
        self.host.borrow()
    }

    /// Rows this shard's device columns can hold (append headroom is
    /// `capacity() - host().len()`).
    pub fn capacity(&self) -> usize {
        self.cap_rows
    }

    /// The device the shard's primary copy lives on.
    pub fn primary_device(&self) -> usize {
        self.replicas[0].device
    }

    /// The primary device-resident copy.
    pub fn primary_gpu(&self) -> &GpuTweetTable {
        &self.replicas[0].gpu
    }

    /// All device-resident copies, primary first.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }
}

/// The outcome of one sharded append: what landed where, what the
/// replica fan-out cost on the interconnect, and the table epoch after
/// the splice (the sharded twin of [`AppendReceipt`]).
///
/// [`AppendReceipt`]: crate::table::AppendReceipt
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedAppendReceipt {
    /// Rows appended (across all shards).
    pub rows: usize,
    /// Payload bytes charged on the interconnect, summed over every
    /// live replica splice.
    pub bytes: usize,
    /// When the last replica splice landed.
    pub transfer_done: SimTime,
    /// The table epoch after this append.
    pub epoch: u64,
    /// Transfer retries consumed against fault plans.
    pub transfer_retries: usize,
    /// Replica copies skipped because their device is permanently down
    /// (rebuild restores them from the extended host columns).
    pub skipped_replicas: usize,
}

/// A tweet table partitioned across a cluster's devices.
pub struct ShardedTable {
    policy: PartitionPolicy,
    replication: usize,
    epoch: Cell<u64>,
    shards: Vec<Shard>,
}

impl ShardedTable {
    /// Partitions `host` across the cluster's devices under `policy`,
    /// uploading each shard to its device and charging the host→device
    /// load transfers on the interconnect. Unreplicated — identical to
    /// [`ShardedTable::partition_replicated`] with
    /// [`ReplicationFactor::ONE`].
    pub fn partition(
        cluster: &Cluster,
        host: &TweetTable,
        policy: PartitionPolicy,
    ) -> Result<Self, QdbError> {
        Self::partition_replicated(cluster, host, policy, ReplicationFactor::ONE)
    }

    /// Partitions `host` across the cluster's devices under `policy`,
    /// placing each partition on `r` devices.
    ///
    /// Shard `i`'s primary lands on device `i` and is charged the real
    /// host→device load transfer; replica `j` lands on device
    /// `(i + j) mod d` (ring placement: load stays even and no two
    /// copies of a shard share a device) and is charged a device→device
    /// copy from the primary — over the peer link when the cluster has
    /// one, staged through host otherwise, so replication cost follows
    /// the topology.
    pub fn partition_replicated(
        cluster: &Cluster,
        host: &TweetTable,
        policy: PartitionPolicy,
        r: ReplicationFactor,
    ) -> Result<Self, QdbError> {
        Self::partition_replicated_with_capacity(cluster, host, policy, r, host.len())
    }

    /// Like [`ShardedTable::partition_replicated`], but allocates every
    /// shard's device columns with enough headroom that the table as a
    /// whole can grow to `cap_total` rows via
    /// [`ShardedTable::append_batch`]. The headroom is provisioned *per
    /// shard* (a skewed policy may route an entire arrival batch to one
    /// shard), so each shard's capacity is its initial rows plus the
    /// full table-level headroom. Kernels scan only the logical prefix,
    /// so the no-headroom path (`cap_total == host.len()`) is
    /// bit-identical to the frozen-table loader.
    pub fn partition_replicated_with_capacity(
        cluster: &Cluster,
        host: &TweetTable,
        policy: PartitionPolicy,
        r: ReplicationFactor,
        cap_total: usize,
    ) -> Result<Self, QdbError> {
        let d = cluster.num_devices();
        let r = r.effective(d);
        let headroom = cap_total.saturating_sub(host.len());
        let parts = partition_indices(host.len(), d, policy);
        let mut shards = Vec::with_capacity(d);
        for (i, rows) in parts.iter().enumerate() {
            let sub = TweetTable {
                id: rows.iter().map(|&r| host.id[r]).collect(),
                tweet_time: rows.iter().map(|&r| host.tweet_time[r]).collect(),
                retweet_count: rows.iter().map(|&r| host.retweet_count[r]).collect(),
                likes_count: rows.iter().map(|&r| host.likes_count[r]).collect(),
                lang: rows.iter().map(|&r| host.lang[r]).collect(),
                uid: rows.iter().map(|&r| host.uid[r]).collect(),
            };
            let cap_rows = sub.len() + headroom;
            let bytes = rows.len() * ROW_BYTES;
            let dev = cluster.device(i);
            let gpu = GpuTweetTable::upload_with_capacity(dev, &sub, cap_rows);
            let label = format!("load:shard{i}");
            retry_transfer(cluster, usize::MAX, i, bytes, &label, 3, &mut 0)?;
            let mut replicas = Vec::with_capacity(r);
            replicas.push(Replica { device: i, gpu });
            for j in 1..r {
                let target = (i + j) % d;
                let gpu =
                    GpuTweetTable::upload_with_capacity(cluster.device(target), &sub, cap_rows);
                let label = format!("replicate:shard{i}->dev{target}");
                retry_transfer(cluster, i, target, bytes, &label, 3, &mut 0)?;
                replicas.push(Replica {
                    device: target,
                    gpu,
                });
            }
            shards.push(Shard {
                host: RefCell::new(sub),
                cap_rows,
                replicas,
            });
        }
        Ok(ShardedTable {
            policy,
            replication: r,
            epoch: Cell::new(0),
            shards,
        })
    }

    /// Routes an arrival batch through the table's partition policy and
    /// splices each sub-batch into its shard — host columns first (the
    /// pristine copy rebuilds draw from), then every *live* replica's
    /// device columns, each charged as a real host→device transfer on
    /// the interconnect. A replica on a permanently down device is
    /// skipped and counted in the receipt: the data is safe on the host
    /// and on the surviving replicas, and the next drain's rebuild
    /// re-materializes full replication from the (now extended) host
    /// columns.
    ///
    /// Batch ids must continue the table's global row numbering
    /// (`len()..len() + batch.len()`, see
    /// [`datagen::twitter::TweetTable::generate_at`]) — the delegate
    /// gather path resolves global ids by binary search over each
    /// shard's strictly increasing id column, so a gap or permutation
    /// would corrupt results. Violations are a typed
    /// [`QdbError::Internal`]. Capacity is checked on every shard before
    /// anything splices, so a [`QdbError::CapacityExceeded`] append
    /// changes nothing.
    pub fn append_batch(
        &self,
        cluster: &Cluster,
        batch: &TweetTable,
    ) -> Result<ShardedAppendReceipt, QdbError> {
        let old_total = self.len();
        let new_total = old_total + batch.len();
        for (j, &id) in batch.id.iter().enumerate() {
            if id as usize != old_total + j {
                return Err(QdbError::Internal {
                    what: format!(
                        "append batch id {id} at offset {j} breaks the global row \
                         numbering (expected {})",
                        old_total + j
                    ),
                });
            }
        }
        let d = self.shards.len();
        // route rows, then capacity-check every shard before any splice
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); d];
        for (j, &id) in batch.id.iter().enumerate() {
            routed[self.policy.assign(id as usize, new_total, d)].push(j);
        }
        for (i, rows) in routed.iter().enumerate() {
            let shard = &self.shards[i];
            let needed = shard.host().len() + rows.len();
            if needed > shard.cap_rows {
                return Err(QdbError::CapacityExceeded {
                    needed,
                    cap: shard.cap_rows,
                });
            }
        }
        let epoch = self.epoch.get() + 1;
        let mut transfer_done = SimTime::ZERO;
        let mut bytes_total = 0usize;
        let mut retries = 0usize;
        let mut skipped_replicas = 0usize;
        for (i, rows) in routed.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let sub = TweetTable {
                id: rows.iter().map(|&r| batch.id[r]).collect(),
                tweet_time: rows.iter().map(|&r| batch.tweet_time[r]).collect(),
                retweet_count: rows.iter().map(|&r| batch.retweet_count[r]).collect(),
                likes_count: rows.iter().map(|&r| batch.likes_count[r]).collect(),
                lang: rows.iter().map(|&r| batch.lang[r]).collect(),
                uid: rows.iter().map(|&r| batch.uid[r]).collect(),
            };
            let bytes = sub.len() * ROW_BYTES;
            let shard = &self.shards[i];
            shard.host.borrow_mut().extend_from(&sub);
            for rep in &shard.replicas {
                if cluster.device(rep.device).is_down() {
                    skipped_replicas += 1;
                    continue;
                }
                // capacity was pre-checked against the same per-shard
                // allocation every replica shares, so this cannot fail
                rep.gpu.splice_rows(&sub)?;
                let label = format!("append:shard{i}->dev{}:epoch{epoch}", rep.device);
                let t = retry_transfer(
                    cluster,
                    usize::MAX,
                    rep.device,
                    bytes,
                    &label,
                    3,
                    &mut retries,
                )?;
                bytes_total += bytes;
                if t.end.0 > transfer_done.0 {
                    transfer_done = t.end;
                }
            }
        }
        self.epoch.set(epoch);
        Ok(ShardedAppendReceipt {
            rows: batch.len(),
            bytes: bytes_total,
            transfer_done,
            epoch,
            transfer_retries: retries,
            skipped_replicas,
        })
    }

    /// Monotonic data epoch: 0 at partition time, +1 per completed
    /// append. Serving layers key their caches and rebuilt copies on it.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// The partition policy the table was built with.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// The replication factor the table was built with (clamped to the
    /// device count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of shards (== cluster devices).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard by device index.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Rows per shard, in device order.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.host().len()).collect()
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.host().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Issues one delegate (or load) transfer with bounded retries against
/// fault-plan drops. `src == usize::MAX` means host → device `dst_or_src`.
fn retry_transfer(
    cluster: &Cluster,
    src: usize,
    dst: usize,
    bytes: usize,
    label: &str,
    max_retries: usize,
    retries: &mut usize,
) -> Result<simt::topology::Transfer, QdbError> {
    retry_transfer_at(
        cluster,
        src,
        dst,
        bytes,
        label,
        SimTime::ZERO,
        max_retries,
        retries,
    )
}

#[allow(clippy::too_many_arguments)]
fn retry_transfer_at(
    cluster: &Cluster,
    src: usize,
    dst: usize,
    bytes: usize,
    label: &str,
    ready: SimTime,
    max_retries: usize,
    retries: &mut usize,
) -> Result<simt::topology::Transfer, QdbError> {
    let mut attempt = 0usize;
    loop {
        let r = if src == usize::MAX {
            cluster.host_to_device(dst, bytes, label, ready)
        } else {
            cluster.device_to_device(src, dst, bytes, label, ready)
        };
        match r {
            Ok(t) => return Ok(t),
            Err(e) if !e.permanent && attempt < max_retries => {
                attempt += 1;
                *retries += 1;
            }
            Err(e) => {
                // a permanently down endpoint can never be retried; in
                // both cases name the device so ledgers attribute the
                // fault to hardware, not to the query
                return Err(QdbError::DeviceFault {
                    what: e.to_string(),
                    transient: !e.permanent,
                    attempts: attempt + 1,
                    device: Some(e.device),
                });
            }
        }
    }
}

/// First device at or after `start` (ring order) that is not permanently
/// down; `None` when the whole cluster is lost.
pub(crate) fn first_healthy_from(cluster: &Cluster, start: usize) -> Option<usize> {
    let d = cluster.num_devices();
    (0..d)
        .map(|o| (start + o) % d)
        .find(|&i| !cluster.device(i).is_down())
}

/// The typed error for a cluster with no healthy device left.
pub(crate) fn all_devices_down(device: usize) -> QdbError {
    QdbError::DeviceFault {
        what: "every device in the cluster is permanently down".to_string(),
        transient: false,
        attempts: 1,
        device: Some(device),
    }
}

/// Stamps `device` into an unattributed device fault so sharded ledger
/// entries name the hardware that failed, not just the kernel.
pub(crate) fn attribute_device(e: QdbError, device: usize) -> QdbError {
    match e {
        QdbError::DeviceFault {
            what,
            transient,
            attempts,
            device: None,
        } => QdbError::DeviceFault {
            what,
            transient,
            attempts,
            device: Some(device),
        },
        other => other,
    }
}

/// Gather-and-merge outcome shared by every sharded path.
pub(crate) struct Merged<T> {
    pub(crate) items: Vec<T>,
    pub(crate) transfer_done: SimTime,
    pub(crate) merge_time: SimTime,
    pub(crate) candidate_bytes: usize,
    pub(crate) transfer_retries: usize,
}

/// Ships each shard's delegates (descending-sorted, ≤ k items) from its
/// serving device to `merge_dev` and merges them with the bitonic run
/// reducer. `local[i]` is shard `i`'s local completion time — the
/// earliest its delegates can hit the wire; `serving[i]` is the device
/// that produced them (with replication, whichever healthy replica
/// served). Delegates already resident on the merge device skip the
/// wire.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ship_and_merge<T: TopKItem>(
    cluster: &Cluster,
    delegates: Vec<Vec<T>>,
    local: &[SimTime],
    serving: &[usize],
    merge_dev: usize,
    k: usize,
    cfg: BitonicConfig,
    max_retries: usize,
) -> Result<Merged<T>, QdbError> {
    let mdev = cluster.device(merge_dev);
    let total: usize = delegates.iter().map(|d| d.len()).sum();
    // merge-resident shards never cross the wire: start the clock at
    // their local completion
    let mut transfer_done = SimTime::ZERO;
    for (i, &l) in local.iter().enumerate() {
        if serving[i] == merge_dev && l.0 > transfer_done.0 {
            transfer_done = l;
        }
    }
    if total == 0 {
        for &l in local {
            if l.0 > transfer_done.0 {
                transfer_done = l;
            }
        }
        return Ok(Merged {
            items: Vec::new(),
            transfer_done,
            merge_time: SimTime::ZERO,
            candidate_bytes: 0,
            transfer_retries: 0,
        });
    }
    let k_req = k.min(total);
    let k_eff = next_pow2(k_req);

    // scatter-gather: every non-resident shard ships its delegates to
    // the merge device; transfers sharing a channel serialize there
    let mut candidate_bytes = 0usize;
    let mut transfer_retries = 0usize;
    for (i, d) in delegates.iter().enumerate() {
        if serving[i] == merge_dev || d.is_empty() {
            continue;
        }
        let bytes = d.len() * T::SIZE_BYTES;
        candidate_bytes += bytes;
        let label = format!("delegates:shard{i}");
        let t = retry_transfer_at(
            cluster,
            serving[i],
            merge_dev,
            bytes,
            &label,
            local[i],
            max_retries,
            &mut transfer_retries,
        )?;
        if t.end.0 > transfer_done.0 {
            transfer_done = t.end;
        }
    }

    // pad each delegate list into a whole k_eff run (a descending run
    // with MIN-sentinel tail is a valid bitonic run) and reduce on the
    // merge device
    let mut runs: Vec<T> = Vec::with_capacity(delegates.len() * k_eff);
    for mut d in delegates {
        debug_assert!(d.len() <= k_eff, "delegate list exceeds its run");
        d.resize(k_eff, T::min_sentinel());
        runs.extend(d);
    }
    let valid = runs.len();
    let mut attempt = 0usize;
    let (items, merge_time) = loop {
        let buf = mdev
            .try_upload(&runs)
            .map_err(|e| attribute_device(e.into(), merge_dev))?;
        let log0 = mdev.log_len();
        match bitonic_topk_from_runs(mdev, &buf, valid, k_req, cfg) {
            Ok(r) => break (r.items, mdev.window_since(log0).time),
            Err(e) => {
                let e: QdbError = e.into();
                if e.is_transient() && attempt < max_retries {
                    attempt += 1;
                    transfer_retries += 1;
                } else {
                    return Err(attribute_device(e, merge_dev));
                }
            }
        }
    };
    Ok(Merged {
        items,
        transfer_done,
        merge_time,
        candidate_bytes,
        transfer_retries,
    })
}

/// Outcome of one raw sharded top-k.
#[derive(Debug, Clone)]
pub struct ShardedTopK<T> {
    /// The merged top-k, descending — bit-identical to the single-device
    /// result over the concatenated input.
    pub items: Vec<T>,
    /// Per-shard local kernel time (shards run concurrently).
    pub local: Vec<SimTime>,
    /// When the last delegate run landed on device 0.
    pub transfer_done: SimTime,
    /// Kernel time of the delegate merge on device 0.
    pub merge_time: SimTime,
    /// End-to-end modeled time: `max(local, transfers) + merge`.
    pub sim_time: SimTime,
    /// Delegate bytes shipped over the interconnect.
    pub candidate_bytes: usize,
    /// Transfer/merge retries consumed against fault plans.
    pub retries: usize,
}

/// Raw sharded top-k over pre-partitioned items: each `parts[i]` runs the
/// bitonic top-k locally on device `i`, delegates ship to device 0, and
/// the runs merge there. Returns the largest `k` items, descending.
pub fn sharded_topk<T: TopKItem>(
    cluster: &Cluster,
    parts: &[Vec<T>],
    k: usize,
    cfg: BitonicConfig,
    max_retries: usize,
) -> Result<ShardedTopK<T>, QdbError> {
    assert_eq!(
        parts.len(),
        cluster.num_devices(),
        "one part per cluster device"
    );
    let Some(merge_dev) = first_healthy_from(cluster, 0) else {
        return Err(all_devices_down(0));
    };
    let mut delegates: Vec<Vec<T>> = Vec::with_capacity(parts.len());
    let mut local = Vec::with_capacity(parts.len());
    let mut serving = Vec::with_capacity(parts.len());
    let mut retries = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            delegates.push(Vec::new());
            local.push(SimTime::ZERO);
            serving.push(merge_dev);
            continue;
        }
        // a part whose home device is down runs on the next healthy one
        let home = first_healthy_from(cluster, i).unwrap_or(merge_dev);
        let dev = cluster.device(home);
        serving.push(home);
        let mut attempt = 0usize;
        let (items, time) = loop {
            let log0 = dev.log_len();
            let buf = dev
                .try_upload(part)
                .map_err(|e| attribute_device(e.into(), home))?;
            match bitonic_topk(dev, &buf, k.min(part.len()), cfg) {
                Ok(r) => break (r.items, dev.window_since(log0).time),
                Err(e) => {
                    let e: QdbError = e.into();
                    if e.is_transient() && attempt < max_retries {
                        attempt += 1;
                        retries += 1;
                    } else {
                        return Err(attribute_device(e, home));
                    }
                }
            }
        };
        delegates.push(items);
        local.push(time);
    }
    let merged = ship_and_merge(
        cluster,
        delegates,
        &local,
        &serving,
        merge_dev,
        k,
        cfg,
        max_retries,
    )?;
    Ok(ShardedTopK {
        items: merged.items,
        sim_time: merged.transfer_done + merged.merge_time,
        local,
        transfer_done: merged.transfer_done,
        merge_time: merged.merge_time,
        candidate_bytes: merged.candidate_bytes,
        retries: retries + merged.transfer_retries,
    })
}

/// Delegates of delegates: like [`sharded_topk`], but each shard runs
/// *delegate select* locally — per-subrange delegates, threshold over
/// the delegate set, refinement of the contributing subranges — and
/// ships its k local winners (themselves a delegate list) to device 0,
/// where the same bitonic run merge produces the global result. The
/// two-level decomposition composes: the shard-level delegate list is
/// exact (tie-safe threshold, full item order), so the merged result is
/// bit-identical to the single-device answer, while each shard's global
/// traffic drops to its refinement volume once its index is warm.
pub fn sharded_delegate_topk<T: TopKItem>(
    cluster: &Cluster,
    parts: &[Vec<T>],
    k: usize,
    cfg: DelegateConfig,
    max_retries: usize,
) -> Result<ShardedTopK<T>, QdbError> {
    assert_eq!(
        parts.len(),
        cluster.num_devices(),
        "one part per cluster device"
    );
    let Some(merge_dev) = first_healthy_from(cluster, 0) else {
        return Err(all_devices_down(0));
    };
    let mut delegates: Vec<Vec<T>> = Vec::with_capacity(parts.len());
    let mut local = Vec::with_capacity(parts.len());
    let mut serving = Vec::with_capacity(parts.len());
    let mut retries = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            delegates.push(Vec::new());
            local.push(SimTime::ZERO);
            serving.push(merge_dev);
            continue;
        }
        // a part whose home device is down runs on the next healthy one
        let home = first_healthy_from(cluster, i).unwrap_or(merge_dev);
        let dev = cluster.device(home);
        serving.push(home);
        let mut attempt = 0usize;
        let (items, time) = loop {
            let log0 = dev.log_len();
            let buf = dev
                .try_upload(part)
                .map_err(|e| attribute_device(e.into(), home))?;
            match delegate_select_topk(dev, &buf, k.min(part.len()), cfg) {
                Ok(r) => break (r.items, dev.window_since(log0).time),
                Err(e) => {
                    let e: QdbError = e.into();
                    if e.is_transient() && attempt < max_retries {
                        attempt += 1;
                        retries += 1;
                    } else {
                        return Err(attribute_device(e, home));
                    }
                }
            }
        };
        delegates.push(items);
        local.push(time);
    }
    let merged = ship_and_merge(
        cluster,
        delegates,
        &local,
        &serving,
        merge_dev,
        k,
        cfg.bitonic,
        max_retries,
    )?;
    Ok(ShardedTopK {
        items: merged.items,
        sim_time: merged.transfer_done + merged.merge_time,
        local,
        transfer_done: merged.transfer_done,
        merge_time: merged.merge_time,
        candidate_bytes: merged.candidate_bytes,
        retries: retries + merged.transfer_retries,
    })
}

/// Outcome of one sharded SQL query.
#[derive(Debug, Clone)]
pub struct ShardedQueryResult {
    /// Result tweet ids, ranked — bit-identical to the single-device
    /// result for the bitonic strategies.
    pub ids: Vec<u32>,
    /// End-to-end modeled time: `max(local, transfers) + merge`.
    pub sim_time: SimTime,
    /// Per-shard local kernel time.
    pub local: Vec<SimTime>,
    /// When the last delegate run landed on device 0.
    pub transfer_done: SimTime,
    /// Kernel time of the delegate merge on device 0.
    pub merge_time: SimTime,
    /// Delegate bytes shipped over the interconnect.
    pub candidate_bytes: usize,
    /// Local-pass, transfer and merge retries consumed.
    pub retries: usize,
}

/// Finds the shard-local row of a global id (shard id columns are
/// strictly increasing by construction). A miss is a bug in the gather
/// path, reported as a typed [`QdbError::Internal`] — never a panic, so
/// the no-panics contract holds on the delegate gather path too.
pub(crate) fn shard_row(shard: &TweetTable, id: u32) -> Result<usize, QdbError> {
    shard.host_row(id).ok_or_else(|| QdbError::Internal {
        what: format!("delegate id {id} does not belong to its shard"),
    })
}

trait HostRow {
    fn host_row(&self, id: u32) -> Option<usize>;
}

impl HostRow for TweetTable {
    fn host_row(&self, id: u32) -> Option<usize> {
        self.id.binary_search(&id).ok()
    }
}

/// The f32 rank the engine's ranking kernels compute for a row.
pub(crate) fn rank_key(t: &TweetTable, row: usize) -> f32 {
    t.retweet_count[row] as f32 + 0.5 * t.likes_count[row] as f32
}

/// Executes a parsed query against a sharded table: the per-shard
/// pipeline runs locally on each device (with `max_retries` bounded
/// retries against transient faults), the k delegate candidates per
/// shard ship to device 0, and the bitonic run reducer merges them.
///
/// `GROUP BY` is rejected ([`SqlError::Unsupported`]): row partitioning
/// splits a uid's tweets across shards, so per-shard group counts cannot
/// be merged by taking delegates (that would silently undercount).
///
/// For the bitonic strategies the result is bit-identical to
/// single-device execution; `StageSort`'s radix pass orders key ties by
/// arrival, so its delegate *sets* may differ at duplicate-key
/// boundaries (keys still match).
pub fn execute_sharded(
    cluster: &Cluster,
    table: &ShardedTable,
    q: &Query,
    strategy: Strategy,
    max_retries: usize,
) -> Result<ShardedQueryResult, QdbError> {
    if q.group_by_uid {
        return Err(SqlError::Unsupported("GROUP BY on a sharded table").into());
    }
    if table.is_empty() {
        return Err(QdbError::EmptyTable);
    }
    if q.limit > table.len() {
        return Err(QdbError::InvalidK {
            k: q.limit,
            n: table.len(),
        });
    }

    let Some(merge_dev) = first_healthy_from(cluster, 0) else {
        return Err(all_devices_down(0));
    };
    let mut per_shard: Vec<Vec<u32>> = Vec::with_capacity(table.num_shards());
    let mut local = Vec::with_capacity(table.num_shards());
    let mut serving = Vec::with_capacity(table.num_shards());
    let mut retries = 0usize;
    for i in 0..table.num_shards() {
        let shard = table.shard(i);
        if shard.host().is_empty() {
            per_shard.push(Vec::new());
            local.push(SimTime::ZERO);
            serving.push(merge_dev);
            continue;
        }
        // read any healthy replica, primary first — which copy serves
        // cannot change the answer, only where the delegates start
        let Some(rep) = shard
            .replicas()
            .iter()
            .find(|rep| !cluster.device(rep.device).is_down())
        else {
            return Err(QdbError::DeviceFault {
                what: format!("shard {i}: every replica device is permanently down"),
                transient: false,
                attempts: 1,
                device: Some(shard.primary_device()),
            });
        };
        let dev = cluster.device(rep.device);
        serving.push(rep.device);
        let shard_q = Query {
            limit: q.limit.min(shard.host().len()),
            ..q.clone()
        };
        let mut attempt = 0usize;
        let r = loop {
            match execute(dev, &rep.gpu, &shard_q, strategy) {
                Ok(r) => break r,
                Err(e) if e.is_transient() && attempt < max_retries => {
                    attempt += 1;
                    retries += 1;
                }
                Err(e) => return Err(attribute_device(e, rep.device)),
            }
        };
        local.push(r.kernel_time);
        per_shard.push(r.ids);
    }

    let merged = merge_shard_ids(
        cluster,
        table,
        q,
        per_shard,
        &local,
        &serving,
        merge_dev,
        max_retries,
    )?;
    Ok(ShardedQueryResult {
        ids: merged.0,
        sim_time: merged.1.transfer_done + merged.1.merge_time,
        local,
        transfer_done: merged.1.transfer_done,
        merge_time: merged.1.merge_time,
        candidate_bytes: merged.1.candidate_bytes,
        retries: retries + merged.1.transfer_retries,
    })
}

/// Merge plumbing shared by [`execute_sharded`] and the server: rebuilds
/// each shard's delegate (key, id) pairs from its host columns, ships
/// and merges them, and returns the ranked global ids.
struct MergedIds {
    transfer_done: SimTime,
    merge_time: SimTime,
    candidate_bytes: usize,
    transfer_retries: usize,
}

#[allow(clippy::too_many_arguments)]
fn merge_shard_ids(
    cluster: &Cluster,
    table: &ShardedTable,
    q: &Query,
    per_shard: Vec<Vec<u32>>,
    local: &[SimTime],
    serving: &[usize],
    merge_dev: usize,
    max_retries: usize,
) -> Result<(Vec<u32>, MergedIds), QdbError> {
    let cfg = BitonicConfig::default();
    let k = q.limit;
    // rebuild each shard's delegate (key, id) pairs from its host
    // columns, fallibly: a missing id is a typed internal error
    fn delegates_of<T, F>(
        table: &ShardedTable,
        per_shard: &[Vec<u32>],
        mut make: F,
    ) -> Result<Vec<Vec<T>>, QdbError>
    where
        F: FnMut(&TweetTable, usize, u32) -> T,
    {
        let mut delegates = Vec::with_capacity(per_shard.len());
        for (i, ids) in per_shard.iter().enumerate() {
            let h = table.shard(i).host();
            let mut d = Vec::with_capacity(ids.len());
            for &id in ids {
                d.push(make(&h, shard_row(&h, id)?, id));
            }
            delegates.push(d);
        }
        Ok(delegates)
    }
    match (&q.order_by, q.ascending) {
        (OrderBy::RetweetCount, false) => {
            let delegates = delegates_of(table, &per_shard, |h, row, id| {
                Kv::new(h.retweet_count[row], id)
            })?;
            let m = ship_and_merge(
                cluster,
                delegates,
                local,
                serving,
                merge_dev,
                k,
                cfg,
                max_retries,
            )?;
            Ok((
                m.items.iter().map(|kv| kv.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::RetweetCount, true) => {
            let delegates = delegates_of(table, &per_shard, |h, row, id| {
                Rev(Kv::new(h.retweet_count[row], id))
            })?;
            let m = ship_and_merge(
                cluster,
                delegates,
                local,
                serving,
                merge_dev,
                k,
                cfg,
                max_retries,
            )?;
            Ok((
                m.items.iter().map(|kv| kv.0.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::Rank { .. }, _) => {
            let delegates = delegates_of(table, &per_shard, |h, row, id| {
                Kv::new(rank_key(h, row), id)
            })?;
            let m = ship_and_merge(
                cluster,
                delegates,
                local,
                serving,
                merge_dev,
                k,
                cfg,
                max_retries,
            )?;
            Ok((
                m.items.iter().map(|kv| kv.value).collect(),
                MergedIds {
                    transfer_done: m.transfer_done,
                    merge_time: m.merge_time,
                    candidate_bytes: m.candidate_bytes,
                    transfer_retries: m.transfer_retries,
                },
            ))
        }
        (OrderBy::Count, _) => Err(SqlError::Unsupported("GROUP BY on a sharded table").into()),
    }
}

/// Renders a validated [`Query`] back to canonical SQL with a replaced
/// LIMIT — how the sharded server forwards a query to a shard whose row
/// count is below the global k.
fn render_sql(q: &Query, limit: usize) -> String {
    let mut s = String::from("SELECT id FROM tweets");
    match &q.filter {
        Some(FilterOp::TimeLess(c)) => s.push_str(&format!(" WHERE tweet_time < {c}")),
        Some(FilterOp::LangIn(codes)) => {
            let names: Vec<String> = codes
                .iter()
                .map(|&c| {
                    let name = match c {
                        0 => "en",
                        1 => "es",
                        2 => "pt",
                        3 => "ja",
                        4 => "ar",
                        _ => "other",
                    };
                    format!("lang = '{name}'")
                })
                .collect();
            s.push_str(&format!(" WHERE {}", names.join(" OR ")));
        }
        None => {}
    }
    match &q.order_by {
        OrderBy::RetweetCount => s.push_str(" ORDER BY retweet_count"),
        OrderBy::Rank { likes_weight } => {
            s.push_str(&format!(
                " ORDER BY retweet_count + {likes_weight} * likes_count"
            ));
        }
        OrderBy::Count => unreachable!("group queries are rejected before rendering"),
    }
    s.push_str(if q.ascending { " ASC" } else { " DESC" });
    s.push_str(&format!(" LIMIT {limit}"));
    s
}

/// Handle for a query submitted to the sharded server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedTicket(pub usize);

/// One sharded query's outcome from a drain.
#[derive(Debug, Clone)]
pub struct ShardedServed {
    /// The submission ticket.
    pub ticket: ShardedTicket,
    /// The original SQL text.
    pub sql: String,
    /// Merged result ids (empty when `error` is set).
    pub ids: Vec<u32>,
    /// End-to-end latency: slowest shard + gather + merge.
    pub latency: SimTime,
    /// Why the query did not complete (`None` = completed). A failed
    /// shard fails the whole query — results are never truncated to the
    /// surviving shards.
    pub error: Option<QdbError>,
    /// The deepest degradation rung any shard used for this query.
    pub degrade: DegradeLevel,
    /// Retries across all shards plus transfer/merge retries.
    pub retries: usize,
    /// The transfer/merge share of `retries` (the shard share is already
    /// in the per-device ledgers).
    pub transfer_retries: usize,
    /// Per-shard executions this query served from a non-routed replica
    /// after the routed device failed.
    pub failovers: usize,
    /// True when the merged result came from the epoch-tagged cache —
    /// no sub-query touched a shard (zero device work, zero latency).
    pub cached: bool,
}

impl ShardedServed {
    /// True when the query produced a merged result.
    pub fn completed(&self) -> bool {
        self.error.is_none()
    }
}

/// Everything one [`ShardedServer::drain`] produced.
#[derive(Debug, Clone)]
pub struct ShardedLoadReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<ShardedServed>,
    /// Aggregated resilience ledger: per-shard server ledgers summed,
    /// with completion/failure counted at the sharded-query level.
    pub resilience: ResilienceStats,
    /// Per-replica-server drain reports, shard-major then replica order
    /// (with `r = 1` this is exactly one report per shard).
    pub shard_reports: Vec<LoadReport>,
    /// Completion time of the slowest query (0 when none completed).
    pub makespan: SimTime,
    /// Per-device health snapshot after this drain (breaker states,
    /// consecutive failures, trip counts).
    pub health: Vec<DeviceHealth>,
}

/// Breaker trip threshold: consecutive failed sub-queries attributed to
/// one device before its breaker opens.
const BREAKER_THRESHOLD: usize = 3;

/// Simulated cooldown an open breaker waits before admitting a
/// half-open probe.
const BREAKER_COOLDOWN: SimTime = SimTime(1e-3);

/// Circuit-breaker state of one device on the sharded serving path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Healthy: queries route here normally.
    Closed,
    /// Tripped: no queries route here until the cooldown elapses.
    Open {
        /// Simulated time at which a half-open probe is admitted.
        until: SimTime,
    },
    /// Cooldown elapsed: the next routed query is a probe — success
    /// recloses the breaker, failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable name for ledgers and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-device serving health the sharded server tracks across drains.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    /// Consecutive failed sub-queries attributed to this device.
    pub consecutive_failures: usize,
    /// The breaker's current state.
    pub state: BreakerState,
    /// Times the breaker has tripped open.
    pub trips: usize,
    /// Whether the device was seen permanently down at routing time.
    pub down: bool,
}

/// Where one shard's sub-query was routed at submission.
enum ShardRoute {
    /// Queued on `servers[shard][replica]`.
    Queued { replica: usize, ticket: QueryTicket },
    /// No live replica server was routable; the query runs directly on
    /// a rebuilt copy at drain.
    Direct { device: usize },
    /// The shard is empty: contributes nothing.
    Empty,
    /// No healthy copy exists anywhere: fails loudly at drain.
    Dead { device: usize },
}

/// One admitted sharded query awaiting drain.
struct PendingQuery {
    ticket: ShardedTicket,
    sql: String,
    q: Query,
    routes: Vec<ShardRoute>,
    /// Ids resolved from the result cache at submission (same SQL, same
    /// table epoch); the drain serves them without routing anything.
    cached: Option<Vec<u32>>,
}

/// A serving front-end over a sharded table: one [`Server`] per
/// (shard, replica), each with its own admission queue, retry budget and
/// degradation ladder; queries scatter to every shard at submission
/// (routed to the first healthy replica) and gather-merge at drain.
///
/// Permanent device loss is survived, not retried: a per-device
/// consecutive-failure circuit breaker steers routing away from a
/// failing device, drain-time failover re-serves a failed sub-query
/// from any healthy replica, and lost partitions are rebuilt from their
/// pristine host copies onto surviving devices for subsequent
/// submissions. All of it is ledgered ([`ResilienceStats::failovers`],
/// [`ResilienceStats::rebuilds`], [`ResilienceStats::breaker_trips`],
/// [`ShardedLoadReport::health`]).
pub struct ShardedServer<'a> {
    cluster: &'a Cluster,
    table: &'a ShardedTable,
    /// `servers[shard][replica]` mirrors `table.shard(shard).replicas()`.
    servers: Vec<Vec<Server<'a>>>,
    /// Rebuilt copies per shard: `(device, re-materialized table)`.
    /// Owned here (not by the table), served directly at drain.
    rebuilt: Vec<Vec<(usize, GpuTweetTable)>>,
    /// Table epoch the rebuilt copies were materialized at. An append
    /// bumps the table past this; the next submission discards every
    /// rebuilt copy rather than serve pre-append rows (replicas held by
    /// the table itself are spliced in place and never go stale).
    rebuilt_epoch: u64,
    health: Vec<DeviceHealth>,
    /// Simulated clock the breaker runs on; advances by each drain's
    /// makespan.
    sim_now: SimTime,
    strategy: Strategy,
    max_retries: usize,
    pending: Vec<PendingQuery>,
    next_ticket: usize,
    shed: usize,
    /// Whole-query result cache ([`ServerConfig::result_cache`]): SQL
    /// text → (table epoch at insertion, merged ids). Caching happens
    /// here, above the scatter, so a hit skips every shard.
    result_cache: bool,
    cache: HashMap<String, (u64, Vec<u32>)>,
    cache_hits: usize,
    cache_misses: usize,
    cache_refreshes: usize,
}

impl<'a> ShardedServer<'a> {
    /// Creates one server per (shard, replica) pair.
    pub fn new(cluster: &'a Cluster, table: &'a ShardedTable, cfg: ServerConfig) -> Self {
        assert_eq!(cluster.num_devices(), table.num_shards());
        let max_retries = cfg.max_retries;
        let strategy = cfg.default_strategy;
        let result_cache = cfg.result_cache;
        // caching lives at the sharded layer (whole merged queries);
        // per-shard servers always re-execute their sub-queries
        let cfg = ServerConfig {
            result_cache: false,
            ..cfg
        };
        let servers: Vec<Vec<Server<'a>>> = (0..table.num_shards())
            .map(|i| {
                table
                    .shard(i)
                    .replicas()
                    .iter()
                    .map(|rep| Server::new(cluster.device(rep.device), &rep.gpu, cfg.clone()))
                    .collect()
            })
            .collect();
        let health = (0..cluster.num_devices())
            .map(|_| DeviceHealth {
                consecutive_failures: 0,
                state: BreakerState::Closed,
                trips: 0,
                down: false,
            })
            .collect();
        ShardedServer {
            cluster,
            table,
            servers,
            rebuilt: (0..table.num_shards()).map(|_| Vec::new()).collect(),
            rebuilt_epoch: table.epoch(),
            health,
            sim_now: SimTime::ZERO,
            strategy,
            max_retries,
            pending: Vec::new(),
            next_ticket: 0,
            shed: 0,
            result_cache,
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_refreshes: 0,
        }
    }

    /// Per-device health (breaker state, consecutive failures, trips).
    pub fn health(&self) -> &[DeviceHealth] {
        &self.health
    }

    /// Discards rebuilt copies materialized before the last append:
    /// they froze the pre-append rows, and serving them would break
    /// bit-identity with the extended table. Replication is restored
    /// from the current host columns at the next drain.
    fn discard_stale_rebuilds(&mut self) {
        let epoch = self.table.epoch();
        if epoch != self.rebuilt_epoch {
            for r in &mut self.rebuilt {
                r.clear();
            }
            self.rebuilt_epoch = epoch;
        }
    }

    /// Whether queries may route to `device` right now: not permanently
    /// down, breaker not open (an elapsed cooldown moves the breaker to
    /// half-open and admits the probe).
    fn device_routable(&mut self, device: usize) -> bool {
        if self.cluster.device(device).is_down() {
            self.health[device].down = true;
            return false;
        }
        match self.health[device].state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if self.sim_now.0 >= until.0 {
                    self.health[device].state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a failed sub-query on `device`: trips the breaker after
    /// [`BREAKER_THRESHOLD`] consecutive failures; a failed half-open
    /// probe re-opens immediately.
    fn note_failure(&mut self, device: usize) {
        let reopen = self.sim_now + BREAKER_COOLDOWN;
        let h = &mut self.health[device];
        h.consecutive_failures += 1;
        match h.state {
            BreakerState::HalfOpen => {
                h.state = BreakerState::Open { until: reopen };
                h.trips += 1;
            }
            BreakerState::Closed if h.consecutive_failures >= BREAKER_THRESHOLD => {
                h.state = BreakerState::Open { until: reopen };
                h.trips += 1;
            }
            _ => {}
        }
    }

    /// Records a served sub-query on `device`: resets the failure streak
    /// and recloses a half-open breaker.
    fn note_success(&mut self, device: usize) {
        let h = &mut self.health[device];
        h.consecutive_failures = 0;
        if matches!(h.state, BreakerState::HalfOpen) {
            h.state = BreakerState::Closed;
        }
    }

    /// Parses, validates and scatters one SQL query to every shard's
    /// admission queue. A shard that sheds ([`QdbError::Overloaded`])
    /// sheds the whole query.
    pub fn submit(&mut self, sql: &str) -> Result<ShardedTicket, QdbError> {
        self.discard_stale_rebuilds();
        let q = parse(sql)?;
        if q.group_by_uid {
            return Err(SqlError::Unsupported("GROUP BY on a sharded table").into());
        }
        if let OrderBy::Rank { likes_weight } = q.order_by {
            if (likes_weight - 0.5).abs() > 1e-9 {
                return Err(SqlError::Unsupported("ranking weight other than 0.5").into());
            }
            if q.filter.is_some() {
                return Err(SqlError::Unsupported("WHERE combined with a ranking function").into());
            }
        }
        let n = self.table.len();
        if n == 0 {
            return Err(QdbError::EmptyTable);
        }
        if q.limit > n {
            return Err(QdbError::InvalidK { k: q.limit, n });
        }
        if self.result_cache {
            let hit = match self.cache.get(sql) {
                Some((epoch, ids)) if *epoch == self.table.epoch() => {
                    self.cache_hits += 1;
                    Some(ids.clone())
                }
                Some(_) => {
                    self.cache_refreshes += 1;
                    None
                }
                None => {
                    self.cache_misses += 1;
                    None
                }
            };
            if let Some(ids) = hit {
                // a hit skips the scatter entirely: no sub-queries, no
                // breaker traffic, nothing to drain from the shards
                let ticket = ShardedTicket(self.next_ticket);
                self.next_ticket += 1;
                self.pending.push(PendingQuery {
                    ticket,
                    sql: sql.to_string(),
                    q,
                    routes: Vec::new(),
                    cached: Some(ids),
                });
                return Ok(ticket);
            }
        }
        let mut routes = Vec::with_capacity(self.table.num_shards());
        for i in 0..self.table.num_shards() {
            let shard_n = self.table.shard(i).host().len();
            if shard_n == 0 {
                routes.push(ShardRoute::Empty);
                continue;
            }
            // first routable replica takes the shard (primary first, so
            // the all-healthy path is identical to the unreplicated one)
            let devices: Vec<usize> = self
                .table
                .shard(i)
                .replicas()
                .iter()
                .map(|rep| rep.device)
                .collect();
            if let Some(j) = devices.iter().position(|&d| self.device_routable(d)) {
                let shard_sql = render_sql(&q, q.limit.min(shard_n));
                match self.servers[i][j].submit(&shard_sql, SubmitOptions::default()) {
                    Ok(t) => routes.push(ShardRoute::Queued {
                        replica: j,
                        ticket: t,
                    }),
                    Err(e @ QdbError::Overloaded { .. }) => {
                        // already-admitted siblings will run and be
                        // discarded — the price of decentralized admission
                        self.shed += 1;
                        return Err(e);
                    }
                    Err(e) => return Err(e),
                }
                continue;
            }
            // no live replica server: a rebuilt copy on a routable
            // device can still serve directly at drain
            let rebuilt: Vec<usize> = self.rebuilt[i].iter().map(|&(d, _)| d).collect();
            match rebuilt.into_iter().find(|&d| self.device_routable(d)) {
                Some(d) => routes.push(ShardRoute::Direct { device: d }),
                None => routes.push(ShardRoute::Dead {
                    device: self.table.shard(i).primary_device(),
                }),
            }
        }
        let ticket = ShardedTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingQuery {
            ticket,
            sql: sql.to_string(),
            q,
            routes,
            cached: None,
        });
        Ok(ticket)
    }

    /// Runs shard `i`'s sub-query directly on `device` (a rebuilt copy,
    /// or a replica outside its server queue during failover), with
    /// bounded transient retries. Returns (ids, kernel time, retries).
    fn direct_execute(
        &self,
        i: usize,
        device: usize,
        q: &Query,
    ) -> Result<(Vec<u32>, SimTime, usize), QdbError> {
        if self.cluster.device(device).is_down() {
            return Err(QdbError::DeviceFault {
                what: format!("shard {i}: dev{device} is permanently down"),
                transient: false,
                attempts: 1,
                device: Some(device),
            });
        }
        let shard = self.table.shard(i);
        let gpu = shard
            .replicas()
            .iter()
            .find(|rep| rep.device == device)
            .map(|rep| &rep.gpu)
            .or_else(|| {
                self.rebuilt[i]
                    .iter()
                    .find(|&&(d, _)| d == device)
                    .map(|(_, gpu)| gpu)
            })
            .ok_or_else(|| QdbError::Internal {
                what: format!("shard {i} has no copy on dev{device}"),
            })?;
        let shard_q = Query {
            limit: q.limit.min(shard.host().len()),
            ..q.clone()
        };
        let dev = self.cluster.device(device);
        let mut attempt = 0usize;
        loop {
            match execute(dev, gpu, &shard_q, self.strategy) {
                Ok(r) => return Ok((r.ids, r.kernel_time, attempt)),
                Err(e) if e.is_transient() && attempt < self.max_retries => attempt += 1,
                Err(e) => return Err(attribute_device(e, device)),
            }
        }
    }

    /// Serves shard `i` from any healthy copy whose device is not in
    /// `exclude`. Returns (ids, time, serving device, retries).
    fn failover(
        &mut self,
        i: usize,
        q: &Query,
        exclude: &[usize],
    ) -> Result<(Vec<u32>, SimTime, usize, usize), QdbError> {
        let candidates: Vec<usize> = self
            .table
            .shard(i)
            .replicas()
            .iter()
            .map(|rep| rep.device)
            .chain(self.rebuilt[i].iter().map(|&(d, _)| d))
            .filter(|d| !exclude.contains(d))
            .collect();
        let mut last: Option<QdbError> = None;
        for device in candidates {
            if self.cluster.device(device).is_down() {
                self.health[device].down = true;
                continue;
            }
            match self.direct_execute(i, device, q) {
                Ok((ids, time, spent)) => {
                    self.note_success(device);
                    return Ok((ids, time, device, spent));
                }
                Err(e) => {
                    self.note_failure(device);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| QdbError::DeviceFault {
            what: format!("shard {i}: no healthy replica to fail over to"),
            transient: false,
            attempts: 1,
            device: Some(self.table.shard(i).primary_device()),
        }))
    }

    /// Restores each shard's replication after device loss: a shard with
    /// fewer live copies than the table's replication factor is
    /// re-materialized from its pristine host columns onto the next
    /// healthy device not already holding a copy, charged as a real
    /// host→device bulk transfer. Rebuilt copies serve *subsequent*
    /// submissions and failovers — queries already resolved this drain
    /// are not retroactively saved, which is what keeps an `r = 1` loss
    /// loud instead of silently absorbed.
    fn rebuild_lost_shards(&mut self) -> usize {
        let d = self.cluster.num_devices();
        let mut rebuilds = 0usize;
        for i in 0..self.table.num_shards() {
            let shard = self.table.shard(i);
            if shard.host().is_empty() {
                continue;
            }
            let mut live: Vec<usize> = shard
                .replicas()
                .iter()
                .map(|rep| rep.device)
                .chain(self.rebuilt[i].iter().map(|&(dv, _)| dv))
                .filter(|&dv| !self.cluster.device(dv).is_down())
                .collect();
            while live.len() < self.table.replication() {
                let target = (0..d)
                    .map(|o| (i + o) % d)
                    .find(|&dv| !self.cluster.device(dv).is_down() && !live.contains(&dv));
                let Some(target) = target else { break };
                let gpu = GpuTweetTable::upload_with_capacity(
                    self.cluster.device(target),
                    &shard.host(),
                    shard.cap_rows,
                );
                let label = format!("rebuild:shard{i}");
                if retry_transfer(
                    self.cluster,
                    usize::MAX,
                    target,
                    shard.host().len() * ROW_BYTES,
                    &label,
                    self.max_retries,
                    &mut 0,
                )
                .is_err()
                {
                    break;
                }
                self.rebuilt[i].push((target, gpu));
                rebuilds += 1;
                live.push(target);
            }
        }
        rebuilds
    }

    /// Number of queries admitted and not yet drained.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains every replica server, resolves each query's per-shard
    /// outcome — failing over to a healthy replica where the routed
    /// device failed or died mid-drain — gathers delegates over the
    /// interconnect, merges on the first healthy device, updates the
    /// breaker ledger and rebuilds lost partitions for subsequent
    /// submissions.
    pub fn drain(&mut self) -> ShardedLoadReport {
        self.discard_stale_rebuilds();
        let replica_reports: Vec<Vec<LoadReport>> = self
            .servers
            .iter_mut()
            .map(|reps| reps.iter_mut().map(|s| s.drain()).collect())
            .collect();
        let by_ticket: Vec<Vec<HashMap<usize, usize>>> = replica_reports
            .iter()
            .map(|reps| {
                reps.iter()
                    .map(|r| {
                        r.queries
                            .iter()
                            .enumerate()
                            .map(|(idx, sq)| (sq.ticket.0, idx))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let trips_before: usize = self.health.iter().map(|h| h.trips).sum();
        let merge_dev = first_healthy_from(self.cluster, 0);
        let fallback_dev = merge_dev.unwrap_or(0);
        let mut failovers_total = 0usize;
        let pending = std::mem::take(&mut self.pending);
        let mut queries = Vec::with_capacity(pending.len());
        for PendingQuery {
            ticket,
            sql,
            q,
            routes,
            cached,
        } in pending
        {
            if let Some(ids) = cached {
                // resolved from the epoch-tagged cache at submission:
                // no sub-queries ran, nothing shipped, zero latency
                queries.push(ShardedServed {
                    ticket,
                    sql,
                    ids,
                    latency: SimTime::ZERO,
                    error: None,
                    degrade: DegradeLevel::None,
                    retries: 0,
                    transfer_retries: 0,
                    failovers: 0,
                    cached: true,
                });
                continue;
            }
            let mut per_shard: Vec<Vec<u32>> = Vec::with_capacity(routes.len());
            let mut local = Vec::with_capacity(routes.len());
            let mut serving = Vec::with_capacity(routes.len());
            let mut error: Option<QdbError> = None;
            let mut degrade = DegradeLevel::None;
            let mut retries = 0usize;
            let mut transfer_retries = 0usize;
            let mut failovers = 0usize;
            // resolve each shard; a helper closure shape keeps the three
            // failure paths (queued error, stranded result, direct miss)
            // funneling through the same failover
            for (i, route) in routes.iter().enumerate() {
                let mut push_shard = |ids: Vec<u32>, time: SimTime, dev: usize| {
                    per_shard.push(ids);
                    local.push(time);
                    serving.push(dev);
                };
                match route {
                    ShardRoute::Empty => push_shard(Vec::new(), SimTime::ZERO, fallback_dev),
                    ShardRoute::Dead { device } => {
                        error.get_or_insert_with(|| QdbError::DeviceFault {
                            what: format!("shard {i}: no healthy replica to serve from"),
                            transient: false,
                            attempts: 1,
                            device: Some(*device),
                        });
                        push_shard(Vec::new(), SimTime::ZERO, fallback_dev);
                    }
                    ShardRoute::Direct { device } => match self.direct_execute(i, *device, &q) {
                        Ok((ids, time, spent)) => {
                            retries += spent;
                            push_shard(ids, time, *device);
                            self.note_success(*device);
                        }
                        Err(e) => {
                            self.note_failure(*device);
                            match self.failover(i, &q, &[*device]) {
                                Ok((ids, time, dev, spent)) => {
                                    failovers += 1;
                                    retries += spent;
                                    push_shard(ids, time, dev);
                                }
                                Err(_) => {
                                    error.get_or_insert(e);
                                    push_shard(Vec::new(), SimTime::ZERO, fallback_dev);
                                }
                            }
                        }
                    },
                    ShardRoute::Queued { replica, ticket: t } => {
                        let device = self.table.shard(i).replicas()[*replica].device;
                        let served =
                            &replica_reports[i][*replica].queries[by_ticket[i][*replica][&t.0]];
                        retries += served.retries;
                        degrade = degrade.max(served.degrade);
                        let stranded =
                            served.error.is_none() && self.cluster.device(device).is_down();
                        if let Some(e) = &served.error {
                            let e = attribute_device(e.clone(), device);
                            self.note_failure(device);
                            // a deadline miss is final — re-running it
                            // elsewhere would answer after the deadline
                            let worth = matches!(e, QdbError::DeviceFault { .. });
                            let rescued = worth
                                .then(|| self.failover(i, &q, &[device]).ok())
                                .flatten();
                            match rescued {
                                Some((ids, time, dev, spent)) => {
                                    failovers += 1;
                                    retries += spent;
                                    push_shard(ids, time, dev);
                                }
                                None => {
                                    // a failed shard with no healthy copy
                                    // fails the whole query: no silent
                                    // truncation to the surviving shards
                                    error.get_or_insert(e);
                                    push_shard(Vec::new(), SimTime::ZERO, fallback_dev);
                                }
                            }
                        } else if stranded {
                            // the device answered but died before its
                            // delegates could ship: the result is lost
                            // with it — re-serve from a healthy replica
                            self.note_failure(device);
                            match self.failover(i, &q, &[device]) {
                                Ok((ids, time, dev, spent)) => {
                                    failovers += 1;
                                    retries += spent;
                                    push_shard(ids, time, dev);
                                }
                                Err(e) => {
                                    error.get_or_insert(e);
                                    push_shard(Vec::new(), SimTime::ZERO, fallback_dev);
                                }
                            }
                        } else {
                            push_shard(served.result.ids.clone(), served.timing.total, device);
                            self.note_success(device);
                        }
                    }
                }
            }
            failovers_total += failovers;
            let (ids, latency, err) = if let Some(e) = error {
                (Vec::new(), SimTime::ZERO, Some(e))
            } else {
                match merge_dev {
                    None => (Vec::new(), SimTime::ZERO, Some(all_devices_down(0))),
                    Some(md) => match merge_shard_ids(
                        self.cluster,
                        self.table,
                        &q,
                        per_shard,
                        &local,
                        &serving,
                        md,
                        self.max_retries,
                    ) {
                        Ok((ids, m)) => {
                            transfer_retries += m.transfer_retries;
                            (ids, m.transfer_done + m.merge_time, None)
                        }
                        Err(e) => (Vec::new(), SimTime::ZERO, Some(e)),
                    },
                }
            };
            queries.push(ShardedServed {
                ticket,
                sql,
                ids,
                latency,
                error: err,
                degrade,
                retries: retries + transfer_retries,
                transfer_retries,
                failovers,
                cached: false,
            });
        }

        // every freshly merged result is valid exactly at the current
        // epoch; the next append invalidates all of them at once
        if self.result_cache {
            let epoch = self.table.epoch();
            for sq in &queries {
                if sq.completed() && !sq.cached {
                    self.cache.insert(sq.sql.clone(), (epoch, sq.ids.clone()));
                }
            }
        }

        let mut resilience = ResilienceStats::default();
        for r in replica_reports.iter().flatten() {
            resilience.retries += r.resilience.retries;
            resilience.faults_injected += r.resilience.faults_injected;
        }
        resilience.shed = std::mem::take(&mut self.shed);
        resilience.failovers = failovers_total;
        resilience.cache_hits = std::mem::take(&mut self.cache_hits);
        resilience.cache_misses = std::mem::take(&mut self.cache_misses);
        resilience.cache_refreshes = std::mem::take(&mut self.cache_refreshes);
        for sq in &queries {
            if sq.completed() {
                resilience.completed += 1;
            } else if matches!(sq.error, Some(QdbError::Timeout { .. })) {
                resilience.timed_out += 1;
            } else {
                resilience.failed += 1;
            }
            // shard-level retries are already summed via the per-device
            // ledgers; only the transfer/merge share is new information
            resilience.retries += sq.transfer_retries;
            match sq.degrade {
                DegradeLevel::SerialBitonic => resilience.degraded_serial += 1,
                DegradeLevel::CpuHeap => resilience.degraded_cpu += 1,
                DegradeLevel::None => {}
            }
        }
        let makespan = queries
            .iter()
            .filter(|q| q.completed())
            .map(|q| q.latency)
            .fold(SimTime::ZERO, |a, b| if b.0 > a.0 { b } else { a });

        // advance the simulated clock the breaker cooldown runs on: the
        // slowest of the per-replica drains and this drain's merges
        let mut advance = makespan;
        for r in replica_reports.iter().flatten() {
            if r.makespan.0 > advance.0 {
                advance = r.makespan;
            }
        }
        self.sim_now += advance;

        // restore replication for what this drain revealed as lost
        resilience.rebuilds = self.rebuild_lost_shards();
        resilience.breaker_trips =
            self.health.iter().map(|h| h.trips).sum::<usize>() - trips_before;
        // the report's health snapshot reflects losses this drain saw,
        // not just the ones the next submission would discover
        for (d, h) in self.health.iter_mut().enumerate() {
            if self.cluster.device(d).is_down() {
                h.down = true;
            }
        }

        let shard_reports: Vec<LoadReport> = replica_reports.into_iter().flatten().collect();
        ShardedLoadReport {
            queries,
            resilience,
            shard_reports,
            makespan,
            health: self.health.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dist::{Distribution, Uniform};
    use simt::topology::ClusterSpec;
    use simt::{Device, FaultPlan};

    fn keyed(dist: &Uniform, n: usize, seed: u64) -> Vec<Kv<f32>> {
        dist.generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, k)| Kv::new(k, i as u32))
            .collect()
    }

    fn partition_items<T: Clone>(
        items: &[T],
        shards: usize,
        policy: PartitionPolicy,
    ) -> Vec<Vec<T>> {
        partition_indices(items.len(), shards, policy)
            .into_iter()
            .map(|rows| rows.into_iter().map(|r| items[r].clone()).collect())
            .collect()
    }

    #[test]
    fn partitions_cover_every_row_exactly_once() {
        for policy in PartitionPolicy::all() {
            for shards in [1usize, 2, 4, 8] {
                let parts = partition_indices(1000, shards, policy);
                assert_eq!(parts.len(), shards);
                let mut seen = vec![false; 1000];
                for p in &parts {
                    for &r in p {
                        assert!(!seen[r], "{}: row {r} twice", policy.name());
                        seen[r] = true;
                    }
                    // row order preserved → shard id columns stay sorted
                    assert!(p.windows(2).all(|w| w[0] < w[1]));
                }
                assert!(seen.iter().all(|&s| s), "{}", policy.name());
                // no pathological imbalance (hash/rr are near-even; range
                // is exactly even)
                let max = parts.iter().map(Vec::len).max().unwrap();
                let min = parts.iter().map(Vec::len).min().unwrap();
                assert!(max - min <= 200, "{}: {max} vs {min}", policy.name());
            }
        }
    }

    #[test]
    fn sharded_topk_is_bit_identical_to_single_device() {
        let n = 1 << 12;
        let k = 64;
        let items = keyed(&Uniform, n, 77);
        // single-device oracle
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        for policy in PartitionPolicy::all() {
            for devices in [1usize, 2, 4, 8] {
                let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
                let parts = partition_items(&items, devices, policy);
                let r = sharded_topk(&cluster, &parts, k, BitonicConfig::default(), 2).unwrap();
                assert_eq!(r.items, oracle, "{} x {devices} devices", policy.name());
                assert!(r.sim_time.0 > 0.0);
                if devices > 1 {
                    assert!(r.candidate_bytes > 0);
                    assert!(r.transfer_done.0 > 0.0);
                }
            }
        }
    }

    #[test]
    fn sharded_delegate_topk_is_bit_identical_to_single_device() {
        let n = 1 << 14;
        let k = 64;
        let items = keyed(&Uniform, n, 78);
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        // small subranges so the per-shard threshold actually prunes at
        // this n
        let cfg = DelegateConfig {
            subrange: 256,
            ..DelegateConfig::default()
        };
        for devices in [1usize, 2, 4, 8] {
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let parts = partition_items(&items, devices, PartitionPolicy::RoundRobin);
            let r = sharded_delegate_topk(&cluster, &parts, k, cfg, 2).unwrap();
            assert_eq!(r.items, oracle, "{devices} devices");
            assert!(r.sim_time.0 > 0.0);
            if devices > 1 {
                assert!(r.candidate_bytes > 0);
            }
        }
    }

    #[test]
    fn sharded_topk_exact_on_duplicate_heavy_keys() {
        // 4 distinct keys over 2^10 rows: ties everywhere; the id
        // tie-break is what keeps shardings bit-identical
        let n = 1 << 10;
        let k = 32;
        let items: Vec<Kv<f32>> = (0..n).map(|i| Kv::new((i % 4) as f32, i as u32)).collect();
        let dev = Device::titan_x();
        let buf = dev.upload(&items);
        let oracle = bitonic_topk(&dev, &buf, k, BitonicConfig::default())
            .unwrap()
            .items;
        // the oracle itself must be the smallest ids of the max key
        assert!(oracle.iter().all(|kv| kv.key == 3.0));
        let ids: Vec<u32> = oracle.iter().map(|kv| kv.value).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascend on ties");
        for policy in PartitionPolicy::all() {
            let cluster = Cluster::new(ClusterSpec::pcie_node(4));
            let parts = partition_items(&items, 4, policy);
            let r = sharded_topk(&cluster, &parts, k, BitonicConfig::default(), 2).unwrap();
            assert_eq!(r.items, oracle, "{}", policy.name());
        }
    }

    #[test]
    fn sharded_timing_is_deterministic_and_scales_down() {
        let n = 1 << 14;
        let items = keyed(&Uniform, n, 5);
        let run = |devices: usize| {
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let parts = partition_items(&items, devices, PartitionPolicy::Range);
            sharded_topk(&cluster, &parts, 32, BitonicConfig::default(), 2).unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.items, b.items);
        // local work shrinks with more devices
        let one = run(1);
        let eight = run(8);
        let max_local_1 = one.local.iter().map(|t| t.0).fold(0.0, f64::max);
        let max_local_8 = eight.local.iter().map(|t| t.0).fold(0.0, f64::max);
        assert!(max_local_8 < max_local_1);
    }

    #[test]
    fn execute_sharded_matches_unsharded_bit_for_bit() {
        let host = TweetTable::generate(20_000, 42);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 25"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 16"
                .to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' \
             ORDER BY retweet_count DESC LIMIT 40"
                .to_string(),
        ];
        for sql in &sqls {
            let q = parse(sql).unwrap();
            let oracle = execute(&dev, &gpu, &q, Strategy::StageBitonic).unwrap().ids;
            for policy in PartitionPolicy::all() {
                for devices in [1usize, 2, 4] {
                    let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
                    let table = ShardedTable::partition(&cluster, &host, policy).unwrap();
                    let r =
                        execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
                    assert_eq!(r.ids, oracle, "{sql} via {} x {devices}", policy.name());
                    assert!(r.sim_time.0 > 0.0);
                }
            }
        }
    }

    #[test]
    fn group_by_is_rejected_on_the_sharded_path() {
        let host = TweetTable::generate(2_000, 7);
        let cluster = Cluster::new(ClusterSpec::pcie_node(2));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        let q =
            parse("SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5")
                .unwrap();
        assert!(matches!(
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        assert!(matches!(
            server.submit(
                "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5"
            ),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
    }

    #[test]
    fn sharded_server_serves_oracle_exact_results() {
        let host = TweetTable::generate(16_000, 9);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 10"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8"
                .to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 6".to_string(),
        ];
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &gpu, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash).unwrap();
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        let tickets: Vec<ShardedTicket> = sqls.iter().map(|s| server.submit(s).unwrap()).collect();
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());
        for (i, t) in tickets.iter().enumerate() {
            let sq = &report.queries[t.0];
            assert!(sq.completed(), "{}: {:?}", sq.sql, sq.error);
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
            assert!(sq.latency.0 > 0.0);
        }
        assert_eq!(report.resilience.completed, sqls.len());
        assert_eq!(report.resilience.shed, 0);
        assert_eq!(report.resilience.retries, 0);
        assert!(report.makespan.0 > 0.0);
        assert_eq!(report.shard_reports.len(), 4);
    }

    #[test]
    fn replicated_partition_places_ring_copies_and_stays_bit_identical() {
        let host = TweetTable::generate(8_000, 31);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 12").unwrap();
        let oracle = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(4));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash).unwrap();
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2)
                .unwrap()
                .ids
        };
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated(
            &cluster,
            &host,
            PartitionPolicy::Hash,
            ReplicationFactor(2),
        )
        .unwrap();
        assert_eq!(table.replication(), 2);
        for i in 0..4 {
            let devs: Vec<usize> = table.shard(i).replicas().iter().map(|r| r.device).collect();
            assert_eq!(devs, vec![i, (i + 1) % 4], "ring placement for shard {i}");
        }
        // replica copies are charged as real device-to-device transfers
        let labels: Vec<String> = cluster
            .transfers()
            .iter()
            .map(|t| t.label.clone())
            .collect();
        assert!(
            labels.iter().any(|l| l == "replicate:shard0->dev1"),
            "{labels:?}"
        );
        // the healthy read path serves from primaries: bit-identical to r=1
        let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
        assert_eq!(r.ids, oracle);
        // the factor clamps to the cluster size and never goes below one
        assert_eq!(ReplicationFactor(9).effective(4), 4);
        assert_eq!(ReplicationFactor(0).effective(4), 1);
    }

    #[test]
    fn replicated_reads_survive_permanent_device_loss() {
        let host = TweetTable::generate(8_000, 33);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10").unwrap();
        let oracle = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(4));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2)
                .unwrap()
                .ids
        };
        // r = 2: losing a device leaves every shard a healthy copy
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated(
            &cluster,
            &host,
            PartitionPolicy::Range,
            ReplicationFactor(2),
        )
        .unwrap();
        cluster.device(1).mark_down();
        let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
        assert_eq!(r.ids, oracle, "failover reads are bit-identical");
        // r = 1: the loss is loud, typed and attributed — never truncated
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        cluster.device(1).mark_down();
        let err = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap_err();
        match err {
            QdbError::DeviceFault {
                transient, device, ..
            } => {
                assert!(!transient, "device loss must not be retried");
                assert_eq!(device, Some(1));
            }
            other => panic!("expected a typed device fault, got {other:?}"),
        }
    }

    #[test]
    fn breaker_state_machine_trips_probes_and_recloses() {
        let host = TweetTable::generate(1_000, 3);
        let cluster = Cluster::new(ClusterSpec::pcie_node(2));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        assert!(server.device_routable(1));
        for _ in 0..BREAKER_THRESHOLD {
            server.note_failure(1);
        }
        assert!(matches!(
            server.health()[1].state,
            BreakerState::Open { .. }
        ));
        assert_eq!(server.health()[1].trips, 1);
        assert!(!server.device_routable(1), "open breaker refuses routing");
        // the cooldown elapses on the simulated clock: the next routing
        // check admits a half-open probe
        server.sim_now += BREAKER_COOLDOWN;
        assert!(server.device_routable(1));
        assert_eq!(server.health()[1].state.name(), "half-open");
        // a failed probe re-opens immediately; a served one recloses
        server.note_failure(1);
        assert!(matches!(
            server.health()[1].state,
            BreakerState::Open { .. }
        ));
        assert_eq!(server.health()[1].trips, 2);
        server.sim_now += BREAKER_COOLDOWN;
        assert!(server.device_routable(1));
        server.note_success(1);
        assert_eq!(server.health()[1].state.name(), "closed");
        assert_eq!(server.health()[1].consecutive_failures, 0);
    }

    #[test]
    fn sharded_server_fails_over_and_rebuilds_after_mid_load_device_loss() {
        let host = TweetTable::generate(12_000, 17);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 9"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 7"
                .to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 5".to_string(),
        ];
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &gpu, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated(
            &cluster,
            &host,
            PartitionPolicy::Hash,
            ReplicationFactor(2),
        )
        .unwrap();
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        // batch A: the healthy baseline
        for s in &sqls {
            server.submit(s).unwrap();
        }
        let a = server.drain();
        assert_eq!(a.resilience.completed, sqls.len());
        assert_eq!(a.resilience.failovers, 0);
        for (i, sq) in a.queries.iter().enumerate() {
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
        }
        // device 1 dies with batch B already admitted: every query still
        // completes bit-exact by failing over to surviving replicas
        for s in &sqls {
            server.submit(s).unwrap();
        }
        cluster.device(1).mark_down();
        let b = server.drain();
        assert_eq!(
            b.resilience.completed,
            sqls.len(),
            "r=2 + one permanent loss: every query completes"
        );
        for (i, sq) in b.queries.iter().enumerate() {
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
        }
        assert!(b.resilience.failovers > 0, "mid-load loss forces failovers");
        assert!(b.resilience.rebuilds > 0, "lost copies re-materialize");
        assert!(b.health[1].down);
        assert!(cluster
            .transfers()
            .iter()
            .any(|t| t.label.starts_with("rebuild:shard")));
        // batch C routes around the dead device and onto rebuilt copies
        for s in &sqls {
            server.submit(s).unwrap();
        }
        let c = server.drain();
        assert_eq!(c.resilience.completed, sqls.len());
        for (i, sq) in c.queries.iter().enumerate() {
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
        }
        assert_eq!(c.resilience.failovers, 0, "routing avoids the dead device");
    }

    /// The sharded result cache sits above the scatter: a warm hit
    /// launches nothing on any device in the cluster, and an append
    /// (which bumps the sharded table's epoch) invalidates it.
    #[test]
    fn sharded_cache_hits_skip_the_scatter_and_appends_invalidate() {
        let host = TweetTable::generate(12_000, 13);
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated_with_capacity(
            &cluster,
            &host,
            PartitionPolicy::Hash,
            ReplicationFactor(2),
            18_000,
        )
        .unwrap();
        let sql = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 9";
        let mut server = ShardedServer::new(
            &cluster,
            &table,
            ServerConfig {
                result_cache: true,
                ..ServerConfig::default()
            },
        );
        server.submit(sql).unwrap();
        let a = server.drain();
        assert!(a.queries[0].completed() && !a.queries[0].cached);
        assert_eq!(a.resilience.cache_misses, 1);

        let logs: Vec<usize> = (0..4).map(|i| cluster.device(i).log_len()).collect();
        server.submit(sql).unwrap();
        let b = server.drain();
        assert!(b.queries[0].cached);
        assert_eq!(b.queries[0].ids, a.queries[0].ids);
        assert_eq!(b.resilience.cache_hits, 1);
        for (i, &l) in logs.iter().enumerate() {
            assert_eq!(
                cluster.device(i).log_len(),
                l,
                "hit launches nothing on device {i}"
            );
        }

        let batch = TweetTable::generate_at(700, 3, host.len() as u32);
        table.append_batch(&cluster, &batch).unwrap();
        server.submit(sql).unwrap();
        let c = server.drain();
        assert!(!c.queries[0].cached, "the append invalidated the entry");
        assert_eq!(c.resilience.cache_refreshes, 1);
        let oracle = execute_sharded(
            &cluster,
            &table,
            &parse(sql).unwrap(),
            Strategy::StageBitonic,
            2,
        )
        .unwrap();
        assert_eq!(c.queries[0].ids, oracle.ids);
    }

    #[test]
    fn r1_loss_is_loud_typed_and_rebuilt_copies_serve_later_queries() {
        let host = TweetTable::generate(10_000, 23);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.25);
        let sqls = [
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT 8"
            ),
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 6".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 4".to_string(),
            "SELECT id FROM tweets WHERE lang='en' ORDER BY retweet_count DESC LIMIT 5".to_string(),
        ];
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &gpu, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        for s in &sqls {
            server.submit(s).unwrap();
        }
        cluster.device(1).mark_down();
        let b = server.drain();
        // every query touches the lost shard: all fail loudly — typed,
        // attributed, never truncated to the surviving shards
        assert_eq!(b.resilience.completed, 0);
        assert_eq!(b.resilience.failed, sqls.len());
        for sq in &b.queries {
            assert!(sq.ids.is_empty(), "results are never truncated");
            match &sq.error {
                Some(QdbError::DeviceFault {
                    transient, device, ..
                }) => {
                    assert!(!transient);
                    assert_eq!(*device, Some(1));
                }
                other => panic!("expected a typed device fault, got {other:?}"),
            }
        }
        // the consecutive failures tripped device 1's breaker, and the
        // lost partition was rebuilt from its pristine host copy
        assert!(b.health[1].down);
        assert!(matches!(b.health[1].state, BreakerState::Open { .. }));
        assert_eq!(b.resilience.breaker_trips, 1);
        assert_eq!(b.resilience.rebuilds, 1);
        // subsequent queries serve from the rebuilt copy, bit-exact
        for s in &sqls {
            server.submit(s).unwrap();
        }
        let c = server.drain();
        assert_eq!(c.resilience.completed, sqls.len());
        for (i, sq) in c.queries.iter().enumerate() {
            assert_eq!(sq.ids, oracle[i], "{}", sq.sql);
        }
    }

    #[test]
    fn dead_shard_fails_the_query_with_a_typed_error() {
        let host = TweetTable::generate(4_000, 13);
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        // device 2's transfers always drop: the local pass (CPU rung can
        // still answer) succeeds but the delegates never arrive
        cluster.device(2).set_fault_plan(FaultPlan {
            launch_failure_rate: 1.0,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 8").unwrap();
        let err = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 1).unwrap_err();
        assert!(
            matches!(err, QdbError::DeviceFault { .. }),
            "expected a typed device fault, got {err:?}"
        );
        cluster.device(2).clear_fault_plan();
        // with the plan cleared the same query completes
        let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 1).unwrap();
        assert_eq!(r.ids.len(), 8);
    }

    #[test]
    fn transfer_stalls_slow_the_query_but_keep_it_exact() {
        let host = TweetTable::generate(6_000, 21);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 8").unwrap();
        let clean = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(2));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
            execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap()
        };
        let stalled = {
            let cluster = Cluster::new(ClusterSpec::pcie_node(2));
            let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
            cluster.device(1).set_fault_plan(FaultPlan {
                stall_rate: 1.0,
                stall_delay: SimTime(250e-6),
                max_faults: usize::MAX,
                ..FaultPlan::with_seed(3)
            });
            let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2).unwrap();
            cluster.device(1).clear_fault_plan();
            r
        };
        assert_eq!(clean.ids, stalled.ids, "stalls must not change results");
        assert!(
            stalled.sim_time.0 > clean.sim_time.0,
            "stall must show up in modeled time: {} vs {}",
            stalled.sim_time,
            clean.sim_time
        );
    }

    #[test]
    fn render_sql_roundtrips_through_the_parser() {
        let sqls = [
            "SELECT id FROM tweets WHERE tweet_time < 120 ORDER BY retweet_count DESC LIMIT 7",
            "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'ja' ORDER BY retweet_count DESC LIMIT 3",
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 9",
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 4",
        ];
        for sql in sqls {
            let q = parse(sql).unwrap();
            let rendered = render_sql(&q, q.limit);
            let q2 = parse(&rendered).unwrap();
            assert_eq!(q, q2, "{sql} -> {rendered}");
            let clamped = parse(&render_sql(&q, 2)).unwrap();
            assert_eq!(clamped.limit, 2);
        }
    }
}
