//! Physical operators: filter, project, group-by count, and the two
//! fused top-k kernels of Section 5.

use datagen::{Kv, TopKItem};
use simt::{AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel};
use sortnet::{host, next_pow2};
use topk::bitonic::{bitonic_topk_from_runs, BitonicConfig};
use topk::TopKResult;

use crate::error::QdbError;
use crate::table::GpuTweetTable;

/// Selection predicates the Figure 16 queries use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterOp {
    /// `tweet_time < cutoff` (query Q1's time-range sweep).
    TimeLess(u32),
    /// `lang IN (…)` (query Q3).
    LangIn(Vec<u8>),
}

impl FilterOp {
    /// Bytes read per row to evaluate the predicate.
    pub fn pred_bytes(&self) -> usize {
        match self {
            FilterOp::TimeLess(_) => 4,
            FilterOp::LangIn(_) => 1,
        }
    }

    /// Evaluates the predicate against one row.
    pub fn matches(&self, table: &crate::table::GpuTweetTable, row: usize) -> bool {
        self.matches_row(table.tweet_time.get(row), table.lang.get(row))
    }

    /// Evaluates the predicate against raw column values — the
    /// backend-agnostic primitive both the device filter kernel and the
    /// CPU engine's parallel scan share.
    pub fn matches_row(&self, tweet_time: u32, lang: u8) -> bool {
        match self {
            FilterOp::TimeLess(cutoff) => tweet_time < *cutoff,
            FilterOp::LangIn(langs) => langs.contains(&lang),
        }
    }
}

/// Which operator executes the ORDER BY … LIMIT k.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKStrategy {
    /// Full radix sort then take k (MapD's default).
    Sort,
    /// The paper's bitonic top-k.
    Bitonic,
}

/// Filter kernel: scans the predicate and key columns, writes matching
/// `(key, id)` pairs to a candidate buffer.
pub(crate) struct FilterKernel<'a> {
    pub table: &'a GpuTweetTable,
    pub op: &'a FilterOp,
    pub key_col: &'a GpuBuffer<u32>,
    pub out: GpuBuffer<Kv<u32>>,
    pub out_count: GpuBuffer<u32>,
}

impl Kernel for FilterKernel<'_> {
    fn name(&self) -> &'static str {
        "qdb_filter"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "filter",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("key_col", self.key_col),
                    elems: self.table.len(),
                    write: false,
                },
                BulkAccess {
                    buf: BufferDecl::of("out", &self.out),
                    elems: self.out.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out_count", &self.out_count),
                    elems: 1,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.table.len();
        let mut matched: Vec<Kv<u32>> = Vec::new();
        for row in 0..n {
            if self.op.matches(self.table, row) {
                matched.push(Kv::new(self.key_col.get(row), self.table.id.get(row)));
            }
        }
        blk.bulk_global_read((n * (self.op.pred_bytes() + 4)) as u64);
        blk.bulk_global_write((matched.len() * Kv::<u32>::SIZE_BYTES) as u64);
        blk.bulk_ops(2 * n as u64);
        self.out_count.set(0, matched.len() as u32);
        let mut buf = self.out.to_vec();
        buf[..matched.len()].copy_from_slice(&matched);
        self.out.upload(&buf);
    }
}

/// Projection kernel: evaluates `retweet_count + 0.5·likes_count` and
/// materializes `(rank, id)` pairs (the un-fused Q2 plan).
pub(crate) struct ProjectRankKernel<'a> {
    pub table: &'a GpuTweetTable,
    pub out: GpuBuffer<Kv<f32>>,
}

impl Kernel for ProjectRankKernel<'_> {
    fn name(&self) -> &'static str {
        "qdb_project_rank"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "project",
            vec![BulkAccess {
                buf: BufferDecl::of("out", &self.out),
                elems: self.table.len(),
                write: true,
            }],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.table.len();
        let mut out = Vec::with_capacity(n);
        for row in 0..n {
            let rank = self.table.retweet_count.get(row) as f32
                + 0.5 * self.table.likes_count.get(row) as f32;
            out.push(Kv::new(rank, self.table.id.get(row)));
        }
        blk.bulk_global_read((n * 8) as u64);
        blk.bulk_global_write((n * Kv::<f32>::SIZE_BYTES) as u64);
        blk.bulk_ops(3 * n as u64);
        self.out.upload(&out);
    }
}

/// Hash group-by count over `uid` (query Q4). Shared-memory hash tables
/// with atomic increments, spilled per block and merged — charged as one
/// column read, per-row atomics, and the group write-out.
pub(crate) struct GroupCountKernel<'a> {
    pub table: &'a GpuTweetTable,
    pub out: GpuBuffer<Kv<u32>>,
    pub out_count: GpuBuffer<u32>,
}

impl Kernel for GroupCountKernel<'_> {
    fn name(&self) -> &'static str {
        "qdb_group_count"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "group",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("out", &self.out),
                    elems: self.out.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out_count", &self.out_count),
                    elems: 1,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.table.len();
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for row in 0..n {
            *counts.entry(self.table.uid.get(row)).or_insert(0) += 1;
        }
        let groups: Vec<Kv<u32>> = counts.iter().map(|(&uid, &c)| Kv::new(c, uid)).collect();
        blk.bulk_global_read((n * 4) as u64);
        blk.bulk_atomics(n as u64);
        blk.bulk_global_write((groups.len() * 8) as u64);
        blk.bulk_ops(4 * n as u64);
        self.out_count.set(0, groups.len() as u32);
        let mut buf = self.out.to_vec();
        buf[..groups.len()].copy_from_slice(&groups);
        self.out.upload(&buf);
    }
}

/// The FusedSortReducer of Section 5: one kernel that streams the columns,
/// applies the filter (or evaluates the ranking function) as a
/// buffer-filler, and runs the SortReducer stage on the fly — emitting
/// bitonic runs of `k` at 1/16th of the matched size without ever
/// materializing the filtered pairs in global memory.
pub(crate) struct FusedSortReducerKernel<'a, T: TopKItem> {
    pub pred_bytes: usize,
    pub key_bytes: usize,
    pub n_rows: usize,
    /// Host-computed matched items (the filter/projection output).
    pub matched: Vec<T>,
    pub k_eff: usize,
    pub out_runs: GpuBuffer<T>,
    pub out_valid: GpuBuffer<u32>,
    pub _table: &'a GpuTweetTable,
}

impl<T: TopKItem> FusedSortReducerKernel<'_, T> {
    const SEG: usize = 4096;
    const MERGES: usize = 4; // 16× reduction, B = 16
}

impl<T: TopKItem> Kernel for FusedSortReducerKernel<'_, T> {
    fn name(&self) -> &'static str {
        "qdb_fused_sort_reducer"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        Self::SEG / 16 * 17 * T::SIZE_BYTES // padded staging buffer
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        Some(AccessSpec::bulk(
            "fused",
            vec![
                BulkAccess {
                    buf: BufferDecl::of("out_runs", &self.out_runs),
                    elems: self.out_runs.len(),
                    write: true,
                },
                BulkAccess {
                    buf: BufferDecl::of("out_valid", &self.out_valid),
                    elems: 1,
                    write: true,
                },
            ],
        ))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let k_eff = self.k_eff;
        let m = self.matched.len();
        // pad to whole segments with MIN sentinels (the paper pads the
        // buffer so sentinels never reach the top-k)
        let seg = Self::SEG.max(2 * k_eff);
        let padded = next_pow2(m.max(seg));
        let mut buf: Vec<T> = Vec::with_capacity(padded);
        buf.extend_from_slice(&self.matched);
        buf.resize(padded, T::min_sentinel());

        // SortReducer phases on the buffer (functional; host network ops)
        let merges = Self::MERGES.min(sortnet::log2(padded / k_eff) as usize);
        host::local_sort(&mut buf, k_eff);
        let mut len = buf.len();
        for mi in 0..merges {
            let mut half = vec![T::min_sentinel(); len / 2];
            host::merge_halve(&buf[..len], k_eff, &mut half);
            len /= 2;
            buf[..len].copy_from_slice(&half);
            if mi + 1 < merges {
                host::rebuild(&mut buf[..len], k_eff);
            }
        }

        // traffic: stream all columns once; write the 1/16 reduction;
        // shared cost = filter staging + the SortReducer pipeline factor
        blk.bulk_global_read((self.n_rows * (self.pred_bytes + self.key_bytes)) as u64);
        blk.bulk_global_write((len * T::SIZE_BYTES) as u64);
        let factor = topk_costmodel::shared_traffic_factor(k_eff, 16, merges, true);
        blk.bulk_shared((2.0 * self.n_rows as f64 * 4.0) as u64); // buffer filling
        blk.bulk_shared((factor * (m.max(1) * T::SIZE_BYTES) as f64) as u64);
        blk.bulk_ops((6 * self.n_rows) as u64);

        self.out_valid.set(0, len as u32);
        let mut out = self.out_runs.to_vec();
        out[..len].copy_from_slice(&buf[..len]);
        self.out_runs.upload(&out);
    }
}

/// Runs the order-by/limit stage on materialized candidates.
pub(crate) fn run_topk_stage<T: TopKItem>(
    dev: &Device,
    candidates: &GpuBuffer<T>,
    valid: usize,
    k: usize,
    strategy: TopKStrategy,
) -> Result<TopKResult<T>, QdbError> {
    // slice the valid prefix into its own buffer (device-side view)
    let view = dev.try_upload(&candidates.read_range(0..valid.max(1)))?;
    let r = match strategy {
        TopKStrategy::Sort => topk::sort::sort_topk(dev, &view, k),
        TopKStrategy::Bitonic => {
            topk::bitonic::bitonic_topk(dev, &view, k, BitonicConfig::default())
        }
    };
    r.map_err(QdbError::from)
}

/// Runs a fused filter/project + bitonic top-k: the FusedSortReducer
/// kernel followed by the BitonicReducer continuation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fused_topk<T: TopKItem>(
    dev: &Device,
    table: &GpuTweetTable,
    pred_bytes: usize,
    key_bytes: usize,
    matched: Vec<T>,
    k: usize,
) -> Result<TopKResult<T>, QdbError> {
    let k_eff = next_pow2(k.min(matched.len()).max(1));
    let padded = next_pow2(matched.len().max(4096.max(2 * k_eff)));
    let out_runs = dev.try_alloc_filled::<T>(padded, T::min_sentinel())?;
    let out_valid = dev.try_alloc::<u32>(1)?;
    let n_rows = table.len();
    dev.launch(&FusedSortReducerKernel {
        pred_bytes,
        key_bytes,
        n_rows,
        matched,
        k_eff,
        out_runs: out_runs.clone(),
        out_valid: out_valid.clone(),
        _table: table,
    })?;
    let valid = out_valid.get(0) as usize;
    bitonic_topk_from_runs(dev, &out_runs, valid, k, BitonicConfig::default()).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::twitter::TweetTable;

    fn setup(n: usize) -> (Device, TweetTable, GpuTweetTable) {
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 7);
        let gpu = GpuTweetTable::upload(&dev, &host);
        (dev, host, gpu)
    }

    #[test]
    fn filter_kernel_selects_matching_rows() {
        let (dev, host, gpu) = setup(10_000);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let out = dev.alloc::<Kv<u32>>(10_000);
        let cnt = dev.alloc::<u32>(1);
        dev.launch(&FilterKernel {
            table: &gpu,
            op: &FilterOp::TimeLess(cutoff),
            key_col: &gpu.retweet_count,
            out: out.clone(),
            out_count: cnt.clone(),
        })
        .unwrap();
        let m = cnt.get(0) as usize;
        let expect = host.tweet_time.iter().filter(|&&t| t < cutoff).count();
        assert_eq!(m, expect);
        // every output row actually satisfies the predicate
        for item in out.read_range(0..m) {
            assert!(host.tweet_time[item.value as usize] < cutoff);
            assert_eq!(host.retweet_count[item.value as usize], item.key);
        }
    }

    #[test]
    fn lang_filter_selectivity() {
        let (dev, host, gpu) = setup(20_000);
        let out = dev.alloc::<Kv<u32>>(20_000);
        let cnt = dev.alloc::<u32>(1);
        dev.launch(&FilterKernel {
            table: &gpu,
            op: &FilterOp::LangIn(vec![0, 1]),
            key_col: &gpu.retweet_count,
            out,
            out_count: cnt.clone(),
        })
        .unwrap();
        let sel = cnt.get(0) as f64 / host.len() as f64;
        assert!((0.75..0.85).contains(&sel), "en+es selectivity {sel}");
    }

    #[test]
    fn project_rank_formula() {
        let (dev, host, gpu) = setup(5_000);
        let out = dev.alloc::<Kv<f32>>(5_000);
        dev.launch(&ProjectRankKernel {
            table: &gpu,
            out: out.clone(),
        })
        .unwrap();
        let v = out.to_vec();
        for i in [0usize, 17, 4999] {
            let expect = host.retweet_count[i] as f32 + 0.5 * host.likes_count[i] as f32;
            assert_eq!(v[i].key, expect);
            assert_eq!(v[i].value, i as u32);
        }
    }

    #[test]
    fn group_count_totals() {
        let (dev, host, gpu) = setup(30_000);
        let out = dev.alloc::<Kv<u32>>(30_000);
        let cnt = dev.alloc::<u32>(1);
        dev.launch(&GroupCountKernel {
            table: &gpu,
            out: out.clone(),
            out_count: cnt.clone(),
        })
        .unwrap();
        let g = cnt.get(0) as usize;
        let groups = out.read_range(0..g);
        let total: u64 = groups.iter().map(|kv| kv.key as u64).sum();
        assert_eq!(total, host.len() as u64, "counts must sum to row count");
        let mut uids: Vec<u32> = groups.iter().map(|kv| kv.value).collect();
        uids.sort_unstable();
        uids.dedup();
        assert_eq!(uids.len(), g, "group uids must be distinct");
    }

    #[test]
    fn fused_topk_matches_unfused() {
        let (dev, host, gpu) = setup(50_000);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let op = FilterOp::TimeLess(cutoff);
        let matched: Vec<Kv<u32>> = (0..host.len())
            .filter(|&r| host.tweet_time[r] < cutoff)
            .map(|r| Kv::new(host.retweet_count[r], r as u32))
            .collect();
        let fused = run_fused_topk(&dev, &gpu, op.pred_bytes(), 4, matched.clone(), 50).unwrap();
        let view = dev.upload(&matched);
        let unfused = topk::sort::sort_topk(&dev, &view, 50).unwrap();
        let fk: Vec<u32> = fused.items.iter().map(|x| x.key).collect();
        let uk: Vec<u32> = unfused.items.iter().map(|x| x.key).collect();
        assert_eq!(fk, uk);
    }

    #[test]
    fn fused_is_cheaper_than_filter_plus_topk_traffic() {
        // Section 5: fusion saves writing + re-reading the filtered pairs
        let (dev, host, gpu) = setup(1 << 17);
        let cutoff = host.time_cutoff_for_selectivity(1.0);
        let matched: Vec<Kv<u32>> = (0..host.len())
            .map(|r| Kv::new(host.retweet_count[r], r as u32))
            .collect();

        let log0 = dev.log_len();
        let _ = run_fused_topk(&dev, &gpu, 4, 4, matched.clone(), 50).unwrap();
        let fused_bytes: u64 = dev
            .log_since(log0)
            .iter()
            .map(|r| r.stats.global_bytes())
            .sum();

        // unfused: filter writes pairs, top-k reads them again
        let out = dev.alloc::<Kv<u32>>(1 << 17);
        let cnt = dev.alloc::<u32>(1);
        let log1 = dev.log_len();
        dev.launch(&FilterKernel {
            table: &gpu,
            op: &FilterOp::TimeLess(cutoff),
            key_col: &gpu.retweet_count,
            out: out.clone(),
            out_count: cnt.clone(),
        })
        .unwrap();
        let r = run_topk_stage(&dev, &out, cnt.get(0) as usize, 50, TopKStrategy::Bitonic).unwrap();
        let unfused_bytes: u64 = dev
            .log_since(log1)
            .iter()
            .map(|x| x.stats.global_bytes())
            .sum::<u64>()
            .max(r.global_bytes());

        assert!(
            fused_bytes * 10 < unfused_bytes * 9,
            "fusion should save ≥10% of global traffic: fused={fused_bytes} unfused={unfused_bytes}"
        );
    }
}
