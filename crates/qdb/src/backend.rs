//! Backend-parameterized query execution: the same SQL surface on the
//! simulator or on real CPU cores.
//!
//! [`execute_on`] is the backend-generic twin of [`crate::sql::execute`]:
//! hand it an [`ExecBackend`] and a matching [`BackendTable`] and it
//! routes to the simulated engine (modeled `sim` metrics, bit-exact) or
//! the multi-threaded CPU engine (wall-clock).
//! Simulator-only features degrade with typed errors:
//! [`explain_sanitize_on`] returns [`QdbError::UnsupportedOnBackend`] on
//! the CPU backend instead of pretending to sanitize anything.

use std::time::{Duration, Instant};

use simt::SimTime;
use topk::{Backend, BackendKind, ExecBackend, TopKError};

use crate::cpu_engine::execute_cpu;
use crate::error::QdbError;
use crate::queries::Strategy;
use crate::sql::{execute, explain_lint, explain_sanitize, LintedQuery, Query, SanitizedQuery};
use crate::table::BackendTable;

/// A query outcome from either backend: ranked ids plus the cost in the
/// executing backend's native currency.
#[derive(Debug, Clone)]
pub struct BackendQueryResult {
    /// Result tweet ids (or uids for group queries), ranked.
    pub ids: Vec<u32>,
    /// The backend that executed.
    pub backend: BackendKind,
    /// Real elapsed host time for the call (on the simulator this prices
    /// the simulation itself, not the modeled device).
    pub host_wall: Duration,
    /// Total modeled kernel time — `Some` exactly on the simulator,
    /// bit-exact across runs.
    pub sim_time: Option<SimTime>,
    /// Per-stage breakdown in milliseconds: modeled kernel time on the
    /// simulator, wall-clock on the CPU.
    pub stages: Vec<(String, f64)>,
}

/// Rejects a table resident on the other backend.
fn expect_table(be: &ExecBackend<'_>, table: &BackendTable) -> Result<(), QdbError> {
    if be.kind() == table.kind() {
        Ok(())
    } else {
        Err(TopKError::BackendMismatch {
            backend: be.kind().name(),
            buffer: table.kind().name(),
        }
        .into())
    }
}

/// Executes a parsed query on the given backend against a resident table.
///
/// The two engines return the same winners (key-signature identical, ties
/// broken by row id); only the currency of the cost report differs.
pub fn execute_on(
    be: &ExecBackend<'_>,
    table: &BackendTable,
    q: &Query,
    strategy: Strategy,
) -> Result<BackendQueryResult, QdbError> {
    expect_table(be, table)?;
    let start = Instant::now();
    match be {
        ExecBackend::Simt(b) => {
            let t = table.as_simt().expect("kind checked above");
            let r = execute(b.device(), t, q, strategy)?;
            Ok(BackendQueryResult {
                ids: r.ids,
                backend: BackendKind::Simt,
                host_wall: start.elapsed(),
                sim_time: Some(r.kernel_time),
                stages: r
                    .breakdown
                    .into_iter()
                    .map(|(name, t)| (name, t.seconds() * 1e3))
                    .collect(),
            })
        }
        ExecBackend::Cpu(b) => {
            let t = table.as_cpu().expect("kind checked above");
            let out = execute_cpu(&t.rows(), q, strategy, b.threads())?;
            Ok(BackendQueryResult {
                ids: out.ids,
                backend: BackendKind::Cpu,
                host_wall: start.elapsed(),
                sim_time: None,
                stages: out.stages,
            })
        }
    }
}

/// `EXPLAIN SANITIZE` on a backend: runs with the device sanitizer on the
/// simulator; on the CPU there is no sanitizer to enable, so the request
/// fails with the typed [`QdbError::UnsupportedOnBackend`] rather than
/// silently returning an empty report.
pub fn explain_sanitize_on(
    be: &ExecBackend<'_>,
    table: &BackendTable,
    q: &Query,
    strategy: Strategy,
) -> Result<SanitizedQuery, QdbError> {
    expect_table(be, table)?;
    match be {
        ExecBackend::Simt(b) => explain_sanitize(
            b.device(),
            table.as_simt().expect("kind checked above"),
            q,
            strategy,
        ),
        ExecBackend::Cpu(_) => Err(QdbError::UnsupportedOnBackend {
            backend: "cpu",
            feature: "EXPLAIN SANITIZE (the device sanitizer)",
        }),
    }
}

/// `EXPLAIN LINT` on a backend: statically analyzes every launch plan on
/// the simulator; the CPU backend launches no kernels, so there is
/// nothing to lint and the request fails with the typed
/// [`QdbError::UnsupportedOnBackend`].
pub fn explain_lint_on(
    be: &ExecBackend<'_>,
    table: &BackendTable,
    q: &Query,
    strategy: Strategy,
) -> Result<LintedQuery, QdbError> {
    expect_table(be, table)?;
    match be {
        ExecBackend::Simt(b) => explain_lint(
            b.device(),
            table.as_simt().expect("kind checked above"),
            q,
            strategy,
        ),
        ExecBackend::Cpu(_) => Err(QdbError::UnsupportedOnBackend {
            backend: "cpu",
            feature: "EXPLAIN LINT (static launch-plan analysis)",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use datagen::twitter::TweetTable;
    use simt::Device;

    fn keys_of(t: &TweetTable, ids: &[u32]) -> Vec<u32> {
        ids.iter().map(|&id| t.retweet_count[id as usize]).collect()
    }

    #[test]
    fn same_query_same_winners_on_both_backends() {
        let host = TweetTable::generate(20_000, 321);
        let dev = Device::titan_x();
        let simt = ExecBackend::simt(&dev);
        let cpu = ExecBackend::cpu(4);
        let sim_table = BackendTable::load(&simt, &host);
        let cpu_table = BackendTable::load(&cpu, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".into(),
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' ORDER BY retweet_count ASC LIMIT 30".into(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50".into(),
        ];
        for sql in &sqls {
            let q = parse(sql).unwrap();
            for strat in Strategy::all() {
                let a = execute_on(&simt, &sim_table, &q, strat).unwrap();
                let b = execute_on(&cpu, &cpu_table, &q, strat).unwrap();
                assert_eq!(a.ids.len(), b.ids.len(), "{sql} via {}", strat.name());
                if q.group_by_uid {
                    // group results: compare the count signature
                    let count = |ids: &[u32]| -> Vec<usize> {
                        ids.iter()
                            .map(|uid| host.uid.iter().filter(|&&u| u == *uid).count())
                            .collect()
                    };
                    assert_eq!(count(&a.ids), count(&b.ids), "{sql} via {}", strat.name());
                } else {
                    assert_eq!(
                        keys_of(&host, &a.ids),
                        keys_of(&host, &b.ids),
                        "{sql} via {}",
                        strat.name()
                    );
                }
                assert!(a.sim_time.is_some() && b.sim_time.is_none());
                assert!(!a.stages.is_empty() && !b.stages.is_empty());
            }
        }
    }

    #[test]
    fn explain_sanitize_is_typed_unsupported_on_cpu() {
        let host = TweetTable::generate(2_000, 9);
        let cpu = ExecBackend::cpu(2);
        let table = BackendTable::load(&cpu, &host);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        let err = explain_sanitize_on(&cpu, &table, &q, Strategy::StageBitonic).unwrap_err();
        assert_eq!(err.kind(), "unsupported-on-backend");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("cpu"));
        // while the simulator path still sanitizes
        let dev = Device::titan_x();
        let simt = ExecBackend::simt(&dev);
        let sim_table = BackendTable::load(&simt, &host);
        let out = explain_sanitize_on(&simt, &sim_table, &q, Strategy::StageBitonic).unwrap();
        assert!(!out.reports.is_empty());
    }

    #[test]
    fn explain_lint_is_typed_unsupported_on_cpu() {
        let host = TweetTable::generate(2_000, 9);
        let cpu = ExecBackend::cpu(2);
        let table = BackendTable::load(&cpu, &host);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        let err = explain_lint_on(&cpu, &table, &q, Strategy::StageBitonic).unwrap_err();
        assert_eq!(err.kind(), "unsupported-on-backend");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("cpu"));
        // while the simulator path still lints statically
        let dev = Device::titan_x();
        let simt = ExecBackend::simt(&dev);
        let sim_table = BackendTable::load(&simt, &host);
        let out = explain_lint_on(&simt, &sim_table, &q, Strategy::StageBitonic).unwrap();
        assert!(!out.reports.is_empty());
        assert!(out.is_clean(), "{}", out.render());
    }

    #[test]
    fn mismatched_table_is_a_typed_error() {
        let host = TweetTable::generate(1_000, 3);
        let dev = Device::titan_x();
        let simt = ExecBackend::simt(&dev);
        let cpu = ExecBackend::cpu(2);
        let cpu_table = BackendTable::load(&cpu, &host);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        let err = execute_on(&simt, &cpu_table, &q, Strategy::StageBitonic).unwrap_err();
        assert_eq!(err.kind(), "device-fault");
        assert!(err.to_string().contains("handed a cpu"));
    }
}
