//! Materialized top-k views over streaming ingest.
//!
//! A [`TopKView`] is registered for one SQL query and keeps its standing
//! result current as [`GpuTweetTable::append_batch`] splices arrival
//! batches into the table. Maintenance exploits the decomposability of
//! top-k: the winners over `old ∪ delta` are the winners over
//! `top-k(old) ∪ top-k(delta)`, so a refresh only has to scan the rows
//! that arrived since the last refresh (`O(delta)` traffic) and
//! run-merge the two candidate lists with the same bitonic reducer the
//! sharded layer uses — the standing result and the delta top-k are
//! both descending runs, padded with sentinels to a power-of-two run
//! length. The merged result is **bit-identical to a from-scratch
//! rescan** for the full-item-order strategies (`StageBitonic`,
//! `CombinedBitonic`), including row-id tie-breaks; `StageSort` carries
//! the same duplicate-key caveat as [`crate::shard::execute_sharded`].
//!
//! When the accumulated delta grows past the view's refresh fraction the
//! incremental path stops winning (the merge is cheap, but delta scans
//! approach a full scan) and the view falls back to a rescan — the
//! crossover DESIGN.md §4.6 derives. Views are backend-generic
//! ([`TopKView::refresh_on`] serves the CPU engine too) and sharded
//! ([`TopKView::refresh_sharded`]): per-shard delta scans run on any
//! healthy replica, so a standing view survives permanent device loss
//! whenever the table was partitioned with `ReplicationFactor ≥ 2`.

use std::cell::{Cell, RefCell};

use datagen::twitter::TweetTable;
use datagen::{rev_slice, Kv, Rev, TopKItem};
use simt::topology::Cluster;
use simt::{Device, SimTime};
use topk::bitonic::{bitonic_topk_from_runs, BitonicConfig};
use topk::ExecBackend;
use topk::{Backend as _, TopKError};

use crate::cpu_engine::{execute_cpu, strategy_topk};
use crate::error::QdbError;
use crate::queries::Strategy;
use crate::shard::{
    all_devices_down, execute_sharded, first_healthy_from, rank_key, ship_and_merge, ShardedTable,
};
use crate::sql::{execute, parse, OrderBy, Query, SqlError};
use crate::table::{BackendTable, CpuTweetTable, GpuTweetTable};

/// How a view refresh will (or did) bring the standing result current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// The standing result already covers the table's epoch — nothing
    /// launches.
    Current,
    /// Scan only the appended rows and bitonic-run-merge their top-k
    /// into the standing result.
    DeltaMerge,
    /// Re-execute the query over the whole table (first build, or the
    /// accumulated delta crossed the refresh threshold).
    Rescan,
}

impl ViewMode {
    /// Name used in EXPLAIN renders and ledgers.
    pub fn name(&self) -> &'static str {
        match self {
            ViewMode::Current => "current",
            ViewMode::DeltaMerge => "delta-merge",
            ViewMode::Rescan => "rescan",
        }
    }
}

/// Tuning for a materialized view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewConfig {
    /// Rescan instead of delta-merging once the accumulated delta
    /// exceeds this fraction of the rows already folded in. The merge
    /// itself is O(k), so the incremental path wins while the delta scan
    /// is small against a full scan; past roughly half the table the
    /// bookkeeping stops paying for itself.
    pub refresh_fraction: f64,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            refresh_fraction: 0.5,
        }
    }
}

/// Maintenance counters for one view — the ledger the serving loop and
/// the bench harness report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Refreshes that found the standing result already current.
    pub current_hits: usize,
    /// Incremental delta-merge refreshes.
    pub delta_merges: usize,
    /// Full rescans (including the first build).
    pub rescans: usize,
    /// Total appended rows folded in via delta merges.
    pub delta_rows_folded: usize,
}

/// The outcome of one [`TopKView`] refresh.
#[derive(Debug, Clone)]
pub struct ViewRefresh {
    /// How the result was brought current.
    pub mode: ViewMode,
    /// The table epoch the standing result now covers.
    pub epoch: u64,
    /// Rows newly folded in by this refresh (0 for `Current`).
    pub delta_rows: usize,
    /// Modeled device time of the refresh (`ZERO` on the CPU backend
    /// and for `Current`).
    pub kernel_time: SimTime,
    /// The standing result after the refresh, ranked.
    pub ids: Vec<u32>,
}

/// A materialized top-k view: one registered SQL query plus its standing
/// result and the epoch/row watermark the result covers.
pub struct TopKView {
    sql: String,
    query: Query,
    strategy: Strategy,
    refresh_fraction: f64,
    standing: RefCell<Vec<u32>>,
    rows_done: Cell<usize>,
    epoch_done: Cell<u64>,
    /// Per-shard row watermarks (sharded tables only).
    shard_done: RefCell<Vec<usize>>,
    current_hits: Cell<usize>,
    delta_merges: Cell<usize>,
    rescans: Cell<usize>,
    delta_rows_folded: Cell<usize>,
}

impl TopKView {
    /// Registers a view for one SQL query. The query is parsed and
    /// validated up front: `GROUP BY` is rejected (a delta cannot
    /// maintain group counts — appended rows change existing groups),
    /// and the ranking-function restrictions mirror
    /// [`crate::sql::execute`] so a registered view can never fail
    /// validation at refresh time.
    pub fn register(sql: &str, strategy: Strategy, cfg: ViewConfig) -> Result<Self, QdbError> {
        let query = parse(sql)?;
        if query.group_by_uid {
            return Err(SqlError::Unsupported(
                "GROUP BY in a materialized top-k view (appends change existing group counts)",
            )
            .into());
        }
        if let OrderBy::Rank { likes_weight } = query.order_by {
            if (likes_weight - 0.5).abs() > 1e-9 {
                return Err(SqlError::Unsupported("ranking weight other than 0.5").into());
            }
            if query.filter.is_some() {
                return Err(SqlError::Unsupported("WHERE combined with a ranking function").into());
            }
        }
        Ok(TopKView {
            sql: sql.to_string(),
            query,
            strategy,
            refresh_fraction: cfg.refresh_fraction.max(0.0),
            standing: RefCell::new(Vec::new()),
            rows_done: Cell::new(0),
            epoch_done: Cell::new(0),
            shard_done: RefCell::new(Vec::new()),
            current_hits: Cell::new(0),
            delta_merges: Cell::new(0),
            rescans: Cell::new(0),
            delta_rows_folded: Cell::new(0),
        })
    }

    /// The SQL the view was registered for.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The strategy delta scans and rescans run with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The refresh fraction the delta/rescan crossover uses.
    pub fn refresh_fraction(&self) -> f64 {
        self.refresh_fraction
    }

    /// The current standing result (without refreshing).
    pub fn ids(&self) -> Vec<u32> {
        self.standing.borrow().clone()
    }

    /// Rows the standing result covers.
    pub fn rows_done(&self) -> usize {
        self.rows_done.get()
    }

    /// The table epoch the standing result covers.
    pub fn epoch(&self) -> u64 {
        self.epoch_done.get()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> ViewStats {
        ViewStats {
            current_hits: self.current_hits.get(),
            delta_merges: self.delta_merges.get(),
            rescans: self.rescans.get(),
            delta_rows_folded: self.delta_rows_folded.get(),
        }
    }

    /// The maintenance mode a refresh against a table with `table_rows`
    /// rows at `table_epoch` would take — the pure decision EXPLAIN
    /// renders without running anything.
    pub fn plan_mode(&self, table_rows: usize, table_epoch: u64) -> ViewMode {
        let done = self.rows_done.get();
        if table_epoch == self.epoch_done.get() && table_rows == done {
            return ViewMode::Current;
        }
        let delta = table_rows.saturating_sub(done);
        if done == 0
            || table_rows < done
            || delta == 0
            || (delta as f64) > self.refresh_fraction * done as f64
        {
            ViewMode::Rescan
        } else {
            ViewMode::DeltaMerge
        }
    }

    fn commit(&self, ids: Vec<u32>, rows: usize, epoch: u64) -> Vec<u32> {
        *self.standing.borrow_mut() = ids.clone();
        self.rows_done.set(rows);
        self.epoch_done.set(epoch);
        ids
    }

    /// Brings the standing result current against a device-resident
    /// table and returns it. `Current` launches nothing; `DeltaMerge`
    /// scans only `[rows_done, len)` and run-merges; `Rescan`
    /// re-executes the registered query.
    pub fn refresh(&self, dev: &Device, table: &GpuTweetTable) -> Result<ViewRefresh, QdbError> {
        let rows = table.len();
        let epoch = table.epoch();
        match self.plan_mode(rows, epoch) {
            ViewMode::Current => {
                self.current_hits.set(self.current_hits.get() + 1);
                Ok(ViewRefresh {
                    mode: ViewMode::Current,
                    epoch,
                    delta_rows: 0,
                    kernel_time: SimTime::ZERO,
                    ids: self.ids(),
                })
            }
            ViewMode::Rescan => {
                let log0 = dev.log_len();
                let r = execute(dev, table, &self.query, self.strategy)?;
                self.rescans.set(self.rescans.get() + 1);
                Ok(ViewRefresh {
                    mode: ViewMode::Rescan,
                    epoch,
                    delta_rows: rows - self.rows_done.get().min(rows),
                    kernel_time: dev.window_since(log0).time,
                    ids: self.commit(r.ids, rows, epoch),
                })
            }
            ViewMode::DeltaMerge => {
                let done = self.rows_done.get();
                let delta_rows = rows - done;
                let log0 = dev.log_len();
                let delta_tab = table.device_slice(dev, done, rows);
                let dq = Query {
                    limit: self.query.limit.min(delta_rows),
                    ..self.query.clone()
                };
                let delta = execute(dev, &delta_tab, &dq, self.strategy)?;
                let standing = self.standing.borrow().clone();
                let merged = self.merge_on_device(dev, table, &standing, &delta.ids)?;
                self.delta_merges.set(self.delta_merges.get() + 1);
                self.delta_rows_folded
                    .set(self.delta_rows_folded.get() + delta_rows);
                Ok(ViewRefresh {
                    mode: ViewMode::DeltaMerge,
                    epoch,
                    delta_rows,
                    kernel_time: dev.window_since(log0).time,
                    ids: self.commit(merged, rows, epoch),
                })
            }
        }
    }

    /// Run-merges the standing result with a delta top-k on the device:
    /// both lists become descending sentinel-padded `k_eff` runs and the
    /// bitonic run reducer selects the union's top-k — the same merge
    /// the sharded gather uses, so ties resolve by the full item order.
    fn merge_on_device(
        &self,
        dev: &Device,
        table: &GpuTweetTable,
        standing: &[u32],
        delta: &[u32],
    ) -> Result<Vec<u32>, QdbError> {
        let id_col = table.id.read_range(0..table.len());
        let row_of = |id: u32| -> Result<usize, QdbError> {
            id_col.binary_search(&id).map_err(|_| QdbError::Internal {
                what: format!("view id {id} is not in the table's id column"),
            })
        };
        let k = self.query.limit;
        match (&self.query.order_by, self.query.ascending) {
            (OrderBy::RetweetCount, false) => {
                let make = |id: &u32| -> Result<Kv<u32>, QdbError> {
                    Ok(Kv::new(table.retweet_count.get(row_of(*id)?), *id))
                };
                let s: Vec<_> = standing.iter().map(make).collect::<Result<_, _>>()?;
                let d: Vec<_> = delta.iter().map(make).collect::<Result<_, _>>()?;
                let top = merge_runs(dev, s, d, k)?;
                Ok(top.iter().map(|kv| kv.value).collect())
            }
            (OrderBy::RetweetCount, true) => {
                let make = |id: &u32| -> Result<Rev<Kv<u32>>, QdbError> {
                    Ok(Rev(Kv::new(table.retweet_count.get(row_of(*id)?), *id)))
                };
                let s: Vec<_> = standing.iter().map(make).collect::<Result<_, _>>()?;
                let d: Vec<_> = delta.iter().map(make).collect::<Result<_, _>>()?;
                let top = merge_runs(dev, s, d, k)?;
                Ok(top.iter().map(|kv| kv.0.value).collect())
            }
            (OrderBy::Rank { .. }, _) => {
                let make = |id: &u32| -> Result<Kv<f32>, QdbError> {
                    let row = row_of(*id)?;
                    let rank = table.retweet_count.get(row) as f32
                        + 0.5 * table.likes_count.get(row) as f32;
                    Ok(Kv::new(rank, *id))
                };
                let s: Vec<_> = standing.iter().map(make).collect::<Result<_, _>>()?;
                let d: Vec<_> = delta.iter().map(make).collect::<Result<_, _>>()?;
                let top = merge_runs(dev, s, d, k)?;
                Ok(top.iter().map(|kv| kv.value).collect())
            }
            (OrderBy::Count, _) => {
                unreachable!("group queries are rejected at registration")
            }
        }
    }

    /// Backend-generic refresh: the simulator path through
    /// [`TopKView::refresh`], the CPU engine's twin otherwise. Both
    /// return the same winners — the conformance contract of
    /// [`crate::backend::execute_on`] extends to view maintenance.
    pub fn refresh_on(
        &self,
        be: &ExecBackend<'_>,
        table: &BackendTable,
    ) -> Result<ViewRefresh, QdbError> {
        if be.kind() != table.kind() {
            return Err(TopKError::BackendMismatch {
                backend: be.kind().name(),
                buffer: table.kind().name(),
            }
            .into());
        }
        match be {
            ExecBackend::Simt(b) => {
                self.refresh(b.device(), table.as_simt().expect("kind checked above"))
            }
            ExecBackend::Cpu(b) => {
                self.refresh_cpu(table.as_cpu().expect("kind checked above"), b.threads())
            }
        }
    }

    /// The CPU engine's refresh: same modes, same winners, wall-clock
    /// instead of modeled time (reported as `SimTime::ZERO`).
    fn refresh_cpu(&self, table: &CpuTweetTable, threads: usize) -> Result<ViewRefresh, QdbError> {
        let rows = table.len();
        let epoch = table.epoch();
        match self.plan_mode(rows, epoch) {
            ViewMode::Current => {
                self.current_hits.set(self.current_hits.get() + 1);
                Ok(ViewRefresh {
                    mode: ViewMode::Current,
                    epoch,
                    delta_rows: 0,
                    kernel_time: SimTime::ZERO,
                    ids: self.ids(),
                })
            }
            ViewMode::Rescan => {
                let out = execute_cpu(&table.rows(), &self.query, self.strategy, threads)?;
                self.rescans.set(self.rescans.get() + 1);
                Ok(ViewRefresh {
                    mode: ViewMode::Rescan,
                    epoch,
                    delta_rows: rows - self.rows_done.get().min(rows),
                    kernel_time: SimTime::ZERO,
                    ids: self.commit(out.ids, rows, epoch),
                })
            }
            ViewMode::DeltaMerge => {
                let done = self.rows_done.get();
                let delta_rows = rows - done;
                let standing = self.standing.borrow().clone();
                let merged = self.merge_on_host(&table.rows(), &standing, done, rows, threads)?;
                self.delta_merges.set(self.delta_merges.get() + 1);
                self.delta_rows_folded
                    .set(self.delta_rows_folded.get() + delta_rows);
                Ok(ViewRefresh {
                    mode: ViewMode::DeltaMerge,
                    epoch,
                    delta_rows,
                    kernel_time: SimTime::ZERO,
                    ids: self.commit(merged, rows, epoch),
                })
            }
        }
    }

    /// Host-side delta merge: the standing pairs plus every matching
    /// delta row feed the strategy's CPU top-k operator in one pass —
    /// the host-memory shape of the same `top-k(old) ∪ delta` identity.
    fn merge_on_host(
        &self,
        t: &TweetTable,
        standing: &[u32],
        done: usize,
        rows: usize,
        threads: usize,
    ) -> Result<Vec<u32>, QdbError> {
        let row_of = |id: u32| -> Result<usize, QdbError> {
            t.id.binary_search(&id).map_err(|_| QdbError::Internal {
                what: format!("view id {id} is not in the table's id column"),
            })
        };
        let k = self.query.limit;
        match &self.query.order_by {
            OrderBy::RetweetCount => {
                let op = self
                    .query
                    .filter
                    .clone()
                    .unwrap_or(crate::engine::FilterOp::TimeLess(u32::MAX));
                let mut cand: Vec<Kv<u32>> = Vec::with_capacity(standing.len());
                for &id in standing {
                    cand.push(Kv::new(t.retweet_count[row_of(id)?], id));
                }
                for row in done..rows {
                    if op.matches_row(t.tweet_time[row], t.lang[row]) {
                        cand.push(Kv::new(t.retweet_count[row], t.id[row]));
                    }
                }
                if self.query.ascending {
                    Ok(strategy_topk(self.strategy, &rev_slice(&cand), k, threads)
                        .iter()
                        .map(|kv| kv.0.value)
                        .collect())
                } else {
                    Ok(strategy_topk(self.strategy, &cand, k, threads)
                        .iter()
                        .map(|kv| kv.value)
                        .collect())
                }
            }
            OrderBy::Rank { .. } => {
                let mut cand: Vec<Kv<f32>> = Vec::with_capacity(standing.len());
                let rank =
                    |row: usize| t.retweet_count[row] as f32 + 0.5 * t.likes_count[row] as f32;
                for &id in standing {
                    let row = row_of(id)?;
                    cand.push(Kv::new(rank(row), id));
                }
                for row in done..rows {
                    cand.push(Kv::new(rank(row), t.id[row]));
                }
                Ok(strategy_topk(self.strategy, &cand, k, threads)
                    .iter()
                    .map(|kv| kv.value)
                    .collect())
            }
            OrderBy::Count => unreachable!("group queries are rejected at registration"),
        }
    }

    /// Sharded refresh: per-shard delta scans run on any healthy replica
    /// (the table's replication is what lets a standing view survive
    /// permanent device loss), then the per-shard delta top-ks and the
    /// standing result merge on the first healthy device with the same
    /// scatter-gather the sharded query path uses.
    pub fn refresh_sharded(
        &self,
        cluster: &Cluster,
        table: &ShardedTable,
        max_retries: usize,
    ) -> Result<ViewRefresh, QdbError> {
        let rows = table.len();
        let epoch = table.epoch();
        let mut mode = self.plan_mode(rows, epoch);
        if mode == ViewMode::DeltaMerge && self.shard_done.borrow().len() != table.num_shards() {
            // the standing result was not built against this sharding
            mode = ViewMode::Rescan;
        }
        match mode {
            ViewMode::Current => {
                self.current_hits.set(self.current_hits.get() + 1);
                Ok(ViewRefresh {
                    mode: ViewMode::Current,
                    epoch,
                    delta_rows: 0,
                    kernel_time: SimTime::ZERO,
                    ids: self.ids(),
                })
            }
            ViewMode::Rescan => {
                let r = execute_sharded(cluster, table, &self.query, self.strategy, max_retries)?;
                self.rescans.set(self.rescans.get() + 1);
                *self.shard_done.borrow_mut() = table.shard_rows();
                Ok(ViewRefresh {
                    mode: ViewMode::Rescan,
                    epoch,
                    delta_rows: rows - self.rows_done.get().min(rows),
                    kernel_time: r.sim_time,
                    ids: self.commit(r.ids, rows, epoch),
                })
            }
            ViewMode::DeltaMerge => {
                let delta_rows = rows - self.rows_done.get();
                let (ids, time) = self.sharded_delta_merge(cluster, table, max_retries)?;
                self.delta_merges.set(self.delta_merges.get() + 1);
                self.delta_rows_folded
                    .set(self.delta_rows_folded.get() + delta_rows);
                *self.shard_done.borrow_mut() = table.shard_rows();
                Ok(ViewRefresh {
                    mode: ViewMode::DeltaMerge,
                    epoch,
                    delta_rows,
                    kernel_time: time,
                    ids: self.commit(ids, rows, epoch),
                })
            }
        }
    }

    /// Per-shard delta scans + the standing run, shipped and merged.
    fn sharded_delta_merge(
        &self,
        cluster: &Cluster,
        table: &ShardedTable,
        max_retries: usize,
    ) -> Result<(Vec<u32>, SimTime), QdbError> {
        let Some(merge_dev) = first_healthy_from(cluster, 0) else {
            return Err(all_devices_down(0));
        };
        let done = self.shard_done.borrow().clone();
        let mut per_shard: Vec<Vec<u32>> = Vec::with_capacity(table.num_shards());
        let mut local = Vec::with_capacity(table.num_shards() + 1);
        let mut serving = Vec::with_capacity(table.num_shards() + 1);
        for (i, &done_i) in done.iter().enumerate() {
            let shard = table.shard(i);
            let len_i = shard.host().len();
            let delta_i = len_i - done_i;
            if delta_i == 0 {
                per_shard.push(Vec::new());
                local.push(SimTime::ZERO);
                serving.push(merge_dev);
                continue;
            }
            // read any healthy replica, primary first — same failover
            // rule as the sharded query path
            let Some(rep) = shard
                .replicas()
                .iter()
                .find(|rep| !cluster.device(rep.device).is_down())
            else {
                return Err(QdbError::DeviceFault {
                    what: format!("shard {i}: every replica device is permanently down"),
                    transient: false,
                    attempts: 1,
                    device: Some(shard.primary_device()),
                });
            };
            let dev = cluster.device(rep.device);
            serving.push(rep.device);
            let dq = Query {
                limit: self.query.limit.min(delta_i),
                ..self.query.clone()
            };
            let mut attempt = 0usize;
            let r = loop {
                let log0 = dev.log_len();
                let delta_tab = rep.gpu.device_slice(dev, done_i, len_i);
                match execute(dev, &delta_tab, &dq, self.strategy) {
                    Ok(r) => break (r.ids, dev.window_since(log0).time),
                    Err(e) if e.is_transient() && attempt < max_retries => attempt += 1,
                    Err(e) => return Err(crate::shard::attribute_device(e, rep.device)),
                }
            };
            per_shard.push(r.0);
            local.push(r.1);
        }
        let standing = self.standing.borrow().clone();
        let k = self.query.limit;
        match (&self.query.order_by, self.query.ascending) {
            (OrderBy::RetweetCount, false) => merge_sharded(
                cluster,
                table,
                &standing,
                per_shard,
                local,
                serving,
                merge_dev,
                k,
                max_retries,
                |h, row, id| Kv::new(h.retweet_count[row], id),
                |kv: &Kv<u32>| kv.value,
            ),
            (OrderBy::RetweetCount, true) => merge_sharded(
                cluster,
                table,
                &standing,
                per_shard,
                local,
                serving,
                merge_dev,
                k,
                max_retries,
                |h, row, id| Rev(Kv::new(h.retweet_count[row], id)),
                |kv: &Rev<Kv<u32>>| kv.0.value,
            ),
            (OrderBy::Rank { .. }, _) => merge_sharded(
                cluster,
                table,
                &standing,
                per_shard,
                local,
                serving,
                merge_dev,
                k,
                max_retries,
                |h, row, id| Kv::new(rank_key(h, row), id),
                |kv: &Kv<f32>| kv.value,
            ),
            (OrderBy::Count, _) => unreachable!("group queries are rejected at registration"),
        }
    }
}

/// Pads `standing` and `delta` (both descending, each at most
/// `min(k, |standing| + |delta|)` long) into two sentinel-backed
/// `k_eff` runs and reduces them on the device.
fn merge_runs<T: TopKItem>(
    dev: &Device,
    standing: Vec<T>,
    delta: Vec<T>,
    k: usize,
) -> Result<Vec<T>, QdbError> {
    let total = standing.len() + delta.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let k_req = k.min(total);
    let k_eff = k_req.next_power_of_two();
    let mut runs: Vec<T> = Vec::with_capacity(2 * k_eff);
    for mut run in [standing, delta] {
        debug_assert!(run.len() <= k_eff, "candidate list exceeds its run");
        run.resize(k_eff, T::min_sentinel());
        runs.extend(run);
    }
    let buf = dev.try_upload(&runs)?;
    let r = bitonic_topk_from_runs(dev, &buf, runs.len(), k_req, BitonicConfig::default())?;
    Ok(r.items)
}

/// Locates a standing id's shard and host row (shard id columns are
/// strictly increasing, so each probe is one binary search).
fn locate(table: &ShardedTable, id: u32) -> Result<(usize, usize), QdbError> {
    for i in 0..table.num_shards() {
        if let Ok(row) = table.shard(i).host().id.binary_search(&id) {
            return Ok((i, row));
        }
    }
    Err(QdbError::Internal {
        what: format!("view id {id} is not resident in any shard"),
    })
}

/// Builds the typed delegate lists (per-shard delta top-ks + the
/// standing run, resident on the merge device) and ships/merges them.
#[allow(clippy::too_many_arguments)]
fn merge_sharded<T: TopKItem>(
    cluster: &Cluster,
    table: &ShardedTable,
    standing: &[u32],
    per_shard: Vec<Vec<u32>>,
    mut local: Vec<SimTime>,
    mut serving: Vec<usize>,
    merge_dev: usize,
    k: usize,
    max_retries: usize,
    mut make: impl FnMut(&TweetTable, usize, u32) -> T,
    value: impl Fn(&T) -> u32,
) -> Result<(Vec<u32>, SimTime), QdbError> {
    let mut delegates: Vec<Vec<T>> = Vec::with_capacity(per_shard.len() + 1);
    for (i, ids) in per_shard.iter().enumerate() {
        let h = table.shard(i).host();
        let mut d = Vec::with_capacity(ids.len());
        for &id in ids {
            d.push(make(&h, crate::shard::shard_row(&h, id)?, id));
        }
        delegates.push(d);
    }
    // the standing result rides along as one more run, already resident
    // on the merge device (it is host state, not device state)
    let mut s = Vec::with_capacity(standing.len());
    for &id in standing {
        let (shard, row) = locate(table, id)?;
        s.push(make(&table.shard(shard).host(), row, id));
    }
    delegates.push(s);
    local.push(SimTime::ZERO);
    serving.push(merge_dev);
    let m = ship_and_merge(
        cluster,
        delegates,
        &local,
        &serving,
        merge_dev,
        k,
        BitonicConfig::default(),
        max_retries,
    )?;
    Ok((
        m.items.iter().map(&value).collect(),
        m.transfer_done + m.merge_time,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{PartitionPolicy, ReplicationFactor};
    use simt::topology::ClusterSpec;

    const SHAPES: [&str; 3] = [
        "SELECT id FROM tweets WHERE tweet_time < 1500000 \
         ORDER BY retweet_count DESC LIMIT 12",
        "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 9",
        "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 7",
    ];

    #[test]
    fn register_rejects_what_maintenance_cannot_hold() {
        for sql in [
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY retweet_count + 0.9 * likes_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE lang='en' \
             ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 5",
        ] {
            assert!(
                matches!(
                    TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default()),
                    Err(QdbError::Parse(SqlError::Unsupported(_)))
                ),
                "{sql}"
            );
        }
    }

    /// The core contract: after any append sequence the maintained view
    /// equals a from-scratch rescan bit for bit, for every supported
    /// query shape, and the maintenance ledger records the mode walk
    /// (build rescan, then delta merges, then cached currency).
    #[test]
    fn maintained_view_is_bit_identical_to_rescan_across_appends() {
        for sql in SHAPES {
            let dev = Device::titan_x();
            let mut host = TweetTable::generate(20_000, 41);
            let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, 28_000);
            let view = TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default())
                .expect("supported shape");
            let first = view.refresh(&dev, &gpu).unwrap();
            assert_eq!(first.mode, ViewMode::Rescan, "first build is a rescan");

            for (i, batch_rows) in [1500usize, 700, 2300].into_iter().enumerate() {
                let batch = TweetTable::generate_at(batch_rows, 100 + i as u64, host.len() as u32);
                gpu.append_batch(&dev, &batch).expect("headroom");
                host.extend_from(&batch);
                let r = view.refresh(&dev, &gpu).unwrap();
                assert_eq!(
                    r.mode,
                    ViewMode::DeltaMerge,
                    "small delta stays incremental"
                );
                assert_eq!(r.delta_rows, batch_rows);
                let oracle = execute(&dev, &gpu, view.query(), Strategy::StageBitonic).unwrap();
                assert_eq!(r.ids, oracle.ids, "{sql} after append {i}");
                assert_eq!(view.ids(), oracle.ids);
            }
            let again = view.refresh(&dev, &gpu).unwrap();
            assert_eq!(again.mode, ViewMode::Current);
            let s = view.stats();
            assert_eq!(
                (s.rescans, s.delta_merges, s.current_hits),
                (1, 3, 1),
                "{sql}"
            );
            assert_eq!(s.delta_rows_folded, 4500);
        }
    }

    #[test]
    fn current_refresh_launches_nothing() {
        let dev = Device::titan_x();
        let host = TweetTable::generate(4_000, 5);
        let gpu = GpuTweetTable::upload(&dev, &host);
        let view =
            TopKView::register(SHAPES[0], Strategy::StageBitonic, ViewConfig::default()).unwrap();
        let built = view.refresh(&dev, &gpu).unwrap();
        let log0 = dev.log_len();
        let hit = view.refresh(&dev, &gpu).unwrap();
        assert_eq!(hit.mode, ViewMode::Current);
        assert_eq!(hit.ids, built.ids);
        assert_eq!(hit.kernel_time, SimTime::ZERO);
        assert_eq!(dev.log_len(), log0, "a current view launches no kernels");
    }

    #[test]
    fn oversized_delta_crosses_over_to_rescan() {
        let dev = Device::titan_x();
        let host = TweetTable::generate(2_000, 9);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, 8_000);
        let view = TopKView::register(
            SHAPES[0],
            Strategy::StageBitonic,
            ViewConfig {
                refresh_fraction: 0.25,
            },
        )
        .unwrap();
        view.refresh(&dev, &gpu).unwrap();
        // 600 > 0.25 * 2000: the incremental path stops winning
        let batch = TweetTable::generate_at(600, 77, 2_000);
        gpu.append_batch(&dev, &batch).unwrap();
        let r = view.refresh(&dev, &gpu).unwrap();
        assert_eq!(r.mode, ViewMode::Rescan);
        let oracle = execute(&dev, &gpu, view.query(), Strategy::StageBitonic).unwrap();
        assert_eq!(r.ids, oracle.ids);
        assert_eq!(view.stats().rescans, 2);
        // a small follow-up delta goes back to merging
        let batch = TweetTable::generate_at(200, 78, 2_600);
        gpu.append_batch(&dev, &batch).unwrap();
        assert_eq!(view.refresh(&dev, &gpu).unwrap().mode, ViewMode::DeltaMerge);
    }

    /// The Backend conformance contract extends to views: both engines
    /// walk the same modes and return the same winners after appends.
    #[test]
    fn view_maintenance_conforms_across_backends() {
        let host = TweetTable::generate(12_000, 17);
        let dev = Device::titan_x();
        let sim_be = ExecBackend::simt(&dev);
        let cpu_be = ExecBackend::cpu(4);
        let sim = BackendTable::load_with_capacity(&sim_be, &host, 16_000);
        let cpu = BackendTable::load(&cpu_be, &host);
        for sql in SHAPES {
            let vs =
                TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default()).unwrap();
            let vc =
                TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default()).unwrap();
            assert_eq!(
                vs.refresh_on(&sim_be, &sim).unwrap().ids,
                vc.refresh_on(&cpu_be, &cpu).unwrap().ids,
                "{sql} (build)"
            );
            assert!(matches!(
                vs.refresh_on(&cpu_be, &sim),
                Err(QdbError::DeviceFault { .. })
            ));
        }
        // appends land on both backends; maintained results stay equal
        let vs =
            TopKView::register(SHAPES[0], Strategy::StageBitonic, ViewConfig::default()).unwrap();
        let vc =
            TopKView::register(SHAPES[0], Strategy::StageBitonic, ViewConfig::default()).unwrap();
        vs.refresh_on(&sim_be, &sim).unwrap();
        vc.refresh_on(&cpu_be, &cpu).unwrap();
        let mut next_id = host.len() as u32;
        for rows in [900usize, 1300] {
            let batch = TweetTable::generate_at(rows, u64::from(next_id), next_id);
            sim.append_batch(&sim_be, &batch).unwrap();
            cpu.append_batch(&cpu_be, &batch).unwrap();
            next_id += rows as u32;
            let rs = vs.refresh_on(&sim_be, &sim).unwrap();
            let rc = vc.refresh_on(&cpu_be, &cpu).unwrap();
            assert_eq!(rs.mode, ViewMode::DeltaMerge);
            assert_eq!(rc.mode, ViewMode::DeltaMerge);
            assert_eq!(rs.ids, rc.ids, "after +{rows}");
        }
    }

    /// The point of the incremental path: a delta merge moves a small
    /// fraction of the global-memory bytes a rescan moves.
    #[test]
    fn delta_merge_reads_only_the_delta() {
        let dev = Device::titan_x();
        let mut host = TweetTable::generate(65_536, 3);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, 66_560);
        let view =
            TopKView::register(SHAPES[0], Strategy::StageBitonic, ViewConfig::default()).unwrap();
        let log0 = dev.log_len();
        view.refresh(&dev, &gpu).unwrap();
        let rescan_bytes = dev.window_since(log0).stats.global_bytes();

        let batch = TweetTable::generate_at(1024, 51, host.len() as u32);
        gpu.append_batch(&dev, &batch).unwrap();
        host.extend_from(&batch);
        let log1 = dev.log_len();
        let r = view.refresh(&dev, &gpu).unwrap();
        assert_eq!(r.mode, ViewMode::DeltaMerge);
        let delta_bytes = dev.window_since(log1).stats.global_bytes();
        assert!(
            (delta_bytes as f64) < 0.1 * rescan_bytes as f64,
            "delta maintenance should move a small fraction of a rescan: \
             {delta_bytes} vs {rescan_bytes}"
        );
    }

    /// A replicated sharded view keeps serving bit-exact results through
    /// appends and a permanent device loss: delta scans fail over to the
    /// surviving replica of each shard.
    #[test]
    fn sharded_view_survives_permanent_device_loss() {
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let mut host = TweetTable::generate(16_000, 29);
        let table = ShardedTable::partition_replicated_with_capacity(
            &cluster,
            &host,
            PartitionPolicy::Range,
            ReplicationFactor(2),
            24_000,
        )
        .unwrap();
        let view =
            TopKView::register(SHAPES[0], Strategy::StageBitonic, ViewConfig::default()).unwrap();
        let built = view.refresh_sharded(&cluster, &table, 2).unwrap();
        assert_eq!(built.mode, ViewMode::Rescan);

        let batch = TweetTable::generate_at(1200, 61, host.len() as u32);
        table.append_batch(&cluster, &batch).unwrap();
        host.extend_from(&batch);
        let r = view.refresh_sharded(&cluster, &table, 2).unwrap();
        assert_eq!(r.mode, ViewMode::DeltaMerge);
        let oracle =
            execute_sharded(&cluster, &table, view.query(), Strategy::StageBitonic, 2).unwrap();
        assert_eq!(r.ids, oracle.ids, "healthy delta merge matches the oracle");

        // device 0 dies for good; the next append skips its replicas and
        // the view's delta scans route to survivors
        cluster.device(0).mark_down();
        let batch = TweetTable::generate_at(900, 62, host.len() as u32);
        let receipt = table.append_batch(&cluster, &batch).unwrap();
        assert!(receipt.skipped_replicas > 0, "dead copies are skipped");
        host.extend_from(&batch);
        let r = view.refresh_sharded(&cluster, &table, 2).unwrap();
        assert_eq!(r.mode, ViewMode::DeltaMerge);
        let oracle =
            execute_sharded(&cluster, &table, view.query(), Strategy::StageBitonic, 2).unwrap();
        assert_eq!(r.ids, oracle.ids, "view survives permanent loss at r=2");
        assert_eq!(view.stats().delta_merges, 2);
        let hit = view.refresh_sharded(&cluster, &table, 2).unwrap();
        assert_eq!(hit.mode, ViewMode::Current);
    }
}
