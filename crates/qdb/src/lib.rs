#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A columnar mini query engine on the simulated GPU — the reproduction's
//! stand-in for MapD (paper Sections 5 and 6.8).
//!
//! The engine implements exactly the physical operators the paper's
//! integration experiments exercise:
//!
//! * columnar **scan + filter** producing `(key, id)` candidate pairs,
//! * **projection** of a custom ranking function,
//! * hash **group-by count**,
//! * **order-by/limit** with a pluggable top-k operator (full sort or
//!   bitonic top-k),
//! * the two Section 5 **fusions**: filter-as-buffer-filler inside the
//!   SortReducer (`FusedFilterTopK`) and ranking-function evaluation
//!   inside the SortReducer (`FusedProjectTopK`).
//!
//! [`queries`] wires these into the paper's four Twitter queries
//! (Figure 16) with per-strategy kernel-time breakdowns, and [`server`]
//! turns the engine into a concurrent serving layer: a [`Server`] admits
//! a queue of SQL queries, overlaps them on simt streams, and coalesces
//! compatible small queries into one batched top-k launch.

pub mod backend;
pub(crate) mod cpu_engine;
pub mod engine;
pub mod error;
pub mod explain;
pub mod queries;
pub mod server;
pub mod shard;
pub mod sql;
pub mod stream;
pub mod table;

pub use backend::{execute_on, explain_lint_on, explain_sanitize_on, BackendQueryResult};
pub use engine::{FilterOp, TopKStrategy};
pub use error::QdbError;
pub use explain::{
    explain_delegate_topk, explain_filtered_topk, explain_view, DelegatePlan, QueryPlan,
    TableStats, ViewPlan,
};
pub use queries::{QueryResult, Strategy};
pub use server::{
    DegradeLevel, LoadReport, QueryTicket, QueryTiming, ResilienceStats, ServedQuery, Server,
    ServerConfig, SubmitOptions,
};
pub use shard::{
    execute_sharded, partition_indices, sharded_delegate_topk, sharded_topk, BreakerState,
    DeviceHealth, PartitionPolicy, Replica, ReplicationFactor, Shard, ShardedAppendReceipt,
    ShardedLoadReport, ShardedQueryResult, ShardedServed, ShardedServer, ShardedTable,
    ShardedTicket, ShardedTopK,
};
pub use sql::{
    execute as execute_sql, explain_lint, explain_sanitize, parse as parse_sql, parse_statement,
    LintedQuery, Query, SanitizedQuery, SqlError, Statement,
};
pub use stream::{TopKView, ViewConfig, ViewMode, ViewRefresh, ViewStats};
pub use table::{AppendReceipt, BackendTable, CpuTweetTable, GpuTweetTable, ROW_BYTES};
