//! EXPLAIN: cost-based strategy selection for the Figure 16 queries.
//!
//! The paper motivates its cost models with query planning; this module
//! closes that loop inside the engine. At upload time the table gathers
//! light column statistics; `explain_*` estimates the predicate
//! selectivity, prices each execution strategy with the Section 7 models
//! (plus simple scan formulas for the filter/projection stages), and
//! returns a plan naming the winner — which [`crate::queries`] can then
//! execute.

use simt::DeviceSpec;
use topk_costmodel::{bitonic_topk_seconds, sort_seconds, BitonicModelInput};

use crate::engine::FilterOp;
use crate::queries::Strategy;
use crate::table::GpuTweetTable;

/// Light per-table statistics for selectivity estimation, computed once
/// at upload (the standard catalog-statistics pattern).
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Minimum of `tweet_time`.
    pub time_min: u32,
    /// Maximum of `tweet_time`.
    pub time_max: u32,
    /// Relative frequency of each language code (sampled).
    pub lang_freq: [f64; 8],
}

impl TableStats {
    /// Gathers statistics from a device table (full pass on `tweet_time`
    /// bounds, sampled language histogram — cheap and good enough for
    /// planning).
    pub fn gather(table: &GpuTweetTable) -> Self {
        let times = table.tweet_time.to_vec();
        let time_min = times.iter().copied().min().unwrap_or(0);
        let time_max = times.iter().copied().max().unwrap_or(0);
        let langs = table.lang.to_vec();
        let sample = 4096.min(langs.len()).max(1);
        let stride = (langs.len() / sample).max(1);
        let mut counts = [0usize; 8];
        let mut seen = 0usize;
        for i in (0..langs.len()).step_by(stride) {
            counts[(langs[i] as usize).min(7)] += 1;
            seen += 1;
        }
        let mut lang_freq = [0.0; 8];
        for (f, c) in lang_freq.iter_mut().zip(counts) {
            *f = c as f64 / seen.max(1) as f64;
        }
        Self {
            time_min,
            time_max,
            lang_freq,
        }
    }

    /// Estimated selectivity of a predicate.
    pub fn selectivity(&self, op: &FilterOp) -> f64 {
        match op {
            FilterOp::TimeLess(cutoff) => {
                if *cutoff <= self.time_min {
                    0.0
                } else if *cutoff > self.time_max {
                    1.0
                } else {
                    (*cutoff - self.time_min) as f64 / (self.time_max - self.time_min).max(1) as f64
                }
            }
            FilterOp::LangIn(langs) => langs
                .iter()
                .map(|&l| self.lang_freq[(l as usize).min(7)])
                .sum::<f64>()
                .clamp(0.0, 1.0),
        }
    }
}

/// One strategy's predicted cost.
#[derive(Debug, Clone, Copy)]
pub struct StrategyCost {
    /// The strategy this row prices.
    pub strategy: Strategy,
    /// Predicted kernel seconds.
    pub predicted_seconds: f64,
}

/// The planner's output: all strategies priced, cheapest first.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Estimated predicate selectivity used for the estimates.
    pub selectivity: f64,
    /// Per-strategy predictions, sorted ascending by cost.
    pub costs: Vec<StrategyCost>,
}

impl QueryPlan {
    /// The recommended (cheapest) strategy.
    pub fn chosen(&self) -> Strategy {
        self.costs[0].strategy
    }

    /// Renders the plan like an EXPLAIN output.
    pub fn render(&self) -> String {
        let mut s = format!("plan (est. selectivity {:.2}):\n", self.selectivity);
        for (i, c) in self.costs.iter().enumerate() {
            s.push_str(&format!(
                "  {} {:<18} ~{:.3} ms\n",
                if i == 0 { "->" } else { "  " },
                c.strategy.name(),
                c.predicted_seconds * 1e3
            ));
        }
        s.push_str("  on fault: retry w/ backoff -> serial stage-bitonic -> cpu-heap\n");
        s
    }
}

/// Prices the three Q1/Q3 strategies for `WHERE <op> ORDER BY
/// retweet_count DESC LIMIT k`.
pub fn explain_filtered_topk(
    spec: &DeviceSpec,
    table: &GpuTweetTable,
    stats: &TableStats,
    op: &FilterOp,
    k: usize,
) -> QueryPlan {
    let n = table.len();
    let sel = stats.selectivity(op);
    let matched = ((n as f64 * sel) as usize).max(1);
    let pair_bytes = 8.0; // (key, id)

    // filter stage: read pred+key columns, write matched pairs
    let scan = (n as f64 * (op.pred_bytes() + 4) as f64) / spec.global_bw;
    let filter_stage = scan + (matched as f64 * pair_bytes) / spec.global_bw + spec.launch_overhead;

    let sort_cost = filter_stage + sort_seconds(spec, matched, 8);
    let bitonic_cost =
        filter_stage + bitonic_topk_seconds(spec, BitonicModelInput::with_defaults(matched, k, 8));
    // fused: no pair materialization or re-read; the top-k pipeline runs
    // on the 16×-reduced stream
    let fused_cost =
        scan + bitonic_topk_seconds(
            spec,
            BitonicModelInput::with_defaults(matched / 16 + 1, k, 8),
        ) + spec.launch_overhead;

    let mut costs = vec![
        StrategyCost {
            strategy: Strategy::StageSort,
            predicted_seconds: sort_cost,
        },
        StrategyCost {
            strategy: Strategy::StageBitonic,
            predicted_seconds: bitonic_cost,
        },
        StrategyCost {
            strategy: Strategy::CombinedBitonic,
            predicted_seconds: fused_cost,
        },
    ];
    // NaN-safe: a degenerate cost model must reorder, not panic
    costs.sort_by(|a, b| a.predicted_seconds.total_cmp(&b.predicted_seconds));
    QueryPlan {
        selectivity: sel,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::filtered_topk;
    use datagen::twitter::TweetTable;
    use simt::Device;

    fn setup(n: usize) -> (Device, TweetTable, GpuTweetTable, TableStats) {
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 77);
        let gpu = GpuTweetTable::upload(&dev, &host);
        let stats = TableStats::gather(&gpu);
        (dev, host, gpu, stats)
    }

    #[test]
    fn time_selectivity_estimates_track_reality() {
        let (_dev, host, _gpu, stats) = setup(50_000);
        for target in [0.1, 0.5, 0.9] {
            let cutoff = host.time_cutoff_for_selectivity(target);
            let est = stats.selectivity(&FilterOp::TimeLess(cutoff));
            assert!((est - target).abs() < 0.05, "target={target} est={est}");
        }
        assert_eq!(stats.selectivity(&FilterOp::TimeLess(0)), 0.0);
    }

    #[test]
    fn lang_selectivity_estimates_track_reality() {
        let (_dev, host, _gpu, stats) = setup(50_000);
        let est = stats.selectivity(&FilterOp::LangIn(vec![0, 1]));
        let real = host.lang.iter().filter(|&&l| l <= 1).count() as f64 / host.len() as f64;
        assert!((est - real).abs() < 0.05, "est={est} real={real}");
    }

    #[test]
    fn plan_prefers_fusion_and_bitonic_over_sort() {
        let (_dev, host, gpu, stats) = setup(200_000);
        let cutoff = host.time_cutoff_for_selectivity(0.8);
        let plan = explain_filtered_topk(
            &simt::DeviceSpec::titan_x_maxwell(),
            &gpu,
            &stats,
            &FilterOp::TimeLess(cutoff),
            50,
        );
        assert_eq!(plan.chosen(), Strategy::CombinedBitonic);
        // sort must be the most expensive
        assert_eq!(plan.costs.last().unwrap().strategy, Strategy::StageSort);
        let rendered = plan.render();
        assert!(rendered.contains("->"));
        assert!(rendered.contains("combined-bitonic"));
    }

    #[test]
    fn chosen_strategy_is_actually_fastest() {
        let (dev, host, gpu, stats) = setup(1 << 17);
        let cutoff = host.time_cutoff_for_selectivity(0.6);
        let op = FilterOp::TimeLess(cutoff);
        let plan = explain_filtered_topk(dev.spec(), &gpu, &stats, &op, 50);
        let mut measured: Vec<(Strategy, f64)> = Strategy::all()
            .iter()
            .map(|&s| {
                (
                    s,
                    filtered_topk(&dev, &gpu, &op, 50, s)
                        .unwrap()
                        .kernel_time
                        .seconds(),
                )
            })
            .collect();
        measured.sort_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(
            plan.chosen(),
            measured[0].0,
            "plan={plan:?} measured={measured:?}"
        );
    }
}
