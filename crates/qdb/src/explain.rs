//! EXPLAIN: cost-based strategy selection for the Figure 16 queries.
//!
//! The paper motivates its cost models with query planning; this module
//! closes that loop inside the engine. At upload time the table gathers
//! light column statistics; `explain_*` estimates the predicate
//! selectivity, prices each execution strategy with the Section 7 models
//! (plus simple scan formulas for the filter/projection stages), and
//! returns a plan naming the winner — which [`crate::queries`] can then
//! execute.

use simt::topology::ClusterSpec;
use simt::DeviceSpec;
use topk_costmodel::{
    bitonic_topk_seconds, cluster_topk_seconds, delegate_select_phases, sort_seconds,
    BitonicModelInput, ClusterModelInput, DelegatePhases, ReductionProfile,
};

use crate::engine::FilterOp;
use crate::queries::Strategy;
use crate::shard::{PartitionPolicy, ShardedTable};
use crate::table::GpuTweetTable;

/// Light per-table statistics for selectivity estimation, computed once
/// at upload (the standard catalog-statistics pattern).
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Minimum of `tweet_time`.
    pub time_min: u32,
    /// Maximum of `tweet_time`.
    pub time_max: u32,
    /// Relative frequency of each language code (sampled).
    pub lang_freq: [f64; 8],
}

impl TableStats {
    /// Gathers statistics from a device table (full pass on `tweet_time`
    /// bounds, sampled language histogram — cheap and good enough for
    /// planning).
    pub fn gather(table: &GpuTweetTable) -> Self {
        // read only the logical prefix: columns allocated with append
        // headroom hold default-initialized slack that would skew the
        // statistics (time_min pinned to 0, lang 0 overcounted)
        let times = table.tweet_time.read_range(0..table.len());
        let time_min = times.iter().copied().min().unwrap_or(0);
        let time_max = times.iter().copied().max().unwrap_or(0);
        let langs = table.lang.read_range(0..table.len());
        let sample = 4096.min(langs.len()).max(1);
        let stride = (langs.len() / sample).max(1);
        let mut counts = [0usize; 8];
        let mut seen = 0usize;
        for i in (0..langs.len()).step_by(stride) {
            counts[(langs[i] as usize).min(7)] += 1;
            seen += 1;
        }
        let mut lang_freq = [0.0; 8];
        for (f, c) in lang_freq.iter_mut().zip(counts) {
            *f = c as f64 / seen.max(1) as f64;
        }
        Self {
            time_min,
            time_max,
            lang_freq,
        }
    }

    /// Estimated selectivity of a predicate.
    pub fn selectivity(&self, op: &FilterOp) -> f64 {
        match op {
            FilterOp::TimeLess(cutoff) => {
                if *cutoff <= self.time_min {
                    0.0
                } else if *cutoff > self.time_max {
                    1.0
                } else {
                    (*cutoff - self.time_min) as f64 / (self.time_max - self.time_min).max(1) as f64
                }
            }
            FilterOp::LangIn(langs) => langs
                .iter()
                .map(|&l| self.lang_freq[(l as usize).min(7)])
                .sum::<f64>()
                .clamp(0.0, 1.0),
        }
    }
}

/// One strategy's predicted cost.
#[derive(Debug, Clone, Copy)]
pub struct StrategyCost {
    /// The strategy this row prices.
    pub strategy: Strategy,
    /// Predicted kernel seconds.
    pub predicted_seconds: f64,
}

/// The planner's output: all strategies priced, cheapest first.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Estimated predicate selectivity used for the estimates.
    pub selectivity: f64,
    /// Per-strategy predictions, sorted ascending by cost.
    pub costs: Vec<StrategyCost>,
}

impl QueryPlan {
    /// The recommended (cheapest) strategy.
    pub fn chosen(&self) -> Strategy {
        self.costs[0].strategy
    }

    /// Renders the plan like an EXPLAIN output.
    pub fn render(&self) -> String {
        let mut s = format!("plan (est. selectivity {:.2}):\n", self.selectivity);
        for (i, c) in self.costs.iter().enumerate() {
            s.push_str(&format!(
                "  {} {:<18} ~{:.3} ms\n",
                if i == 0 { "->" } else { "  " },
                c.strategy.name(),
                c.predicted_seconds * 1e3
            ));
        }
        s.push_str("  on fault: retry w/ backoff -> serial stage-bitonic -> cpu-heap\n");
        s
    }
}

/// Prices the three Q1/Q3 strategies for `WHERE <op> ORDER BY
/// retweet_count DESC LIMIT k`.
pub fn explain_filtered_topk(
    spec: &DeviceSpec,
    table: &GpuTweetTable,
    stats: &TableStats,
    op: &FilterOp,
    k: usize,
) -> QueryPlan {
    let n = table.len();
    let sel = stats.selectivity(op);
    let matched = ((n as f64 * sel) as usize).max(1);
    let pair_bytes = 8.0; // (key, id)

    // filter stage: read pred+key columns, write matched pairs
    let scan = (n as f64 * (op.pred_bytes() + 4) as f64) / spec.global_bw;
    let filter_stage = scan + (matched as f64 * pair_bytes) / spec.global_bw + spec.launch_overhead;

    let sort_cost = filter_stage + sort_seconds(spec, matched, 8);
    let bitonic_cost =
        filter_stage + bitonic_topk_seconds(spec, BitonicModelInput::with_defaults(matched, k, 8));
    // fused: no pair materialization or re-read; the top-k pipeline runs
    // on the 16×-reduced stream
    let fused_cost =
        scan + bitonic_topk_seconds(
            spec,
            BitonicModelInput::with_defaults(matched / 16 + 1, k, 8),
        ) + spec.launch_overhead;

    let mut costs = vec![
        StrategyCost {
            strategy: Strategy::StageSort,
            predicted_seconds: sort_cost,
        },
        StrategyCost {
            strategy: Strategy::StageBitonic,
            predicted_seconds: bitonic_cost,
        },
        StrategyCost {
            strategy: Strategy::CombinedBitonic,
            predicted_seconds: fused_cost,
        },
    ];
    // NaN-safe: a degenerate cost model must reorder, not panic
    costs.sort_by(|a, b| a.predicted_seconds.total_cmp(&b.predicted_seconds));
    QueryPlan {
        selectivity: sel,
        costs,
    }
}

/// EXPLAIN output for a warm delegate-select top-k: the four pipeline
/// phases priced with the `topk-costmodel` delegate estimator.
#[derive(Debug, Clone, Copy)]
pub struct DelegatePlan {
    /// Input length the plan prices.
    pub n: usize,
    /// Requested k.
    pub k: usize,
    /// The per-phase cost breakdown.
    pub phases: DelegatePhases,
}

impl DelegatePlan {
    /// Renders the delegate plan like an EXPLAIN output.
    pub fn render(&self) -> String {
        let p = &self.phases;
        let mut s = format!(
            "delegate plan (n={}, k={}, subrange {} -> {} delegates, ~{} contributing):\n",
            self.n, self.k, p.subrange, p.num_subranges, p.contributing
        );
        s.push_str(&format!(
            "  phase: threshold scan   ~{:.3} ms\n",
            p.scan_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: delegate top-k   ~{:.3} ms\n",
            p.delegate_topk_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: refine subranges ~{:.3} ms\n",
            p.refine_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: merge runs       ~{:.3} ms\n",
            p.merge_seconds * 1e3
        ));
        s.push_str(&format!(
            "  total (warm index)      ~{:.3} ms\n",
            p.total_seconds * 1e3
        ));
        s.push_str(
            "  cold: +1 extraction pass over n (index cached on the buffer until it mutates)\n",
        );
        s
    }
}

/// Prices a warm delegate-select `ORDER BY key DESC LIMIT k` pipeline
/// phase by phase — the EXPLAIN view of the Dr. Top-k decomposition.
pub fn explain_delegate_topk(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
) -> DelegatePlan {
    DelegatePlan {
        n,
        k,
        phases: delegate_select_phases(spec, n, k, item_bytes, profile, 16, 1.0),
    }
}

/// EXPLAIN output for a sharded query: the scatter-gather phases priced
/// with the `topk-costmodel` cluster estimator.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// How the table is partitioned.
    pub policy: PartitionPolicy,
    /// Rows resident on each device.
    pub shard_rows: Vec<usize>,
    /// Estimated post-filter candidates per shard.
    pub matched_rows: Vec<usize>,
    /// Requested k.
    pub k: usize,
    /// Mean estimated predicate selectivity across shards.
    pub selectivity: f64,
    /// Delegate bytes shipped to the merge device.
    pub candidate_bytes: usize,
    /// Slowest shard's filter scan, seconds.
    pub scan_seconds: f64,
    /// Slowest shard's local top-k pass, seconds.
    pub local_seconds: f64,
    /// Delegate gather over the interconnect, seconds.
    pub transfer_seconds: f64,
    /// Device-0 merge of the delegate runs, seconds.
    pub merge_seconds: f64,
    /// Whether the cluster has peer links (affects the gather row).
    pub peer_links: bool,
    /// Copies of each partition ([`crate::ReplicationFactor`], clamped).
    pub replication: usize,
}

impl ShardPlan {
    /// End-to-end predicted seconds.
    pub fn total_seconds(&self) -> f64 {
        self.scan_seconds + self.local_seconds + self.transfer_seconds + self.merge_seconds
    }

    /// Renders the shard plan like an EXPLAIN output.
    pub fn render(&self) -> String {
        let mut s = format!(
            "shard plan ({} over {} devices, k={}, est. selectivity {:.2}):\n",
            self.policy.name(),
            self.shard_rows.len(),
            self.k,
            self.selectivity
        );
        for (i, (&n, &m)) in self.shard_rows.iter().zip(&self.matched_rows).enumerate() {
            let delegates = self.k.min(m);
            let ship = if i == 0 {
                "merge-resident".to_string()
            } else {
                format!("ships {} B", delegates * 8)
            };
            s.push_str(&format!(
                "  shard {i}: n={n} ~{m} match -> {delegates} delegates ({ship})\n"
            ));
        }
        let link = if self.peer_links {
            "peer links"
        } else {
            "host links"
        };
        s.push_str(&format!(
            "  phase: filter scan      ~{:.3} ms\n",
            self.scan_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: local top-k      ~{:.3} ms\n",
            self.local_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: delegate gather  {} B over {link} ~{:.3} ms\n",
            self.candidate_bytes,
            self.transfer_seconds * 1e3
        ));
        s.push_str(&format!(
            "  phase: merge on dev0    ~{:.3} ms\n",
            self.merge_seconds * 1e3
        ));
        s.push_str(&format!(
            "  total                   ~{:.3} ms\n",
            self.total_seconds() * 1e3
        ));
        // the replication line only appears when replication exists, so
        // unreplicated plans render byte-identical to previous releases
        if self.replication > 1 {
            s.push_str(&format!(
                "  replication: r={} — reads fail over to any healthy replica; \
                 breaker + rebuild on device loss\n",
                self.replication
            ));
        }
        s.push_str("  on fault: per-shard retry/degrade; a failed shard fails the query\n");
        s
    }
}

/// Prices a sharded `WHERE <op> ORDER BY retweet_count DESC LIMIT k`
/// query: per-shard selectivity from shard-local statistics, then the
/// `topk-costmodel` cluster estimator for the local/gather/merge phases.
pub fn explain_sharded_topk(
    cluster: &ClusterSpec,
    table: &ShardedTable,
    op: Option<&FilterOp>,
    k: usize,
) -> ShardPlan {
    let spec = &cluster.device;
    let shard_rows = table.shard_rows();
    let mut matched_rows = Vec::with_capacity(shard_rows.len());
    let mut sel_sum = 0.0;
    let mut shards_with_rows = 0usize;
    for (i, &n) in shard_rows.iter().enumerate() {
        if n == 0 {
            matched_rows.push(0);
            continue;
        }
        let sel = match op {
            Some(op) => TableStats::gather(table.shard(i).primary_gpu()).selectivity(op),
            None => 1.0,
        };
        sel_sum += sel;
        shards_with_rows += 1;
        matched_rows.push(((n as f64 * sel) as usize).clamp(1, n));
    }
    let selectivity = if shards_with_rows == 0 {
        0.0
    } else {
        sel_sum / shards_with_rows as f64
    };

    // scan phase: every shard reads its predicate + key columns and
    // writes matched pairs, concurrently — the slowest shard gates
    let pred_bytes = op.map_or(0, FilterOp::pred_bytes);
    let scan_seconds = shard_rows
        .iter()
        .zip(&matched_rows)
        .filter(|(&n, _)| n > 0)
        .map(|(&n, &m)| {
            (n as f64 * (pred_bytes + 4) as f64 + m as f64 * 8.0) / spec.global_bw
                + spec.launch_overhead
        })
        .fold(0.0, f64::max);

    let est = cluster_topk_seconds(
        cluster,
        &ClusterModelInput {
            shard_rows: matched_rows.clone(),
            k,
            item_bytes: 8,
        },
    );
    ShardPlan {
        policy: table.policy(),
        shard_rows,
        matched_rows,
        k,
        selectivity,
        candidate_bytes: est.candidate_bytes,
        scan_seconds,
        local_seconds: est.local_seconds,
        transfer_seconds: est.transfer_seconds,
        merge_seconds: est.merge_seconds,
        peer_links: cluster.peer_link.is_some(),
        replication: table.replication(),
    }
}

/// EXPLAIN output for a materialized top-k view: the maintenance
/// decision ([`crate::stream::TopKView::plan_mode`], plus the serving
/// layer's cache) rendered with the watermarks that drove it.
#[derive(Debug, Clone)]
pub struct ViewPlan {
    /// The registered SQL.
    pub sql: String,
    /// Requested k.
    pub k: usize,
    /// The maintenance mode a refresh would take: `cache-hit` when the
    /// serving layer already holds this epoch's result, otherwise one of
    /// [`crate::stream::ViewMode`]'s names.
    pub mode: &'static str,
    /// Rows the standing result covers.
    pub rows_done: usize,
    /// Rows in the table now.
    pub table_rows: usize,
    /// Epoch the standing result covers.
    pub epoch_done: u64,
    /// The table's epoch now.
    pub table_epoch: u64,
    /// The view's delta/rescan crossover fraction.
    pub refresh_fraction: f64,
}

impl ViewPlan {
    /// Appended rows not yet folded into the standing result.
    pub fn delta_rows(&self) -> usize {
        self.table_rows.saturating_sub(self.rows_done)
    }

    /// Renders the view plan like an EXPLAIN output.
    pub fn render(&self) -> String {
        let mut s = format!("view plan (k={}):\n", self.k);
        s.push_str(&format!("  query:    {}\n", self.sql));
        s.push_str(&format!(
            "  standing: {} rows folded @ epoch {}\n",
            self.rows_done, self.epoch_done
        ));
        if self.rows_done == 0 {
            s.push_str(&format!(
                "  table:    {} rows @ epoch {} (no standing result yet; rescan above {:.1}%)\n",
                self.table_rows,
                self.table_epoch,
                self.refresh_fraction * 100.0
            ));
        } else {
            let pct = self.delta_rows() as f64 / self.rows_done as f64 * 100.0;
            s.push_str(&format!(
                "  table:    {} rows @ epoch {} (delta {} rows, {:.1}% of folded; rescan above {:.1}%)\n",
                self.table_rows,
                self.table_epoch,
                self.delta_rows(),
                pct,
                self.refresh_fraction * 100.0
            ));
        }
        s.push_str(&format!("  -> {}", self.mode));
        s.push_str(match self.mode {
            "cache-hit" => ": serve the epoch-tagged cached result, zero launches\n",
            "current" => ": standing result already covers this epoch, zero launches\n",
            "delta-merge" => {
                ": top-k over the delta slice + bitonic run-merge into the standing run\n"
            }
            "rescan" => ": re-execute over the full table and replace the standing result\n",
            _ => "\n",
        });
        s
    }
}

/// EXPLAIN for a materialized view against a table watermark. Pass the
/// serving layer's cached epoch (if it holds one for this SQL) so the
/// plan can report a cache hit above the view's own maintenance modes.
pub fn explain_view(
    view: &crate::stream::TopKView,
    table_rows: usize,
    table_epoch: u64,
    cached_epoch: Option<u64>,
) -> ViewPlan {
    let mode = if cached_epoch == Some(table_epoch) {
        "cache-hit"
    } else {
        view.plan_mode(table_rows, table_epoch).name()
    };
    ViewPlan {
        sql: view.sql().to_string(),
        k: view.query().limit,
        mode,
        rows_done: view.rows_done(),
        table_rows,
        epoch_done: view.epoch(),
        table_epoch,
        refresh_fraction: view.refresh_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::filtered_topk;
    use datagen::twitter::TweetTable;
    use simt::Device;

    fn setup(n: usize) -> (Device, TweetTable, GpuTweetTable, TableStats) {
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 77);
        let gpu = GpuTweetTable::upload(&dev, &host);
        let stats = TableStats::gather(&gpu);
        (dev, host, gpu, stats)
    }

    #[test]
    fn time_selectivity_estimates_track_reality() {
        let (_dev, host, _gpu, stats) = setup(50_000);
        for target in [0.1, 0.5, 0.9] {
            let cutoff = host.time_cutoff_for_selectivity(target);
            let est = stats.selectivity(&FilterOp::TimeLess(cutoff));
            assert!((est - target).abs() < 0.05, "target={target} est={est}");
        }
        assert_eq!(stats.selectivity(&FilterOp::TimeLess(0)), 0.0);
    }

    #[test]
    fn lang_selectivity_estimates_track_reality() {
        let (_dev, host, _gpu, stats) = setup(50_000);
        let est = stats.selectivity(&FilterOp::LangIn(vec![0, 1]));
        let real = host.lang.iter().filter(|&&l| l <= 1).count() as f64 / host.len() as f64;
        assert!((est - real).abs() < 0.05, "est={est} real={real}");
    }

    #[test]
    fn plan_prefers_fusion_and_bitonic_over_sort() {
        let (_dev, host, gpu, stats) = setup(200_000);
        let cutoff = host.time_cutoff_for_selectivity(0.8);
        let plan = explain_filtered_topk(
            &simt::DeviceSpec::titan_x_maxwell(),
            &gpu,
            &stats,
            &FilterOp::TimeLess(cutoff),
            50,
        );
        assert_eq!(plan.chosen(), Strategy::CombinedBitonic);
        // sort must be the most expensive
        assert_eq!(plan.costs.last().unwrap().strategy, Strategy::StageSort);
        let rendered = plan.render();
        assert!(rendered.contains("->"));
        assert!(rendered.contains("combined-bitonic"));
    }

    #[test]
    fn sharded_plan_golden_render() {
        use simt::topology::{Cluster, ClusterSpec};
        // unfiltered: selectivity is exactly 1.00 and every quantity in
        // the render is a deterministic function of (n, devices, k)
        let host = TweetTable::generate(4096, 3);
        let cluster = Cluster::new(ClusterSpec::pcie_node(2));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Range).unwrap();
        let plan = explain_sharded_topk(cluster.spec(), &table, None, 8);
        let golden = "shard plan (range over 2 devices, k=8, est. selectivity 1.00):\n\
                      \x20 shard 0: n=2048 ~2048 match -> 8 delegates (merge-resident)\n\
                      \x20 shard 1: n=2048 ~2048 match -> 8 delegates (ships 64 B)\n\
                      \x20 phase: filter scan      ~0.005 ms\n\
                      \x20 phase: local top-k      ~0.015 ms\n\
                      \x20 phase: delegate gather  64 B over host links ~0.010 ms\n\
                      \x20 phase: merge on dev0    ~0.010 ms\n\
                      \x20 total                   ~0.040 ms\n\
                      \x20 on fault: per-shard retry/degrade; a failed shard fails the query\n";
        assert_eq!(plan.render(), golden);
    }

    #[test]
    fn view_plan_golden_render() {
        use crate::stream::{TopKView, ViewConfig};
        use crate::Strategy;
        // deterministic watermarks: build over 2048 rows at epoch 0, then
        // explain against a table that grew to 2304 rows at epoch 1
        let dev = Device::titan_x();
        let host = TweetTable::generate(2048, 7);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, 4096);
        let sql = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 12";
        let view = TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default()).unwrap();
        view.refresh(&dev, &gpu).unwrap();
        let batch = TweetTable::generate_at(256, 9, 2048);
        gpu.append_batch(&dev, &batch).unwrap();

        let plan = explain_view(&view, gpu.len(), gpu.epoch(), None);
        let golden = "view plan (k=12):\n\
                      \x20 query:    SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 12\n\
                      \x20 standing: 2048 rows folded @ epoch 0\n\
                      \x20 table:    2304 rows @ epoch 1 (delta 256 rows, 12.5% of folded; \
                      rescan above 50.0%)\n\
                      \x20 -> delta-merge: top-k over the delta slice + bitonic run-merge \
                      into the standing run\n";
        assert_eq!(plan.render(), golden);

        // a serving-layer cache entry at the current epoch outranks the
        // view's own maintenance decision
        let hit = explain_view(&view, gpu.len(), gpu.epoch(), Some(gpu.epoch()));
        assert_eq!(hit.mode, "cache-hit");
        assert!(hit
            .render()
            .contains("-> cache-hit: serve the epoch-tagged cached result, zero launches"));
        let stale = explain_view(&view, gpu.len(), gpu.epoch(), Some(0));
        assert_eq!(stale.mode, "delta-merge");

        // after the refresh the plan reports currency
        view.refresh(&dev, &gpu).unwrap();
        let cur = explain_view(&view, gpu.len(), gpu.epoch(), None);
        assert_eq!(cur.mode, "current");
        assert_eq!(cur.delta_rows(), 0);
    }

    #[test]
    fn delegate_plan_golden_render() {
        // pure function of (spec, n, k): the golden string pins the
        // phase structure and the deterministic cost model output
        let plan = explain_delegate_topk(
            &simt::DeviceSpec::titan_x_maxwell(),
            1 << 22,
            64,
            8,
            &ReductionProfile::UniformFloats,
        );
        assert_eq!(plan.phases.num_subranges, 2048);
        assert_eq!(plan.phases.contributing, 64);
        let golden =
            "delegate plan (n=4194304, k=64, subrange 2048 -> 2048 delegates, ~64 contributing):\n\
             \x20 phase: threshold scan   ~0.005 ms\n\
             \x20 phase: delegate top-k   ~0.015 ms\n\
             \x20 phase: refine subranges ~0.009 ms\n\
             \x20 phase: merge runs       ~0.015 ms\n\
             \x20 total (warm index)      ~0.045 ms\n\
             \x20 cold: +1 extraction pass over n (index cached on the buffer until it mutates)\n";
        assert_eq!(plan.render(), golden);
    }

    #[test]
    fn delegate_plan_degrades_on_adversarial_profile() {
        let spec = simt::DeviceSpec::titan_x_maxwell();
        let uni = explain_delegate_topk(&spec, 1 << 22, 64, 8, &ReductionProfile::UniformFloats);
        let bk = explain_delegate_topk(&spec, 1 << 22, 64, 8, &ReductionProfile::BucketKiller);
        assert_eq!(bk.phases.contributing, bk.phases.num_subranges);
        assert!(bk.phases.total_seconds > uni.phases.total_seconds);
        assert!(bk.render().contains("2048 contributing"));
    }

    #[test]
    fn sharded_plan_prices_filter_and_gather() {
        use simt::topology::{Cluster, ClusterSpec};
        let host = TweetTable::generate(20_000, 11);
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash).unwrap();
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let plan = explain_sharded_topk(
            cluster.spec(),
            &table,
            Some(&FilterOp::TimeLess(cutoff)),
            16,
        );
        assert!(
            (plan.selectivity - 0.3).abs() < 0.05,
            "{}",
            plan.selectivity
        );
        // three non-resident shards ship k delegates each
        assert_eq!(plan.candidate_bytes, 3 * 16 * 8);
        assert!(plan.scan_seconds > 0.0);
        assert!(plan.total_seconds() > plan.merge_seconds);
        // nvlink variant renders peer links and gathers faster
        let nv = Cluster::new(ClusterSpec::nvlink_node(4));
        let nv_table = ShardedTable::partition(&nv, &host, PartitionPolicy::Hash).unwrap();
        let nv_plan =
            explain_sharded_topk(nv.spec(), &nv_table, Some(&FilterOp::TimeLess(cutoff)), 16);
        assert!(nv_plan.render().contains("peer links"));
        assert!(nv_plan.transfer_seconds < plan.transfer_seconds);
    }

    #[test]
    fn chosen_strategy_is_actually_fastest() {
        let (dev, host, gpu, stats) = setup(1 << 17);
        let cutoff = host.time_cutoff_for_selectivity(0.6);
        let op = FilterOp::TimeLess(cutoff);
        let plan = explain_filtered_topk(dev.spec(), &gpu, &stats, &op, 50);
        let mut measured: Vec<(Strategy, f64)> = Strategy::all()
            .iter()
            .map(|&s| {
                (
                    s,
                    filtered_topk(&dev, &gpu, &op, 50, s)
                        .unwrap()
                        .kernel_time
                        .seconds(),
                )
            })
            .collect();
        measured.sort_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(
            plan.chosen(),
            measured[0].0,
            "plan={plan:?} measured={measured:?}"
        );
    }
}
