//! A small SQL front-end for the query shapes the engine supports — the
//! "integration into existing systems" demonstration (paper Section 5
//! frames the top-k kernel as a drop-in physical operator behind SQL).
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```sql
//! SELECT id FROM tweets
//!   [WHERE tweet_time < <number> | WHERE lang = '<code>' [OR lang = '<code>']…]
//!   ORDER BY retweet_count [+ <weight> * likes_count] [ASC | DESC]
//!   LIMIT <k>;
//!
//! SELECT uid, COUNT(*) FROM tweets
//!   GROUP BY uid ORDER BY COUNT(*) DESC LIMIT <k>;
//! ```
//!
//! `parse` produces a [`Query`]; [`execute`] runs it through
//! [`crate::queries`] with any [`Strategy`].

use simt::Device;

use crate::engine::{FilterOp, TopKStrategy};
use crate::error::QdbError;
use crate::queries::{
    filtered_bottomk, filtered_topk, group_topk, ranked_topk, QueryResult, Strategy,
};
use crate::table::GpuTweetTable;

/// Parse/validation errors with byte positions where sensible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Unexpected token (found, expected).
    Unexpected(String, &'static str),
    /// Input ended mid-statement.
    UnexpectedEnd(&'static str),
    /// A column or table name the engine does not know.
    Unknown(String),
    /// LIMIT must be a positive integer.
    BadLimit(String),
    /// Unsupported combination (e.g. GROUP BY with WHERE).
    Unsupported(&'static str),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Unexpected(got, want) => write!(f, "unexpected '{got}', expected {want}"),
            SqlError::UnexpectedEnd(want) => write!(f, "unexpected end of input, expected {want}"),
            SqlError::Unknown(name) => write!(f, "unknown identifier '{name}'"),
            SqlError::BadLimit(v) => write!(f, "LIMIT must be a positive integer, got '{v}'"),
            SqlError::Unsupported(what) => write!(f, "unsupported query shape: {what}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// What the query orders by.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderBy {
    /// `ORDER BY retweet_count DESC`.
    RetweetCount,
    /// `ORDER BY retweet_count + w * likes_count DESC`.
    Rank {
        /// The likes weight `w`.
        likes_weight: f32,
    },
    /// `ORDER BY COUNT(*) DESC` (group-by queries).
    Count,
}

/// A parsed, validated query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Optional predicate.
    pub filter: Option<FilterOp>,
    /// `GROUP BY uid` present?
    pub group_by_uid: bool,
    /// Ranking expression.
    pub order_by: OrderBy,
    /// `ORDER BY … ASC` — smallest-first. Only supported for the plain
    /// `retweet_count` ordering (the engine compiles one reversed kernel
    /// shape, like it compiles one ranking function).
    pub ascending: bool,
    /// LIMIT k.
    pub limit: usize,
}

/// Language code names accepted in `lang = '<code>'`.
fn lang_code(name: &str) -> Option<u8> {
    match name {
        "en" => Some(0),
        "es" => Some(1),
        "pt" => Some(2),
        "ja" => Some(3),
        "ar" => Some(4),
        "other" => Some(5),
        _ => None,
    }
}

/// Tokenizer: lowercased identifiers/keywords, numbers, quoted strings,
/// and single-character punctuation.
fn tokenize(sql: &str) -> Result<Vec<String>, SqlError> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(SqlError::UnexpectedEnd("closing quote")),
                    }
                }
                out.push(format!("'{s}'"));
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' {
                        s.push(ch.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(s);
            }
            '(' | ')' | ',' | ';' | '<' | '>' | '=' | '+' | '*' => {
                out.push(c.to_string());
                chars.next();
            }
            other => return Err(SqlError::Unexpected(other.to_string(), "a SQL token")),
        }
    }
    Ok(out)
}

/// Cursor over tokens with expectation helpers.
struct Cursor {
    toks: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(|s| s.as_str())
    }
    fn next(&mut self, want: &'static str) -> Result<&str, SqlError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or(SqlError::UnexpectedEnd(want))?;
        self.pos += 1;
        Ok(t)
    }
    fn expect(&mut self, kw: &'static str) -> Result<(), SqlError> {
        let t = self.next(kw)?;
        if t == kw {
            Ok(())
        } else {
            Err(SqlError::Unexpected(t.to_string(), kw))
        }
    }
    fn eat(&mut self, kw: &str) -> bool {
        if self.peek() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// A parsed top-level statement: a query, or a query wrapped in one of
/// the `EXPLAIN` modes.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain `SELECT …` — execute it.
    Select(Query),
    /// `EXPLAIN SELECT …` — price the strategies with the catalog
    /// statistics and cost models (see [`crate::explain`]); nothing runs.
    Explain(Query),
    /// `EXPLAIN SANITIZE SELECT …` — actually run the query with the
    /// device sanitizer enabled and report every kernel launch's
    /// racecheck/memcheck/initcheck/perf findings (see
    /// [`explain_sanitize`]). Modeled on `EXPLAIN ANALYZE`: the query
    /// executes for real.
    ExplainSanitize(Query),
    /// `EXPLAIN LINT SELECT …` — statically analyze every kernel launch
    /// plan the query would make and report the `simt::lint` verdicts:
    /// launch validity, occupancy bound, predicted coalescing and bank
    /// behavior, bounds proofs (see [`explain_lint`]). The plans come
    /// from a real execution (the plan shape is data-dependent), but
    /// each verdict is computed before its launch runs a single step.
    ExplainLint(Query),
}

/// Parses one top-level statement, including the `EXPLAIN`,
/// `EXPLAIN SANITIZE` and `EXPLAIN LINT` prefixes.
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let mut c = Cursor {
        toks: tokenize(sql)?,
        pos: 0,
    };
    if c.eat("explain") {
        if c.eat("sanitize") {
            Ok(Statement::ExplainSanitize(parse_query(&mut c)?))
        } else if c.eat("lint") {
            Ok(Statement::ExplainLint(parse_query(&mut c)?))
        } else {
            Ok(Statement::Explain(parse_query(&mut c)?))
        }
    } else {
        Ok(Statement::Select(parse_query(&mut c)?))
    }
}

/// Parses one `SELECT` statement.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let mut c = Cursor {
        toks: tokenize(sql)?,
        pos: 0,
    };
    parse_query(&mut c)
}

/// Parses a `SELECT …` from the cursor position to the end.
fn parse_query(c: &mut Cursor) -> Result<Query, SqlError> {
    c.expect("select")?;

    // select list: `id` or `uid , count ( * )`
    let first = c.next("a select column")?.to_string();
    let group_query = match first.as_str() {
        "id" => false,
        "uid" => {
            c.expect(",")?;
            let agg = c.next("COUNT(*)")?.to_string();
            if agg != "count" {
                return Err(SqlError::Unexpected(agg, "COUNT(*)"));
            }
            c.expect("(")?;
            c.eat("*");
            c.expect(")")?;
            // optional `AS alias`
            if c.eat("as") {
                c.next("an alias")?;
            }
            true
        }
        other => return Err(SqlError::Unknown(other.to_string())),
    };

    c.expect("from")?;
    let table = c.next("a table name")?.to_string();
    if table != "tweets" {
        return Err(SqlError::Unknown(table));
    }

    // WHERE
    let mut filter = None;
    if c.eat("where") {
        if group_query {
            return Err(SqlError::Unsupported("GROUP BY with WHERE"));
        }
        let col = c.next("a predicate column")?.to_string();
        match col.as_str() {
            "tweet_time" => {
                c.expect("<")?;
                let num = c.next("a number")?.to_string();
                let cutoff: u32 = num
                    .parse()
                    .map_err(|_| SqlError::Unexpected(num, "a number"))?;
                filter = Some(FilterOp::TimeLess(cutoff));
            }
            "lang" => {
                let mut langs = Vec::new();
                loop {
                    c.expect("=")?;
                    let lit = c.next("a quoted language code")?.to_string();
                    let name = lit
                        .strip_prefix('\'')
                        .and_then(|s| s.strip_suffix('\''))
                        .ok_or_else(|| SqlError::Unexpected(lit.clone(), "a quoted string"))?;
                    langs.push(lang_code(name).ok_or_else(|| SqlError::Unknown(name.to_string()))?);
                    if c.eat("or") {
                        let col2 = c.next("lang")?.to_string();
                        if col2 != "lang" {
                            return Err(SqlError::Unexpected(col2, "lang"));
                        }
                    } else {
                        break;
                    }
                }
                filter = Some(FilterOp::LangIn(langs));
            }
            other => return Err(SqlError::Unknown(other.to_string())),
        }
    }

    // GROUP BY
    let mut group_by_uid = false;
    if c.eat("group") {
        c.expect("by")?;
        let col = c.next("uid")?.to_string();
        if col != "uid" {
            return Err(SqlError::Unknown(col));
        }
        group_by_uid = true;
    }
    if group_query != group_by_uid {
        return Err(SqlError::Unsupported(
            "SELECT uid, COUNT(*) requires GROUP BY uid (and vice versa)",
        ));
    }

    // ORDER BY
    c.expect("order")?;
    c.expect("by")?;
    let order_by = if group_by_uid {
        let t = c.next("COUNT(*) or the alias")?.to_string();
        match t.as_str() {
            "count" => {
                c.expect("(")?;
                c.eat("*");
                c.expect(")")?;
            }
            _ if t.chars().all(|ch| ch.is_alphanumeric() || ch == '_') => {} // alias
            _ => return Err(SqlError::Unexpected(t, "COUNT(*)")),
        }
        OrderBy::Count
    } else {
        let col = c.next("retweet_count")?.to_string();
        if col != "retweet_count" {
            return Err(SqlError::Unknown(col));
        }
        if c.eat("+") {
            let w = c.next("a weight")?.to_string();
            let weight: f32 = w.parse().map_err(|_| SqlError::Unexpected(w, "a number"))?;
            c.expect("*")?;
            let col2 = c.next("likes_count")?.to_string();
            if col2 != "likes_count" {
                return Err(SqlError::Unknown(col2));
            }
            OrderBy::Rank {
                likes_weight: weight,
            }
        } else {
            OrderBy::RetweetCount
        }
    };
    let dir = c.next("ASC or DESC")?.to_string();
    let ascending = match dir.as_str() {
        "desc" => false,
        "asc" => true,
        other => return Err(SqlError::Unexpected(other.to_string(), "ASC or DESC")),
    };
    if ascending && order_by != OrderBy::RetweetCount {
        return Err(SqlError::Unsupported(
            "ASC is only supported for ORDER BY retweet_count",
        ));
    }

    // LIMIT
    c.expect("limit")?;
    let lim = c.next("a limit")?.to_string();
    let limit: usize = lim.parse().map_err(|_| SqlError::BadLimit(lim.clone()))?;
    if limit == 0 {
        return Err(SqlError::BadLimit(lim));
    }
    c.eat(";");
    if let Some(extra) = c.peek() {
        return Err(SqlError::Unexpected(extra.to_string(), "end of statement"));
    }

    Ok(Query {
        filter,
        group_by_uid,
        order_by,
        ascending,
        limit,
    })
}

/// Executes a parsed query with the given strategy.
///
/// Rank queries with a non-default weight are evaluated with the generic
/// ranking pipeline only when the weight matches the engine's built-in
/// `0.5` (the paper's Q2); other weights return
/// [`SqlError::Unsupported`] (wrapped in [`QdbError::Parse`]) — the
/// engine compiles one ranking function, like the paper's fused kernel
/// does. Device faults surface as [`QdbError::DeviceFault`]; nothing on
/// this path panics.
pub fn execute(
    dev: &Device,
    table: &GpuTweetTable,
    q: &Query,
    strategy: Strategy,
) -> Result<QueryResult, QdbError> {
    match (&q.order_by, q.group_by_uid) {
        (OrderBy::Count, true) => {
            let topk = if strategy == Strategy::StageSort {
                TopKStrategy::Sort
            } else {
                TopKStrategy::Bitonic
            };
            group_topk(dev, table, q.limit, topk)
        }
        (OrderBy::RetweetCount, false) => {
            let op = q.filter.clone().unwrap_or(FilterOp::TimeLess(u32::MAX));
            if q.ascending {
                filtered_bottomk(dev, table, &op, q.limit, strategy)
            } else {
                filtered_topk(dev, table, &op, q.limit, strategy)
            }
        }
        (OrderBy::Rank { likes_weight }, false) => {
            if (likes_weight - 0.5).abs() > 1e-9 {
                return Err(SqlError::Unsupported("ranking weight other than 0.5").into());
            }
            if q.filter.is_some() {
                return Err(SqlError::Unsupported("WHERE combined with a ranking function").into());
            }
            ranked_topk(dev, table, q.limit, strategy)
        }
        _ => Err(SqlError::Unsupported("this SELECT/GROUP BY combination").into()),
    }
}

/// The output of `EXPLAIN SANITIZE`: the query's real result plus one
/// [`simt::SanitizerReport`] per kernel launch it performed.
#[derive(Debug, Clone)]
pub struct SanitizedQuery {
    /// The executed query's result (the query really runs, like
    /// `EXPLAIN ANALYZE`).
    pub result: QueryResult,
    /// Sanitizer reports for every launch, in launch order.
    pub reports: Vec<simt::SanitizerReport>,
}

impl SanitizedQuery {
    /// True when no launch produced any finding.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.is_clean())
    }

    /// Total error-severity findings across all launches.
    pub fn error_count(&self) -> usize {
        self.reports.iter().map(|r| r.error_count()).sum()
    }

    /// Renders an `EXPLAIN SANITIZE` summary: one line per clean launch,
    /// the full sanitizer report for any launch with findings.
    pub fn render(&self) -> String {
        let warnings: usize = self.reports.iter().map(|r| r.warning_count()).sum();
        let mut s = format!(
            "EXPLAIN SANITIZE: {} launch(es), {} error(s), {} warning(s)\n",
            self.reports.len(),
            self.error_count(),
            warnings
        );
        for rep in &self.reports {
            if rep.is_clean() {
                s.push_str(&format!(
                    "  `{}` (grid {} x block {}): clean\n",
                    rep.kernel, rep.grid_dim, rep.block_dim
                ));
            } else {
                for line in rep.render().lines() {
                    s.push_str("  ");
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
        s
    }

    /// The launches' findings as a JSON array (the same schema as
    /// [`simt::sanitize::reports_to_json`]).
    pub fn to_json(&self) -> String {
        simt::sanitize::reports_to_json(&self.reports)
    }
}

/// Executes `q` with the device sanitizer enabled for the duration and
/// returns the result together with per-launch sanitizer reports — the
/// engine's `EXPLAIN SANITIZE` mode.
///
/// The device's prior sanitizer enable/disable state is restored
/// afterwards. The returned reports also stay in the device's own report
/// log (`Device::sanitizer_reports`), which is left otherwise untouched.
pub fn explain_sanitize(
    dev: &Device,
    table: &GpuTweetTable,
    q: &Query,
    strategy: Strategy,
) -> Result<SanitizedQuery, QdbError> {
    let was_enabled = dev.sanitizer_enabled();
    if !was_enabled {
        dev.enable_sanitizer();
    }
    let before = dev.sanitizer_reports().len();
    let result = execute(dev, table, q, strategy);
    let reports = dev.sanitizer_reports().split_off(before);
    if !was_enabled {
        dev.disable_sanitizer();
    }
    Ok(SanitizedQuery {
        result: result?,
        reports,
    })
}

/// The output of `EXPLAIN LINT`: the query's real result plus one
/// static [`simt::LintReport`] per kernel launch its plan made — every
/// verdict computed from the declared access-spec contract before the
/// launch executed a single simulated step.
#[derive(Debug, Clone)]
pub struct LintedQuery {
    /// The executed query's result (execution enumerates the
    /// data-dependent plan; the lint itself never looks at the data).
    pub result: QueryResult,
    /// Static lint reports for every launch, in launch order.
    pub reports: Vec<simt::LintReport>,
}

impl LintedQuery {
    /// True when no launch produced any finding (waived warnings count
    /// as clean).
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.is_clean())
    }

    /// Total error-severity findings across all launches.
    pub fn error_count(&self) -> usize {
        self.reports.iter().map(|r| r.error_count()).sum()
    }

    /// Renders an `EXPLAIN LINT` summary: one line per clean launch
    /// (with its static occupancy and coalescing predictions), the full
    /// lint report for any launch with findings.
    pub fn render(&self) -> String {
        let warnings: usize = self.reports.iter().map(|r| r.warning_count()).sum();
        let mut s = format!(
            "EXPLAIN LINT: {} launch(es), {} error(s), {} warning(s)\n",
            self.reports.len(),
            self.error_count(),
            warnings
        );
        for rep in &self.reports {
            if rep.is_clean() {
                let pred = rep
                    .prediction
                    .as_ref()
                    .map(|p| {
                        format!(
                            ", predicted sectors/access {:.4}, conflict degree {:.4}",
                            p.sectors_per_access(),
                            p.avg_conflict_degree()
                        )
                    })
                    .unwrap_or_default();
                s.push_str(&format!(
                    "  `{}` (grid {} x block {}): clean (occupancy {:.3}{pred})\n",
                    rep.kernel, rep.grid_dim, rep.block_dim, rep.occupancy.occupancy
                ));
            } else {
                for line in rep.render().lines() {
                    s.push_str("  ");
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
        s
    }

    /// The launches' findings as a JSON array (the same schema as
    /// [`simt::lint::reports_to_json`]).
    pub fn to_json(&self) -> String {
        simt::lint::reports_to_json(&self.reports)
    }
}

/// Executes `q` with static lint capture enabled for the duration and
/// returns the result together with per-launch lint reports — the
/// engine's `EXPLAIN LINT` mode.
///
/// The device's prior lint enable/disable state is restored afterwards.
/// The returned reports also stay in the device's own report log
/// (`Device::lint_reports`), which is left otherwise untouched.
pub fn explain_lint(
    dev: &Device,
    table: &GpuTweetTable,
    q: &Query,
    strategy: Strategy,
) -> Result<LintedQuery, QdbError> {
    let was_enabled = dev.lint_enabled();
    if !was_enabled {
        dev.enable_lint();
    }
    let before = dev.lint_reports().len();
    let result = execute(dev, table, q, strategy);
    let reports = dev.lint_reports().split_off(before);
    if !was_enabled {
        dev.disable_lint();
    }
    Ok(LintedQuery {
        result: result?,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::twitter::TweetTable;

    #[test]
    fn parses_q1() {
        let q = parse(
            "SELECT id FROM tweets WHERE tweet_time < 123456 ORDER BY retweet_count DESC LIMIT 50",
        )
        .unwrap();
        assert_eq!(q.filter, Some(FilterOp::TimeLess(123456)));
        assert_eq!(q.order_by, OrderBy::RetweetCount);
        assert_eq!(q.limit, 50);
        assert!(!q.group_by_uid);
    }

    #[test]
    fn parses_q2_ranking() {
        let q = parse(
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.order_by, OrderBy::Rank { likes_weight: 0.5 });
        assert!(q.filter.is_none());
    }

    #[test]
    fn parses_q3_lang_disjunction() {
        let q = parse(
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' ORDER BY retweet_count DESC LIMIT 7",
        )
        .unwrap();
        assert_eq!(q.filter, Some(FilterOp::LangIn(vec![0, 1])));
    }

    #[test]
    fn parses_q4_group_by() {
        let q = parse(
            "SELECT uid, COUNT(*) AS num_tweets FROM tweets GROUP BY uid ORDER BY num_tweets DESC LIMIT 50",
        )
        .unwrap();
        assert!(q.group_by_uid);
        assert_eq!(q.order_by, OrderBy::Count);
        // and the COUNT(*) spelling in ORDER BY works too
        let q2 =
            parse("SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50")
                .unwrap();
        assert_eq!(q2.order_by, OrderBy::Count);
    }

    #[test]
    fn parses_asc_and_rejects_it_off_retweet_count() {
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 5").unwrap();
        assert!(q.ascending);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        assert!(!q.ascending);
        assert!(matches!(
            parse("SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) ASC LIMIT 5"),
            Err(SqlError::Unsupported(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count ASC LIMIT 5"),
            Err(SqlError::Unsupported(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets ORDER BY retweet_count sideways LIMIT 5"),
            Err(SqlError::Unexpected(..))
        ));
    }

    #[test]
    fn asc_executes_as_bottom_k() {
        let host = TweetTable::generate(8_000, 126);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 10").unwrap();
        let r = execute(&dev, &table, &q, Strategy::StageBitonic).unwrap();
        let mut expect: Vec<u32> = host.retweet_count.clone();
        expect.sort_unstable();
        expect.truncate(10);
        let keys: Vec<u32> = r
            .ids
            .iter()
            .map(|&id| host.retweet_count[id as usize])
            .collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select ID from TWEETS order by RETWEET_COUNT desc limit 3").unwrap();
        assert_eq!(q.limit, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("DROP TABLE tweets"),
            Err(SqlError::Unexpected(..))
        ));
        assert!(matches!(
            parse("SELECT id FROM users ORDER BY retweet_count DESC LIMIT 5"),
            Err(SqlError::Unknown(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 0"),
            Err(SqlError::BadLimit(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets ORDER BY retweet_count DESC"),
            Err(SqlError::UnexpectedEnd(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets WHERE lang='xx' ORDER BY retweet_count DESC LIMIT 5"),
            Err(SqlError::Unknown(_))
        ));
        assert!(matches!(
            parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5 extra"),
            Err(SqlError::Unexpected(..))
        ));
    }

    #[test]
    fn executes_all_four_paper_queries() {
        let host = TweetTable::generate(20_000, 123);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".into(),
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' ORDER BY retweet_count DESC LIMIT 30".into(),
            "SELECT uid, COUNT(*) AS num_tweets FROM tweets GROUP BY uid ORDER BY num_tweets DESC LIMIT 50".into(),
        ];
        for sql in &sqls {
            let q = parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            for strat in Strategy::all() {
                let r = execute(&dev, &table, &q, strat).unwrap();
                assert!(!r.ids.is_empty(), "{sql} via {}", strat.name());
                assert!(r.ids.len() <= q.limit);
            }
        }
    }

    #[test]
    fn sql_results_match_direct_api() {
        let host = TweetTable::generate(10_000, 124);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let q = parse(&format!(
            "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 25"
        ))
        .unwrap();
        let via_sql = execute(&dev, &table, &q, Strategy::CombinedBitonic).unwrap();
        let direct = filtered_topk(
            &dev,
            &table,
            &FilterOp::TimeLess(cutoff),
            25,
            Strategy::CombinedBitonic,
        )
        .unwrap();
        assert_eq!(via_sql.ids, direct.ids);
    }

    #[test]
    fn parses_explain_and_explain_sanitize_prefixes() {
        let sql = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5";
        assert!(matches!(
            parse_statement(sql).unwrap(),
            Statement::Select(_)
        ));
        match parse_statement(&format!("EXPLAIN {sql}")).unwrap() {
            Statement::Explain(q) => assert_eq!(q.limit, 5),
            other => panic!("expected Explain, got {other:?}"),
        }
        match parse_statement(&format!("explain sanitize {sql}")).unwrap() {
            Statement::ExplainSanitize(q) => assert_eq!(q.limit, 5),
            other => panic!("expected ExplainSanitize, got {other:?}"),
        }
        match parse_statement(&format!("EXPLAIN LINT {sql}")).unwrap() {
            Statement::ExplainLint(q) => assert_eq!(q.limit, 5),
            other => panic!("expected ExplainLint, got {other:?}"),
        }
        // the query inside the prefix is still fully validated
        assert!(parse_statement(
            "EXPLAIN SANITIZE SELECT id FROM nope ORDER BY retweet_count DESC LIMIT 5"
        )
        .is_err());
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn sanitizer_explain_sanitize_runs_clean_on_paper_queries() {
        let host = TweetTable::generate(20_000, 127);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let sqls = [
            format!("EXPLAIN SANITIZE SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
            "EXPLAIN SANITIZE SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".into(),
            "EXPLAIN SANITIZE SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50".into(),
        ];
        for sql in &sqls {
            let q = match parse_statement(sql).unwrap() {
                Statement::ExplainSanitize(q) => q,
                other => panic!("{sql}: parsed as {other:?}"),
            };
            for strat in Strategy::all() {
                let out = explain_sanitize(&dev, &table, &q, strat).unwrap();
                assert!(!out.result.ids.is_empty(), "{sql} via {}", strat.name());
                assert!(!out.reports.is_empty(), "{sql}: no launches sanitized");
                assert!(
                    out.is_clean(),
                    "{sql} via {}:\n{}",
                    strat.name(),
                    out.render()
                );
                assert!(out.render().contains("clean"));
            }
        }
        // the temporary enable did not stick
        assert!(!dev.sanitizer_enabled());
    }

    #[test]
    fn explain_lint_runs_clean_on_paper_queries() {
        let host = TweetTable::generate(20_000, 127);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.5);
        let sqls = [
            format!("EXPLAIN LINT SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
            "EXPLAIN LINT SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".into(),
            "EXPLAIN LINT SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50".into(),
        ];
        for sql in &sqls {
            let q = match parse_statement(sql).unwrap() {
                Statement::ExplainLint(q) => q,
                other => panic!("{sql}: parsed as {other:?}"),
            };
            for strat in Strategy::all() {
                let out = explain_lint(&dev, &table, &q, strat).unwrap();
                assert!(!out.result.ids.is_empty(), "{sql} via {}", strat.name());
                assert!(!out.reports.is_empty(), "{sql}: no launches linted");
                assert!(
                    out.is_clean(),
                    "{sql} via {}:\n{}",
                    strat.name(),
                    out.render()
                );
                // every launch carried an access-spec contract
                for rep in &out.reports {
                    assert!(
                        rep.prediction.is_some(),
                        "{sql} via {}: `{}` has no declared spec",
                        strat.name(),
                        rep.kernel
                    );
                }
                assert!(out.render().contains("clean"));
                assert!(out.to_json().starts_with('['));
            }
        }
        // the temporary enable did not stick
        assert!(!dev.lint_enabled());
    }

    #[test]
    fn explain_lint_restores_enabled_state() {
        let host = TweetTable::generate(2_000, 129);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        dev.enable_lint();
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        let out = explain_lint(&dev, &table, &q, Strategy::StageBitonic).unwrap();
        assert!(dev.lint_enabled(), "caller's enable must survive");
        // the device log retains the same launches the statement reported
        assert!(dev.lint_reports().len() >= out.reports.len());
    }

    #[test]
    fn sanitizer_explain_sanitize_restores_enabled_state() {
        let host = TweetTable::generate(2_000, 128);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        dev.enable_sanitizer();
        let q = parse("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5").unwrap();
        let out = explain_sanitize(&dev, &table, &q, Strategy::StageBitonic).unwrap();
        assert!(dev.sanitizer_enabled(), "caller's enable must survive");
        // the device log retains the same launches the statement reported
        assert!(dev.sanitizer_reports().len() >= out.reports.len());
        assert!(out.to_json().starts_with('['));
    }

    #[test]
    fn unsupported_shapes_error_cleanly() {
        let host = TweetTable::generate(1_000, 125);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let q =
            parse("SELECT id FROM tweets ORDER BY retweet_count + 0.9 * likes_count DESC LIMIT 5")
                .unwrap();
        assert!(matches!(
            execute(&dev, &table, &q, Strategy::StageBitonic),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
    }

    #[test]
    fn negative_parse_shapes_never_panic() {
        // malformed statements across every clause return typed errors
        let bad = [
            "",
            ";",
            "SELECT",
            "SELECT id",
            "SELECT id FROM",
            "SELECT id, uid FROM tweets ORDER BY retweet_count DESC LIMIT 5",
            "SELECT uid, COUNT(* FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5",
            "SELECT uid, COUNT(*) FROM tweets ORDER BY COUNT(*) DESC LIMIT 5",
            "SELECT id FROM tweets GROUP BY uid ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE tweet_time < abc ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE tweet_time > 5 ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE lang = en ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE lang = 'en' OR uid = 3 ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets WHERE uid = 3 ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY retweet_count + x * likes_count DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * uid DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT",
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT -3",
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 1.5",
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5 ; garbage",
            "SELECT id FROM tweets WHERE lang = 'en ORDER BY retweet_count DESC LIMIT 5",
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5 #",
        ];
        for sql in bad {
            assert!(parse(sql).is_err(), "{sql:?} must fail to parse");
            assert!(parse_statement(sql).is_err(), "{sql:?} must fail to parse");
        }
    }
}
