//! Device-resident tweet table.

use datagen::twitter::TweetTable;
use simt::{Device, GpuBuffer};

/// The Twitter table of Section 6.8, uploaded column-by-column to the
/// simulated device.
pub struct GpuTweetTable {
    /// Tweet id column.
    pub id: GpuBuffer<u32>,
    /// Seconds since the start of the month.
    pub tweet_time: GpuBuffer<u32>,
    /// Retweet counts.
    pub retweet_count: GpuBuffer<u32>,
    /// Like counts.
    pub likes_count: GpuBuffer<u32>,
    /// Language codes (see `datagen::twitter`).
    pub lang: GpuBuffer<u8>,
    /// Author ids.
    pub uid: GpuBuffer<u32>,
    len: usize,
}

impl GpuTweetTable {
    /// Uploads a host-side table.
    pub fn upload(dev: &Device, t: &TweetTable) -> Self {
        Self {
            id: dev.upload(&t.id),
            tweet_time: dev.upload(&t.tweet_time),
            retweet_count: dev.upload(&t.retweet_count),
            likes_count: dev.upload(&t.likes_count),
            lang: dev.upload(&t.lang),
            uid: dev.upload(&t.uid),
            len: t.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_roundtrips() {
        let dev = Device::titan_x();
        let host = TweetTable::generate(1000, 1);
        let gpu = GpuTweetTable::upload(&dev, &host);
        assert_eq!(gpu.len(), 1000);
        assert!(!gpu.is_empty());
        assert_eq!(gpu.retweet_count.to_vec(), host.retweet_count);
        assert_eq!(gpu.lang.to_vec(), host.lang);
    }
}
