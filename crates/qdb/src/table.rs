//! Device-resident tweet table.

use datagen::twitter::TweetTable;
use simt::{Device, GpuBuffer};

/// The Twitter table of Section 6.8, uploaded column-by-column to the
/// simulated device.
pub struct GpuTweetTable {
    /// Tweet id column.
    pub id: GpuBuffer<u32>,
    /// Seconds since the start of the month.
    pub tweet_time: GpuBuffer<u32>,
    /// Retweet counts.
    pub retweet_count: GpuBuffer<u32>,
    /// Like counts.
    pub likes_count: GpuBuffer<u32>,
    /// Language codes (see `datagen::twitter`).
    pub lang: GpuBuffer<u8>,
    /// Author ids.
    pub uid: GpuBuffer<u32>,
    len: usize,
}

impl GpuTweetTable {
    /// Uploads a host-side table.
    pub fn upload(dev: &Device, t: &TweetTable) -> Self {
        Self {
            id: dev.upload(&t.id),
            tweet_time: dev.upload(&t.tweet_time),
            retweet_count: dev.upload(&t.retweet_count),
            likes_count: dev.upload(&t.likes_count),
            lang: dev.upload(&t.lang),
            uid: dev.upload(&t.uid),
            len: t.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The host-resident tweet table the CPU backend executes against —
/// reference-counted so handles are as cheap to clone as [`GpuBuffer`]s.
#[derive(Clone)]
pub struct CpuTweetTable {
    rows: std::rc::Rc<TweetTable>,
}

impl CpuTweetTable {
    /// Pins a host table for CPU execution (one copy; clones share it).
    pub fn load(t: &TweetTable) -> Self {
        Self {
            rows: std::rc::Rc::new(t.clone()),
        }
    }

    /// The underlying columns.
    pub fn rows(&self) -> &TweetTable {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A resident table on either execution backend — the table-level twin
/// of `topk::BackendBuffer`.
pub enum BackendTable {
    /// Columns in simulated device memory.
    Simt(GpuTweetTable),
    /// Columns in host memory.
    Cpu(CpuTweetTable),
}

impl BackendTable {
    /// Loads a host table onto the given backend.
    pub fn load(backend: &topk::ExecBackend<'_>, t: &TweetTable) -> Self {
        match backend {
            topk::ExecBackend::Simt(b) => BackendTable::Simt(GpuTweetTable::upload(b.device(), t)),
            topk::ExecBackend::Cpu(_) => BackendTable::Cpu(CpuTweetTable::load(t)),
        }
    }

    /// Which backend holds the columns.
    pub fn kind(&self) -> topk::BackendKind {
        match self {
            BackendTable::Simt(_) => topk::BackendKind::Simt,
            BackendTable::Cpu(_) => topk::BackendKind::Cpu,
        }
    }

    /// The device-resident table, when on the simulator.
    pub fn as_simt(&self) -> Option<&GpuTweetTable> {
        match self {
            BackendTable::Simt(t) => Some(t),
            BackendTable::Cpu(_) => None,
        }
    }

    /// The host-resident table, when on the CPU.
    pub fn as_cpu(&self) -> Option<&CpuTweetTable> {
        match self {
            BackendTable::Cpu(t) => Some(t),
            BackendTable::Simt(_) => None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            BackendTable::Simt(t) => t.len(),
            BackendTable::Cpu(t) => t.len(),
        }
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_table_loads_on_both_engines() {
        let host = TweetTable::generate(500, 2);
        let dev = Device::titan_x();
        let sim = BackendTable::load(&topk::ExecBackend::simt(&dev), &host);
        let cpu = BackendTable::load(&topk::ExecBackend::cpu(2), &host);
        assert_eq!(sim.len(), 500);
        assert_eq!(cpu.len(), 500);
        assert!(sim.as_simt().is_some() && sim.as_cpu().is_none());
        assert!(cpu.as_cpu().is_some() && cpu.as_simt().is_none());
        assert_eq!(cpu.as_cpu().unwrap().rows().uid, host.uid);
        assert_eq!(sim.kind(), topk::BackendKind::Simt);
        assert!(!cpu.is_empty());
    }

    #[test]
    fn upload_roundtrips() {
        let dev = Device::titan_x();
        let host = TweetTable::generate(1000, 1);
        let gpu = GpuTweetTable::upload(&dev, &host);
        assert_eq!(gpu.len(), 1000);
        assert!(!gpu.is_empty());
        assert_eq!(gpu.retweet_count.to_vec(), host.retweet_count);
        assert_eq!(gpu.lang.to_vec(), host.lang);
    }
}
