//! Device-resident tweet table.
//!
//! Tables are append-only streams: columns are allocated once (with
//! optional growth headroom), and [`GpuTweetTable::append_batch`] splices
//! arrival batches into the tail, charging the host→device transfer in
//! simulated time and bumping a monotonic **epoch**. Every derived
//! structure that must notice data arrival — materialized views, the
//! server result cache, delegate indexes attached via `attach_aux` —
//! keys its validity on that epoch (or on the buffers' contents
//! version, which every append also bumps).

use std::cell::Cell;

use datagen::twitter::TweetTable;
use simt::{Device, GpuBuffer, SimTime};
use topk::Backend as _;

use crate::error::QdbError;

/// Bytes per row on the wire: four u32 key columns, one u8 lang column,
/// and the u32 uid column (the same row size the sharded loader charges).
pub const ROW_BYTES: usize = 4 * 5 + 1;

/// The outcome of one append: what landed, what it cost on the wire,
/// and the table epoch after the splice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendReceipt {
    /// Rows appended.
    pub rows: usize,
    /// Payload bytes charged to the host→device link.
    pub bytes: usize,
    /// Modeled transfer time charged in `simt`.
    pub transfer_time: SimTime,
    /// The table epoch after this append.
    pub epoch: u64,
}

/// The Twitter table of Section 6.8, uploaded column-by-column to the
/// simulated device.
pub struct GpuTweetTable {
    /// Tweet id column.
    pub id: GpuBuffer<u32>,
    /// Seconds since the start of the month.
    pub tweet_time: GpuBuffer<u32>,
    /// Retweet counts.
    pub retweet_count: GpuBuffer<u32>,
    /// Like counts.
    pub likes_count: GpuBuffer<u32>,
    /// Language codes (see `datagen::twitter`).
    pub lang: GpuBuffer<u8>,
    /// Author ids.
    pub uid: GpuBuffer<u32>,
    len: Cell<usize>,
    cap: usize,
    epoch: Cell<u64>,
}

impl GpuTweetTable {
    /// Uploads a host-side table with zero growth headroom (columns
    /// sized exactly to the rows) — the frozen-table regime every
    /// one-shot query path uses.
    pub fn upload(dev: &Device, t: &TweetTable) -> Self {
        Self::upload_with_capacity(dev, t, t.len())
    }

    /// Uploads a host-side table into columns allocated for `cap_rows`
    /// rows, leaving `cap_rows - t.len()` rows of headroom for
    /// [`GpuTweetTable::append_batch`]. Kernels scan only the logical
    /// prefix, so the slack is invisible until an append claims it.
    pub fn upload_with_capacity(dev: &Device, t: &TweetTable, cap_rows: usize) -> Self {
        let cap = cap_rows.max(t.len());
        fn padded<T: simt::DeviceCopy>(dev: &Device, col: &[T], cap: usize) -> GpuBuffer<T> {
            let buf = dev.alloc::<T>(cap);
            buf.upload(col);
            buf
        }
        Self {
            id: padded(dev, &t.id, cap),
            tweet_time: padded(dev, &t.tweet_time, cap),
            retweet_count: padded(dev, &t.retweet_count, cap),
            likes_count: padded(dev, &t.likes_count, cap),
            lang: padded(dev, &t.lang, cap),
            uid: padded(dev, &t.uid, cap),
            len: Cell::new(t.len()),
            cap,
            epoch: Cell::new(0),
        }
    }

    /// Splices an arrival batch into the column tails, charges the
    /// host→device transfer against `dev`'s ingest ledger, and bumps
    /// the epoch. Shared-reference on purpose: servers and views hold
    /// `&GpuTweetTable` while data keeps arriving.
    ///
    /// Appends are the one mutation a resident table permits, and they
    /// bump every column's contents version — aux structures like the
    /// delegate index invalidate automatically (or are re-extended
    /// incrementally via `topk::delegate::extend_delegate_index`).
    pub fn append_batch(
        &self,
        dev: &Device,
        batch: &TweetTable,
    ) -> Result<AppendReceipt, QdbError> {
        if dev.is_down() {
            return Err(QdbError::DeviceFault {
                what: "append to a permanently lost device".to_string(),
                transient: false,
                attempts: 1,
                device: None,
            });
        }
        self.splice_rows(batch)?;
        let epoch = self.epoch.get();
        let bytes = batch.len() * ROW_BYTES;
        let transfer_time = dev.ingest_transfer(bytes, format!("append:epoch{epoch}"));
        Ok(AppendReceipt {
            rows: batch.len(),
            bytes,
            transfer_time,
            epoch,
        })
    }

    /// The splice without the ingest accounting: capacity-checks,
    /// overwrites the column tails, bumps the length and the epoch.
    /// The sharded append path charges its transfers on the cluster's
    /// interconnect instead of the single-device ingest ledger, so the
    /// data movement and its pricing are separated here.
    pub(crate) fn splice_rows(&self, batch: &TweetTable) -> Result<(), QdbError> {
        let old = self.len.get();
        let needed = old + batch.len();
        if needed > self.cap {
            return Err(QdbError::CapacityExceeded {
                needed,
                cap: self.cap,
            });
        }
        fn splice<T: simt::DeviceCopy>(buf: &GpuBuffer<T>, at: usize, tail: &[T]) {
            let mut col = buf.to_vec();
            col[at..at + tail.len()].copy_from_slice(tail);
            buf.upload(&col);
        }
        splice(&self.id, old, &batch.id);
        splice(&self.tweet_time, old, &batch.tweet_time);
        splice(&self.retweet_count, old, &batch.retweet_count);
        splice(&self.likes_count, old, &batch.likes_count);
        splice(&self.lang, old, &batch.lang);
        splice(&self.uid, old, &batch.uid);
        self.len.set(needed);
        self.epoch.set(self.epoch.get() + 1);
        Ok(())
    }

    /// Materializes rows `lo..hi` as a standalone, exactly-sized device
    /// table on `dev` — the delta sub-table streaming view maintenance
    /// scans. The rows are already resident, so the copy itself is
    /// functional-only (no wire charge); kernels over the slice then
    /// charge exactly the slice's rows, which is what makes delta
    /// maintenance `O(delta)` instead of `O(n)`.
    pub fn device_slice(&self, dev: &Device, lo: usize, hi: usize) -> GpuTweetTable {
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of the logical prefix"
        );
        fn col<T: simt::DeviceCopy>(
            dev: &Device,
            buf: &GpuBuffer<T>,
            lo: usize,
            hi: usize,
        ) -> GpuBuffer<T> {
            let out = dev.alloc::<T>(hi - lo);
            out.upload(&buf.read_range(lo..hi));
            out
        }
        GpuTweetTable {
            id: col(dev, &self.id, lo, hi),
            tweet_time: col(dev, &self.tweet_time, lo, hi),
            retweet_count: col(dev, &self.retweet_count, lo, hi),
            likes_count: col(dev, &self.likes_count, lo, hi),
            lang: col(dev, &self.lang, lo, hi),
            uid: col(dev, &self.uid, lo, hi),
            len: Cell::new(hi - lo),
            cap: hi - lo,
            epoch: Cell::new(0),
        }
    }

    /// Number of rows (the logical prefix kernels scan).
    pub fn len(&self) -> usize {
        self.len.get()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len.get() == 0
    }

    /// Rows the device columns were allocated for (append headroom is
    /// `capacity() - len()`).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Monotonic data epoch: 0 at load, +1 per completed append. Any
    /// result derived at epoch `e` is valid exactly while the table is
    /// still at `e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }
}

struct CpuTableInner {
    rows: std::cell::RefCell<TweetTable>,
    epoch: Cell<u64>,
}

/// The host-resident tweet table the CPU backend executes against —
/// reference-counted so handles are as cheap to clone as [`GpuBuffer`]s.
#[derive(Clone)]
pub struct CpuTweetTable {
    inner: std::rc::Rc<CpuTableInner>,
}

impl CpuTweetTable {
    /// Pins a host table for CPU execution (one copy; clones share it).
    pub fn load(t: &TweetTable) -> Self {
        Self {
            inner: std::rc::Rc::new(CpuTableInner {
                rows: std::cell::RefCell::new(t.clone()),
                epoch: Cell::new(0),
            }),
        }
    }

    /// The underlying columns.
    pub fn rows(&self) -> std::cell::Ref<'_, TweetTable> {
        self.inner.rows.borrow()
    }

    /// Appends an arrival batch. The CPU backend's twin of
    /// [`GpuTweetTable::append_batch`]: same epoch semantics, but host
    /// memory has no modeled wire so the transfer time is zero.
    pub fn append_batch(&self, batch: &TweetTable) -> AppendReceipt {
        self.inner.rows.borrow_mut().extend_from(batch);
        let epoch = self.inner.epoch.get() + 1;
        self.inner.epoch.set(epoch);
        AppendReceipt {
            rows: batch.len(),
            bytes: batch.len() * ROW_BYTES,
            transfer_time: SimTime::ZERO,
            epoch,
        }
    }

    /// Monotonic data epoch (see [`GpuTweetTable::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.get()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.rows.borrow().len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A resident table on either execution backend — the table-level twin
/// of `topk::BackendBuffer`.
pub enum BackendTable {
    /// Columns in simulated device memory.
    Simt(GpuTweetTable),
    /// Columns in host memory.
    Cpu(CpuTweetTable),
}

impl BackendTable {
    /// Loads a host table onto the given backend.
    pub fn load(backend: &topk::ExecBackend<'_>, t: &TweetTable) -> Self {
        Self::load_with_capacity(backend, t, t.len())
    }

    /// Loads a host table with append headroom on the simulator backend
    /// (the CPU backend's host vectors grow freely, so `cap_rows` only
    /// matters for device columns).
    pub fn load_with_capacity(
        backend: &topk::ExecBackend<'_>,
        t: &TweetTable,
        cap_rows: usize,
    ) -> Self {
        match backend {
            topk::ExecBackend::Simt(b) => {
                BackendTable::Simt(GpuTweetTable::upload_with_capacity(b.device(), t, cap_rows))
            }
            topk::ExecBackend::Cpu(_) => BackendTable::Cpu(CpuTweetTable::load(t)),
        }
    }

    /// Appends an arrival batch on whichever backend holds the columns.
    /// The backend must match the one the table was loaded on.
    pub fn append_batch(
        &self,
        backend: &topk::ExecBackend<'_>,
        batch: &TweetTable,
    ) -> Result<AppendReceipt, QdbError> {
        match (self, backend) {
            (BackendTable::Simt(t), topk::ExecBackend::Simt(b)) => {
                t.append_batch(b.device(), batch)
            }
            (BackendTable::Cpu(t), topk::ExecBackend::Cpu(_)) => Ok(t.append_batch(batch)),
            (t, _) => Err(topk::TopKError::BackendMismatch {
                backend: backend.kind().name(),
                buffer: t.kind().name(),
            }
            .into()),
        }
    }

    /// Monotonic data epoch (see [`GpuTweetTable::epoch`]).
    pub fn epoch(&self) -> u64 {
        match self {
            BackendTable::Simt(t) => t.epoch(),
            BackendTable::Cpu(t) => t.epoch(),
        }
    }

    /// Which backend holds the columns.
    pub fn kind(&self) -> topk::BackendKind {
        match self {
            BackendTable::Simt(_) => topk::BackendKind::Simt,
            BackendTable::Cpu(_) => topk::BackendKind::Cpu,
        }
    }

    /// The device-resident table, when on the simulator.
    pub fn as_simt(&self) -> Option<&GpuTweetTable> {
        match self {
            BackendTable::Simt(t) => Some(t),
            BackendTable::Cpu(_) => None,
        }
    }

    /// The host-resident table, when on the CPU.
    pub fn as_cpu(&self) -> Option<&CpuTweetTable> {
        match self {
            BackendTable::Cpu(t) => Some(t),
            BackendTable::Simt(_) => None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            BackendTable::Simt(t) => t.len(),
            BackendTable::Cpu(t) => t.len(),
        }
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_table_loads_on_both_engines() {
        let host = TweetTable::generate(500, 2);
        let dev = Device::titan_x();
        let sim = BackendTable::load(&topk::ExecBackend::simt(&dev), &host);
        let cpu = BackendTable::load(&topk::ExecBackend::cpu(2), &host);
        assert_eq!(sim.len(), 500);
        assert_eq!(cpu.len(), 500);
        assert!(sim.as_simt().is_some() && sim.as_cpu().is_none());
        assert!(cpu.as_cpu().is_some() && cpu.as_simt().is_none());
        assert_eq!(cpu.as_cpu().unwrap().rows().uid, host.uid);
        assert_eq!(sim.kind(), topk::BackendKind::Simt);
        assert!(!cpu.is_empty());
    }

    #[test]
    fn upload_roundtrips() {
        let dev = Device::titan_x();
        let host = TweetTable::generate(1000, 1);
        let gpu = GpuTweetTable::upload(&dev, &host);
        assert_eq!(gpu.len(), 1000);
        assert!(!gpu.is_empty());
        assert_eq!(gpu.capacity(), 1000);
        assert_eq!(gpu.epoch(), 0);
        assert_eq!(gpu.retweet_count.to_vec(), host.retweet_count);
        assert_eq!(gpu.lang.to_vec(), host.lang);
    }

    #[test]
    fn append_splices_bumps_epoch_and_charges_the_wire() {
        let dev = Device::titan_x();
        let mut host = TweetTable::generate(1000, 1);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, 1500);
        assert_eq!(gpu.capacity(), 1500);

        let batch = TweetTable::generate_at(300, 7, host.len() as u32);
        let ingests_before = dev.ingest_len();
        let r = gpu.append_batch(&dev, &batch).expect("headroom available");
        assert_eq!(r.rows, 300);
        assert_eq!(r.bytes, 300 * ROW_BYTES);
        assert_eq!(r.epoch, 1);
        assert!(r.transfer_time > SimTime::ZERO);
        assert_eq!(dev.ingest_len(), ingests_before + 1);
        assert_eq!(gpu.len(), 1300);
        assert_eq!(gpu.epoch(), 1);

        // the device columns now match the concatenated host table
        host.extend_from(&batch);
        assert_eq!(gpu.retweet_count.read_range(0..1300), host.retweet_count);
        assert_eq!(gpu.id.read_range(0..1300), host.id);

        // overflow is a typed error and changes nothing
        let big = TweetTable::generate_at(500, 9, host.len() as u32);
        match gpu.append_batch(&dev, &big) {
            Err(QdbError::CapacityExceeded { needed, cap }) => {
                assert_eq!((needed, cap), (1800, 1500));
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        assert_eq!(gpu.len(), 1300);
        assert_eq!(gpu.epoch(), 1);
    }

    #[test]
    fn appends_work_on_both_backends_and_track_epochs() {
        let host = TweetTable::generate(400, 3);
        let batch = TweetTable::generate_at(100, 4, 400);
        let dev = Device::titan_x();
        let sim_be = topk::ExecBackend::simt(&dev);
        let cpu_be = topk::ExecBackend::cpu(2);
        let sim = BackendTable::load_with_capacity(&sim_be, &host, 600);
        let cpu = BackendTable::load(&cpu_be, &host);
        assert_eq!((sim.epoch(), cpu.epoch()), (0, 0));
        sim.append_batch(&sim_be, &batch).expect("simt append");
        cpu.append_batch(&cpu_be, &batch).expect("cpu append");
        assert_eq!((sim.epoch(), cpu.epoch()), (1, 1));
        assert_eq!(sim.len(), 500);
        assert_eq!(cpu.len(), 500);
        assert_eq!(cpu.as_cpu().unwrap().rows().id[499], 499);
        // a backend mismatch is typed, not a panic
        assert!(sim.append_batch(&cpu_be, &batch).is_err());
    }
}
