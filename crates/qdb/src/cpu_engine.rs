//! The CPU query engine: the real multi-threaded execution path behind
//! `qdb::backend::execute_on` for [`CpuBackend`](topk::CpuBackend).
//!
//! Same physical plan as the simulated engine — columnar scan + filter
//! producing `(key, id)` pairs, ranking-function projection, hash
//! group-by count, then a top-k operator — but every stage runs on real
//! cores with `std::thread::scope` chunk parallelism and is priced in
//! wall-clock. Results match the simulator by key signature: the same
//! `(key, row id)` tie-break (`Kv`'s `item_lt`), the same deterministic
//! group ordering, the same ASC handling via the zero-copy `Rev` view.

use std::collections::HashMap;
use std::time::Instant;

use datagen::twitter::TweetTable;
use datagen::{rev_slice, Kv};
use topk_cpu::{CpuBitonic, CpuSort, CpuTopK};

use crate::engine::FilterOp;
use crate::error::QdbError;
use crate::queries::Strategy;
use crate::sql::{OrderBy, Query, SqlError};

/// One CPU query outcome: ranked ids plus the per-stage wall-clock
/// breakdown in milliseconds.
pub(crate) struct CpuQueryOutput {
    pub ids: Vec<u32>,
    pub stages: Vec<(String, f64)>,
}

/// Splits `0..n` into at most `threads` contiguous chunks and maps each
/// on its own scoped thread, returning per-chunk outputs in row order —
/// the scan-stage skeleton every query shape shares.
fn par_chunks<R: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(std::ops::Range<usize>) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1);
    if threads == 1 || n < 4 * threads {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<_> = (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(|| f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
}

/// The top-k operator for a strategy: full sort for `StageSort` (the
/// MapD-style baseline), the Appendix C bitonic port otherwise — the CPU
/// counterparts of the simulated engine's `TopKStrategy` mapping.
pub(crate) fn strategy_topk<T: datagen::TopKItem>(
    strategy: Strategy,
    items: &[T],
    k: usize,
    threads: usize,
) -> Vec<T> {
    if items.is_empty() {
        return Vec::new();
    }
    let k = k.min(items.len());
    match strategy {
        Strategy::StageSort => CpuSort.topk(items, k, threads),
        _ => CpuBitonic::default().topk(items, k, threads),
    }
}

/// Executes a validated query against a host-resident table with real
/// `threads`-way parallelism. Mirrors the simulated engine's supported
/// shapes exactly, including its typed rejections (ranking weight other
/// than 0.5, WHERE combined with ranking).
pub(crate) fn execute_cpu(
    t: &TweetTable,
    q: &Query,
    strategy: Strategy,
    threads: usize,
) -> Result<CpuQueryOutput, QdbError> {
    let n = t.len();
    if n == 0 {
        return Err(QdbError::EmptyTable);
    }
    let mut stages = Vec::new();
    match (&q.order_by, q.group_by_uid) {
        (OrderBy::Count, true) => {
            let scan = Instant::now();
            let partials = par_chunks(n, threads, |r| {
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for row in r {
                    *counts.entry(t.uid[row]).or_insert(0) += 1;
                }
                counts
            });
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for p in partials {
                for (uid, c) in p {
                    *counts.entry(uid).or_insert(0) += c;
                }
            }
            let mut groups: Vec<Kv<u32>> =
                counts.into_iter().map(|(uid, c)| Kv::new(c, uid)).collect();
            // HashMap iteration order is not deterministic; fix it so the
            // id tie-break sees the same candidate order everywhere
            groups.sort_unstable_by_key(|kv| kv.value);
            stages.push(("cpu_group_count".to_string(), ms(scan)));
            let sel = Instant::now();
            let top = strategy_topk(strategy, &groups, q.limit, threads);
            stages.push(("cpu_topk".to_string(), ms(sel)));
            Ok(CpuQueryOutput {
                ids: top.iter().map(|kv| kv.value).collect(),
                stages,
            })
        }
        (OrderBy::Rank { likes_weight }, false) => {
            if (likes_weight - 0.5).abs() > 1e-9 {
                return Err(SqlError::Unsupported("ranking weight other than 0.5").into());
            }
            if q.filter.is_some() {
                return Err(SqlError::Unsupported("WHERE combined with a ranking function").into());
            }
            let w = *likes_weight;
            let scan = Instant::now();
            let partials = par_chunks(n, threads, |r| {
                r.map(|row| {
                    let rank = t.retweet_count[row] as f32 + w * t.likes_count[row] as f32;
                    Kv::new(rank, t.id[row])
                })
                .collect::<Vec<_>>()
            });
            let items: Vec<Kv<f32>> = partials.into_iter().flatten().collect();
            stages.push(("cpu_project_rank".to_string(), ms(scan)));
            let sel = Instant::now();
            let top = strategy_topk(strategy, &items, q.limit, threads);
            stages.push(("cpu_topk".to_string(), ms(sel)));
            Ok(CpuQueryOutput {
                ids: top.iter().map(|kv| kv.value).collect(),
                stages,
            })
        }
        (OrderBy::RetweetCount, false) => {
            let op = q.filter.clone().unwrap_or(FilterOp::TimeLess(u32::MAX));
            let scan = Instant::now();
            let partials = par_chunks(n, threads, |r| {
                r.filter(|&row| op.matches_row(t.tweet_time[row], t.lang[row]))
                    .map(|row| Kv::new(t.retweet_count[row], t.id[row]))
                    .collect::<Vec<_>>()
            });
            let items: Vec<Kv<u32>> = partials.into_iter().flatten().collect();
            stages.push(("cpu_filter".to_string(), ms(scan)));
            let sel = Instant::now();
            let ids: Vec<u32> = if q.ascending {
                // the order-reversed view, same as the device path
                strategy_topk(strategy, &rev_slice(&items), q.limit, threads)
                    .iter()
                    .map(|kv| kv.0.value)
                    .collect()
            } else {
                strategy_topk(strategy, &items, q.limit, threads)
                    .iter()
                    .map(|kv| kv.value)
                    .collect()
            };
            stages.push(("cpu_topk".to_string(), ms(sel)));
            Ok(CpuQueryOutput { ids, stages })
        }
        _ => Err(SqlError::Unsupported("this SELECT/GROUP BY combination").into()),
    }
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    #[test]
    fn parallel_scan_matches_single_threaded() {
        let t = TweetTable::generate(30_000, 55);
        let sqls = [
            "SELECT id FROM tweets WHERE tweet_time < 1500000 ORDER BY retweet_count DESC LIMIT 40".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 25".into(),
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' ORDER BY retweet_count ASC LIMIT 15".into(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50".into(),
        ];
        for sql in &sqls {
            let q = parse(sql).unwrap();
            let single = execute_cpu(&t, &q, Strategy::StageBitonic, 1).unwrap();
            let multi = execute_cpu(&t, &q, Strategy::StageBitonic, 8).unwrap();
            assert_eq!(single.ids, multi.ids, "{sql}");
            assert!(!multi.stages.is_empty());
        }
    }

    #[test]
    fn mirrors_simulated_engine_rejections() {
        let t = TweetTable::generate(100, 1);
        let q =
            parse("SELECT id FROM tweets ORDER BY retweet_count + 0.9 * likes_count DESC LIMIT 5")
                .unwrap();
        assert!(matches!(
            execute_cpu(&t, &q, Strategy::StageBitonic, 2),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
    }
}
