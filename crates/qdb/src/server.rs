//! Concurrent query serving: a batching scheduler over simt streams.
//!
//! The paper's integration argument (Section 5) is that top-k belongs
//! *inside* the database as a physical operator. A real database does not
//! run one query at a time, though — it serves a queue of concurrent
//! queries, and a single small top-k query comes nowhere near filling the
//! device (a `k = 50` query over a few tens of thousands of rows runs a
//! handful of one- and few-block kernels). This module closes that gap
//! with the two classic GPU serving tricks:
//!
//! * **streams** — each admitted query issues its kernels on its own simt
//!   stream, so independent queries overlap on the device timeline and
//!   small kernels fill SMs that one query would leave idle;
//! * **batch coalescing** — compatible small queries (plain
//!   `ORDER BY retweet_count DESC` shapes) have their filter outputs
//!   packed into one `rows × cols` matrix and their ORDER BY/LIMIT stages
//!   replaced by a *single* [`batched_bitonic_topk`] launch, one block
//!   per query, amortizing launch overhead across the whole batch.
//!
//! [`Server::submit`] parses and admits a SQL query; [`Server::drain`]
//! executes everything admitted since the last drain and returns a
//! [`LoadReport`] with per-query results, queue/execution/total latency
//! per query, percentile summaries, achieved queries/sec, and a
//! multi-stream chrome trace of the whole drain.

use std::collections::HashMap;

use datagen::{Kv, TopKItem};
use simt::{
    chrome_trace_streams, BlockCtx, Device, GpuBuffer, Kernel, SimTime, Stream, StreamSchedule,
};
use sortnet::next_pow2;
use topk::batched::{batched_bitonic_topk, max_single_launch_row};

use crate::engine::{FilterKernel, FilterOp, TopKStrategy};
use crate::queries::{QueryResult, Strategy};
use crate::sql::{execute, parse, OrderBy, Query, SqlError};
use crate::table::GpuTweetTable;

/// Serving-layer knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of device streams queries round-robin onto.
    pub streams: usize,
    /// Coalesce compatible small queries into one batched launch.
    pub coalesce: bool,
    /// Maximum queries folded into one batched launch.
    pub max_batch: usize,
    /// Strategy for queries submitted without an explicit one.
    pub default_strategy: Strategy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            streams: 8,
            coalesce: true,
            max_batch: 64,
            default_strategy: Strategy::StageBitonic,
        }
    }
}

/// Handle for a submitted query; indexes into the drain's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTicket(pub usize);

/// Per-query latency breakdown on the drain's shared timeline
/// (times are relative to the start of the drain).
#[derive(Debug, Clone, Copy)]
pub struct QueryTiming {
    /// Time the query spent queued before its first kernel started.
    pub queued: SimTime,
    /// Time from its first kernel's start to its last kernel's end.
    pub exec: SimTime,
    /// End-to-end latency: when its last kernel finished.
    pub total: SimTime,
}

/// One query's outcome from a drain.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The ticket [`Server::submit`] returned for it.
    pub ticket: QueryTicket,
    /// The original SQL text.
    pub sql: String,
    /// Result ids and solo kernel-time breakdown.
    pub result: QueryResult,
    /// Latency on the shared timeline. For coalesced queries the shared
    /// pack/batch launches count fully towards every member — latency is
    /// about when *this* query's answer was ready.
    pub timing: QueryTiming,
    /// True when the query's ORDER BY/LIMIT ran inside a shared batched
    /// launch instead of its own pipeline.
    pub coalesced: bool,
}

/// Everything one [`Server::drain`] produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<ServedQuery>,
    /// Completion time of the whole drain on the shared timeline.
    pub makespan: SimTime,
    /// What the same kernels would take back-to-back on one stream.
    pub serial_time: SimTime,
    /// Achieved throughput: queries divided by makespan.
    pub queries_per_sec: f64,
    /// Median end-to-end query latency.
    pub p50: SimTime,
    /// 95th-percentile end-to-end query latency.
    pub p95: SimTime,
    /// 99th-percentile end-to-end query latency.
    pub p99: SimTime,
    /// The drain's launches placed on the shared device timeline.
    pub schedule: StreamSchedule,
    /// Host wall-clock time the drain took — the simulator executes
    /// kernels functionally on the host, so this measures harness cost,
    /// not modeled device time (that is [`LoadReport::makespan`]).
    pub host_wall: std::time::Duration,
    trace_json: String,
}

impl LoadReport {
    /// `serial_time / makespan` — the throughput multiplier the streams
    /// plus coalescing bought over one-at-a-time execution.
    pub fn speedup(&self) -> f64 {
        self.schedule.speedup()
    }

    /// Chrome `chrome://tracing` JSON of the drain, one track per stream.
    pub fn chrome_trace(&self) -> &str {
        &self.trace_json
    }

    /// Host-side throughput: queries divided by [`LoadReport::host_wall`]
    /// (0 when the drain was too fast to measure).
    pub fn host_queries_per_sec(&self) -> f64 {
        let secs = self.host_wall.as_secs_f64();
        if secs > 0.0 {
            self.queries.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Packs each query's filtered candidate buffer into one row of a
/// `rows × cols` matrix (padded with MIN sentinels) so a single
/// [`batched_bitonic_topk`] launch can serve the whole batch.
struct PackKernel {
    sources: Vec<(GpuBuffer<Kv<u32>>, usize)>,
    out: GpuBuffer<Kv<u32>>,
    cols: usize,
}

impl Kernel for PackKernel {
    fn name(&self) -> &'static str {
        "qdb_pack_batch"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        self.sources.len()
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let row = blk.block_idx;
        let (src, m) = &self.sources[row];
        for (j, item) in src.read_range(0..*m).into_iter().enumerate() {
            self.out.set(row * self.cols + j, item);
        }
        let bytes = (*m * Kv::<u32>::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write(bytes);
        blk.bulk_ops(*m as u64);
    }
}

/// A query admitted but not yet drained.
struct Pending {
    ticket: QueryTicket,
    sql: String,
    query: Query,
    strategy: Strategy,
}

/// What a pending query turned into while draining.
struct Executed {
    ticket: QueryTicket,
    sql: String,
    ids: Vec<u32>,
    /// Absolute launch-log indices of this query's own kernels.
    own: Vec<usize>,
    /// Absolute indices of shared (batch) kernels it rode along in.
    shared: Vec<usize>,
    coalesced: bool,
}

/// A serving front-end over one device and one resident table.
///
/// ```
/// # use simt::Device;
/// # use datagen::twitter::TweetTable;
/// # use qdb::{GpuTweetTable, Server, ServerConfig};
/// let dev = Device::titan_x();
/// let host = TweetTable::generate(10_000, 1);
/// let table = GpuTweetTable::upload(&dev, &host);
/// let mut server = Server::new(&dev, &table, ServerConfig::default());
/// let t = server
///     .submit("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10")
///     .unwrap();
/// let report = server.drain();
/// assert_eq!(report.queries[t.0].result.ids.len(), 10);
/// ```
pub struct Server<'a> {
    dev: &'a Device,
    table: &'a GpuTweetTable,
    cfg: ServerConfig,
    streams: Vec<Stream>,
    pending: Vec<Pending>,
    next_ticket: usize,
}

impl<'a> Server<'a> {
    /// Creates a server over a device-resident table.
    pub fn new(dev: &'a Device, table: &'a GpuTweetTable, cfg: ServerConfig) -> Self {
        let streams = (0..cfg.streams.max(1))
            .map(|_| dev.create_stream())
            .collect();
        Server {
            dev,
            table,
            cfg,
            streams,
            pending: Vec::new(),
            next_ticket: 0,
        }
    }

    /// Parses, validates and admits one SQL query with the default
    /// strategy. Unsupported shapes are rejected here, not at drain time.
    pub fn submit(&mut self, sql: &str) -> Result<QueryTicket, SqlError> {
        let strategy = self.cfg.default_strategy;
        self.submit_with(sql, strategy)
    }

    /// [`Server::submit`] with an explicit execution strategy.
    pub fn submit_with(&mut self, sql: &str, strategy: Strategy) -> Result<QueryTicket, SqlError> {
        let query = parse(sql)?;
        validate_executable(&query)?;
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(Pending {
            ticket,
            sql: sql.to_string(),
            query,
            strategy,
        });
        Ok(ticket)
    }

    /// Number of queries admitted and not yet drained.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// A query can fold into a shared batched launch when it is a plain
    /// descending `retweet_count` top-k (the batched kernel computes
    /// exactly that shape) and its strategy tolerates a bitonic operator.
    fn coalescable(&self, p: &Pending) -> bool {
        self.cfg.coalesce
            && !p.query.group_by_uid
            && !p.query.ascending
            && p.query.order_by == OrderBy::RetweetCount
            && p.strategy != Strategy::StageSort
    }

    /// Executes every admitted query and returns the load report.
    ///
    /// Coalescable queries run their filters concurrently (round-robin
    /// over the server's streams), then share one pack + one batched
    /// top-k launch per [`ServerConfig::max_batch`] chunk; everything
    /// else runs its normal pipeline on its round-robin stream.
    pub fn drain(&mut self) -> LoadReport {
        let wall_start = std::time::Instant::now();
        let dev = self.dev;
        let window = dev.log_len();
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();

        let mut executed: Vec<Executed> = Vec::with_capacity(n);
        // coalescable queries whose filter already ran: (pending-slot,
        // candidates, matched-count, executed-slot)
        let mut filtered: Vec<(Pending, GpuBuffer<Kv<u32>>, usize, usize)> = Vec::new();

        for (i, p) in pending.into_iter().enumerate() {
            let stream = &self.streams[i % self.streams.len()];
            if self.coalescable(&p) {
                let op = p
                    .query
                    .filter
                    .clone()
                    .unwrap_or(FilterOp::TimeLess(u32::MAX));
                let before = dev.log_len();
                let out = dev.alloc::<Kv<u32>>(self.table.len());
                let cnt = dev.alloc::<u32>(1);
                dev.stream_scope(stream.id(), || {
                    dev.launch(&FilterKernel {
                        table: self.table,
                        op: &op,
                        key_col: &self.table.retweet_count,
                        out: out.clone(),
                        out_count: cnt.clone(),
                    })
                    .expect("filter kernel")
                });
                let m = cnt.get(0) as usize;
                executed.push(Executed {
                    ticket: p.ticket,
                    sql: p.sql.clone(),
                    ids: Vec::new(),
                    own: (before..dev.log_len()).collect(),
                    shared: Vec::new(),
                    coalesced: false,
                });
                filtered.push((p, out, m, executed.len() - 1));
            } else {
                let before = dev.log_len();
                let r = dev.stream_scope(stream.id(), || {
                    execute(dev, self.table, &p.query, p.strategy)
                        .expect("shape validated at submit")
                });
                executed.push(Executed {
                    ticket: p.ticket,
                    sql: p.sql,
                    ids: r.ids,
                    own: (before..dev.log_len()).collect(),
                    shared: Vec::new(),
                    coalesced: false,
                });
            }
        }

        // split the filtered queries into batchable and oversized
        let max_row = max_single_launch_row::<Kv<u32>>(dev.spec());
        let mut batchable: Vec<(Pending, GpuBuffer<Kv<u32>>, usize, usize)> = Vec::new();
        for (p, out, m, slot) in filtered {
            if m == 0 {
                continue; // empty result, already recorded
            }
            if next_pow2(m) <= max_row {
                batchable.push((p, out, m, slot));
            } else {
                // too big for the fused batch row: finish on its own stream
                let stream = &self.streams[slot % self.streams.len()];
                let before = dev.log_len();
                let r = dev.stream_scope(stream.id(), || {
                    crate::engine::run_topk_stage(
                        dev,
                        &out,
                        m,
                        p.query.limit.min(m),
                        TopKStrategy::Bitonic,
                    )
                    .expect("top-k stage")
                });
                executed[slot].ids = r.items.iter().map(|kv| kv.value).collect();
                executed[slot].own.extend(before..dev.log_len());
            }
        }

        // each chunk shares one pack + one batched top-k launch
        for chunk in batchable.chunks(self.cfg.max_batch.max(2)) {
            if chunk.len() < 2 {
                // a lone query gains nothing from the batch detour
                let (p, out, m, slot) = &chunk[0];
                let stream = &self.streams[*slot % self.streams.len()];
                let before = dev.log_len();
                let r = dev.stream_scope(stream.id(), || {
                    crate::engine::run_topk_stage(
                        dev,
                        out,
                        *m,
                        p.query.limit.min(*m),
                        TopKStrategy::Bitonic,
                    )
                    .expect("top-k stage")
                });
                executed[*slot].ids = r.items.iter().map(|kv| kv.value).collect();
                executed[*slot].own.extend(before..dev.log_len());
                continue;
            }
            let rows = chunk.len();
            let cols = chunk
                .iter()
                .map(|(_, _, m, _)| next_pow2(*m))
                .max()
                .unwrap_or(1);
            let k_max = chunk
                .iter()
                .map(|(p, _, _, _)| p.query.limit)
                .max()
                .unwrap();

            let batch_stream = dev.create_stream();
            // the pack must see every member's filter output
            for (_, _, _, slot) in chunk {
                let ev = self.streams[*slot % self.streams.len()].record_event();
                batch_stream.wait_event(&ev);
            }
            let before = dev.log_len();
            let matrix = dev.alloc_filled::<Kv<u32>>(rows * cols, Kv::<u32>::min_sentinel());
            let batched = dev.stream_scope(batch_stream.id(), || {
                dev.launch(&PackKernel {
                    sources: chunk
                        .iter()
                        .map(|(_, out, m, _)| (out.clone(), *m))
                        .collect(),
                    out: matrix.clone(),
                    cols,
                })
                .expect("pack kernel");
                batched_bitonic_topk(dev, &matrix, rows, cols, k_max.min(cols))
                    .expect("batched top-k")
            });
            let shared: Vec<usize> = (before..dev.log_len()).collect();
            for (row, (p, _, m, slot)) in chunk.iter().enumerate() {
                let mut ids: Vec<u32> = batched.rows[row].iter().map(|kv| kv.value).collect();
                ids.truncate(p.query.limit.min(*m));
                executed[*slot].ids = ids;
                executed[*slot].shared.extend(shared.iter().copied());
                executed[*slot].coalesced = true;
            }
        }

        let mut report = self.finish(window, executed);
        report.host_wall = wall_start.elapsed();
        report
    }

    /// Replays the drain's launches onto the shared timeline and builds
    /// the per-query and aggregate report.
    fn finish(&self, window: usize, executed: Vec<Executed>) -> LoadReport {
        let dev = self.dev;
        let schedule = dev.schedule_since(window);
        let full_log = dev.log_since(0);
        let trace_json = chrome_trace_streams(&schedule, &full_log);
        let placed: HashMap<usize, (SimTime, SimTime)> = schedule
            .launches
            .iter()
            .map(|l| (l.index, (l.start, l.end)))
            .collect();

        let mut queries: Vec<ServedQuery> = executed
            .into_iter()
            .map(|e| {
                let spans: Vec<(SimTime, SimTime)> = e
                    .own
                    .iter()
                    .chain(e.shared.iter())
                    .filter_map(|i| placed.get(i).copied())
                    .collect();
                let first = spans.iter().map(|s| s.0).fold(SimTime::ZERO, |a, b| {
                    if a.0 == 0.0 || b.0 < a.0 {
                        b
                    } else {
                        a
                    }
                });
                let last =
                    spans
                        .iter()
                        .map(|s| s.1)
                        .fold(SimTime::ZERO, |a, b| if b.0 > a.0 { b } else { a });
                let reports: Vec<_> = e
                    .own
                    .iter()
                    .chain(e.shared.iter())
                    .map(|&i| full_log[i].clone())
                    .collect();
                ServedQuery {
                    ticket: e.ticket,
                    sql: e.sql,
                    result: QueryResult {
                        ids: e.ids,
                        kernel_time: reports.iter().map(|r| r.time).sum(),
                        breakdown: reports
                            .iter()
                            .map(|r| (r.name.to_string(), r.time))
                            .collect(),
                    },
                    timing: QueryTiming {
                        queued: first,
                        exec: SimTime(last.0 - first.0),
                        total: last,
                    },
                    coalesced: e.coalesced,
                }
            })
            .collect();
        queries.sort_by_key(|q| q.ticket.0);

        let mut totals: Vec<f64> = queries.iter().map(|q| q.timing.total.0).collect();
        totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> SimTime {
            if totals.is_empty() {
                return SimTime::ZERO;
            }
            let idx = ((totals.len() - 1) as f64 * p).round() as usize;
            SimTime(totals[idx])
        };
        let makespan = schedule.makespan;
        let queries_per_sec = if makespan.0 > 0.0 {
            queries.len() as f64 / makespan.0
        } else {
            0.0
        };

        LoadReport {
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            makespan,
            serial_time: schedule.serial_time,
            queries_per_sec,
            queries,
            schedule,
            host_wall: std::time::Duration::ZERO,
            trace_json,
        }
    }
}

/// Mirrors the `execute`-time `Unsupported` checks so [`Server::submit`]
/// rejects shapes eagerly instead of failing mid-drain.
fn validate_executable(q: &Query) -> Result<(), SqlError> {
    if let OrderBy::Rank { likes_weight } = q.order_by {
        if (likes_weight - 0.5).abs() > 1e-9 {
            return Err(SqlError::Unsupported("ranking weight other than 0.5"));
        }
        if q.filter.is_some() {
            return Err(SqlError::Unsupported(
                "WHERE combined with a ranking function",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::twitter::TweetTable;

    fn setup(n: usize) -> (Device, TweetTable) {
        (Device::titan_x(), TweetTable::generate(n, 31))
    }

    /// Keys (not ids) of a result — batched and per-query pipelines may
    /// break exact-tie key duplicates differently, but the returned key
    /// sequence must be identical.
    fn keys(host: &TweetTable, ids: &[u32]) -> Vec<u32> {
        ids.iter()
            .map(|&id| host.retweet_count[id as usize])
            .collect()
    }

    #[test]
    fn mixed_queries_agree_with_serial_execution() {
        let (dev, host) = setup(10_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 10"),
            "SELECT id FROM tweets WHERE lang='ja' ORDER BY retweet_count DESC LIMIT 25".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5".to_string(),
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 3"),
        ];
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let tickets: Vec<QueryTicket> = sqls
            .iter()
            .map(|s| server.submit(s).expect("submit"))
            .collect();
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());

        for (sql, t) in sqls.iter().zip(&tickets) {
            let served = &report.queries[t.0];
            assert_eq!(&served.sql, sql);
            let q = parse(sql).unwrap();
            let serial = execute(&dev, &table, &q, Strategy::StageBitonic).unwrap();
            if q.group_by_uid {
                // uids map to counts; compare count sequences
                let mut counts = std::collections::HashMap::new();
                for &u in &host.uid {
                    *counts.entry(u).or_insert(0u32) += 1;
                }
                let got: Vec<u32> = served.result.ids.iter().map(|u| counts[u]).collect();
                let want: Vec<u32> = serial.ids.iter().map(|u| counts[u]).collect();
                assert_eq!(got, want, "{sql}");
            } else if matches!(q.order_by, OrderBy::Rank { .. }) {
                let rank = |id: u32| {
                    host.retweet_count[id as usize] as f32
                        + 0.5 * host.likes_count[id as usize] as f32
                };
                let got: Vec<f32> = served.result.ids.iter().map(|&i| rank(i)).collect();
                let want: Vec<f32> = serial.ids.iter().map(|&i| rank(i)).collect();
                assert_eq!(got, want, "{sql}");
            } else {
                assert_eq!(
                    keys(&host, &served.result.ids),
                    keys(&host, &serial.ids),
                    "{sql}"
                );
            }
            assert!(served.timing.total.0 >= served.timing.exec.0);
        }
        // the two plain DESC retweet_count queries coalesced, the rest not
        assert!(report.queries[0].coalesced);
        assert!(report.queries[1].coalesced);
        assert!(!report.queries[2].coalesced);
        assert!(!report.queries[3].coalesced);
        assert!(!report.queries[4].coalesced);
        assert!(report.makespan.0 > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p50.0 <= report.p95.0 && report.p95.0 <= report.p99.0);
        // the drain ran on the host, so wall-clock capture must be live
        assert!(report.host_wall > std::time::Duration::ZERO);
        assert!(report.host_queries_per_sec() > 0.0);
    }

    #[test]
    fn sanitizer_clean_across_batched_and_streamed_serving() {
        // the ISSUE-level acceptance check for the serving layer: the
        // whole drain — pack kernel, batched top-k, and every per-stream
        // pipeline — runs under the sanitizer with zero findings
        let (dev, host) = setup(10_000);
        let table = GpuTweetTable::upload(&dev, &host);
        dev.enable_sanitizer();
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 10"),
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 4"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5".to_string(),
        ];
        for s in &sqls {
            server.submit(s).expect("submit");
        }
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());
        assert!(
            report.queries[0].coalesced,
            "batched path must be exercised"
        );

        let reports = dev.take_sanitizer_reports();
        assert!(!reports.is_empty(), "no serving launches were sanitized");
        assert!(
            reports.iter().any(|r| r.kernel == "batched_bitonic_row"),
            "batched top-k launch missing from sanitizer coverage"
        );
        assert!(
            reports.iter().any(|r| r.stream != 0),
            "streamed launches missing from sanitizer coverage"
        );
        for rep in &reports {
            assert!(rep.is_clean(), "serving-layer findings\n{}", rep.render());
        }
    }

    #[test]
    fn coalescing_matches_uncoalesced_results() {
        let (dev, host) = setup(12_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let sqls: Vec<String> = (0..12)
            .map(|i| {
                let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.03 * (i % 8) as f64);
                let k = 1 + 7 * (i % 5);
                format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT {k}")
            })
            .collect();

        let run = |coalesce: bool| {
            let mut server = Server::new(
                &dev,
                &table,
                ServerConfig {
                    coalesce,
                    ..ServerConfig::default()
                },
            );
            for s in &sqls {
                server.submit(s).unwrap();
            }
            server.drain()
        };
        let on = run(true);
        let off = run(false);
        for (a, b) in on.queries.iter().zip(&off.queries) {
            assert_eq!(
                keys(&host, &a.result.ids),
                keys(&host, &b.result.ids),
                "{}",
                a.sql
            );
            assert!(a.coalesced);
            assert!(!b.coalesced);
        }
    }

    #[test]
    fn concurrent_serving_beats_serial() {
        let (dev, host) = setup(1 << 15);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for i in 0..32 {
            let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.002 * i as f64);
            server
                .submit(&format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 16"
                ))
                .unwrap();
        }
        let report = server.drain();
        assert!(
            report.speedup() >= 2.0,
            "32 coalesced small queries should serve ≥2× faster than serial, got {:.2}×",
            report.speedup()
        );
        assert!(report.queries.iter().all(|q| q.coalesced));
    }

    #[test]
    fn drain_trace_has_a_track_per_active_stream() {
        let (dev, host) = setup(3_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for k in [5usize, 9, 13] {
            server
                .submit(&format!(
                    "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT {k}"
                ))
                .unwrap();
        }
        let report = server.drain();
        let trace = report.chrome_trace();
        assert!(trace.starts_with('['));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("thread_name"));
        assert!(trace.contains("qdb_filter"));
        assert!(trace.contains("batched_bitonic_row"));
    }

    #[test]
    fn server_is_reusable_across_drains() {
        let (dev, host) = setup(5_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let t0 = server
            .submit("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 4")
            .unwrap();
        let r0 = server.drain();
        assert_eq!(r0.queries.len(), 1);
        assert_eq!(r0.queries[0].ticket, t0);
        assert_eq!(server.pending_len(), 0);

        let t1 = server
            .submit("SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 4")
            .unwrap();
        let r1 = server.drain();
        assert_eq!(r1.queries.len(), 1);
        assert_eq!(r1.queries[0].ticket, t1);
        // tickets keep counting across drains
        assert_eq!(t1.0, t0.0 + 1);
    }

    #[test]
    fn submit_rejects_bad_sql_eagerly() {
        let (dev, host) = setup(1_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        assert!(server.submit("DROP TABLE tweets").is_err());
        assert!(server
            .submit("SELECT id FROM tweets ORDER BY retweet_count + 0.9 * likes_count DESC LIMIT 5")
            .is_err());
        assert_eq!(server.pending_len(), 0);
    }
}
