//! Concurrent query serving: a batching scheduler over simt streams,
//! hardened against device faults.
//!
//! The paper's integration argument (Section 5) is that top-k belongs
//! *inside* the database as a physical operator. A real database does not
//! run one query at a time, though — it serves a queue of concurrent
//! queries, and a single small top-k query comes nowhere near filling the
//! device (a `k = 50` query over a few tens of thousands of rows runs a
//! handful of one- and few-block kernels). This module closes that gap
//! with the two classic GPU serving tricks:
//!
//! * **streams** — each admitted query issues its kernels on its own simt
//!   stream, so independent queries overlap on the device timeline and
//!   small kernels fill SMs that one query would leave idle;
//! * **batch coalescing** — compatible small queries (plain
//!   `ORDER BY retweet_count DESC` shapes) have their filter outputs
//!   packed into one `rows × cols` matrix and their ORDER BY/LIMIT stages
//!   replaced by a *single* [`batched_bitonic_topk`] launch, one block
//!   per query, amortizing launch overhead across the whole batch.
//!
//! # Resilience
//!
//! The serving path never panics; every failure is a typed
//! [`QdbError`]. Against a faulty device (see [`simt::fault`]) the
//! server:
//!
//! * **sheds** — the submit queue is bounded
//!   ([`ServerConfig::max_queue`]); beyond it, [`Server::submit`] returns
//!   [`QdbError::Overloaded`] instead of growing without bound;
//! * **retries** — faults classified transient (injected launch
//!   failures, allocation pressure) are retried up to
//!   [`ServerConfig::max_retries`] times with exponential backoff
//!   ([`ServerConfig::backoff_base`] · 2^attempt, charged as simulated
//!   time against the query's deadline);
//! * **cancels** — a query submitted with a deadline
//!   ([`SubmitOptions::with_deadline`]) is cancelled with
//!   [`QdbError::Timeout`] once its accumulated simulated time (kernel
//!   time plus backoff penalties) exceeds it;
//! * **degrades** — when retries are exhausted a query falls down a
//!   ladder: the batched/streamed bitonic path first re-runs as serial
//!   `StageBitonic` on the default stream, and ultimately on the
//!   `topk-cpu` heap backend, which cannot fault. The rung a query ended
//!   on is reported in [`ServedQuery::degrade`] and aggregated in
//!   [`LoadReport::resilience`];
//! * **audits** — serving-layer intermediate buffers are tagged for
//!   ECC-corruption injection ([`simt::GpuBuffer::tag_ecc`]); after the
//!   device work completes, any query whose buffers show up in the fault
//!   log is transparently re-executed from the pristine resident table
//!   over untagged buffers, so a completed query's result always equals
//!   the fault-free oracle.
//!
//! [`Server::submit`] parses and admits a SQL query; [`Server::drain`]
//! executes everything admitted since the last drain and returns a
//! [`LoadReport`] with per-query results, queue/execution/total latency
//! per query, percentile summaries, achieved queries/sec, resilience
//! counters, and a multi-stream chrome trace of the whole drain.

use std::collections::{HashMap, HashSet};

use datagen::{Kv, Rev, TopKItem};
use simt::{
    chrome_trace_streams, AccessSpec, BlockCtx, BufferDecl, BulkAccess, Device, GpuBuffer, Kernel,
    SimTime, Stream, StreamId, StreamSchedule,
};
use sortnet::next_pow2;
use topk::batched::{batched_bitonic_topk, max_single_launch_row};

use crate::engine::{FilterKernel, FilterOp, TopKStrategy};
use crate::error::QdbError;
use crate::queries::{QueryResult, Strategy};
use crate::sql::{execute, parse, OrderBy, Query, SqlError};
use crate::table::GpuTweetTable;

/// Serving-layer knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of device streams queries round-robin onto.
    pub streams: usize,
    /// Coalesce compatible small queries into one batched launch.
    pub coalesce: bool,
    /// Maximum queries folded into one batched launch.
    pub max_batch: usize,
    /// Strategy for queries submitted without an explicit one.
    pub default_strategy: Strategy,
    /// Admission bound: submissions beyond this many pending queries are
    /// shed with [`QdbError::Overloaded`].
    pub max_queue: usize,
    /// Deadline applied to queries submitted without an explicit one
    /// (`None` = no deadline).
    pub default_deadline: Option<SimTime>,
    /// Transient-fault retries per degradation rung before falling to
    /// the next rung.
    pub max_retries: usize,
    /// First retry's backoff; doubles every subsequent retry. Charged as
    /// simulated time against the query's deadline.
    pub backoff_base: SimTime,
    /// Serve repeated identical SQL from an epoch-tagged result cache:
    /// a hit returns the stored ids with zero device work, and any
    /// append invalidates every entry by bumping the table epoch.
    /// Off by default so existing replay workloads keep their exact
    /// launch sequences.
    pub result_cache: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            streams: 8,
            coalesce: true,
            max_batch: 64,
            default_strategy: Strategy::StageBitonic,
            max_queue: 256,
            default_deadline: None,
            max_retries: 2,
            backoff_base: SimTime(50e-6),
            result_cache: false,
        }
    }
}

/// Per-query submission options for [`Server::submit`], builder-style.
///
/// The default value inherits the server's configured strategy and
/// deadline; each knob can be overridden independently:
///
/// ```
/// # use qdb::{Strategy, SubmitOptions};
/// # use simt::SimTime;
/// let opts = SubmitOptions::default()
///     .with_strategy(Strategy::StageSort)
///     .with_deadline(SimTime(5e-3));
/// assert_eq!(opts.strategy, Some(Strategy::StageSort));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Execution strategy; `None` uses [`ServerConfig::default_strategy`].
    pub strategy: Option<Strategy>,
    /// Per-query deadline; `None` uses [`ServerConfig::default_deadline`].
    pub deadline: Option<SimTime>,
}

impl SubmitOptions {
    /// Overrides the execution strategy for this query.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Sets a per-query deadline: the query is cancelled with
    /// [`QdbError::Timeout`] once its simulated execution time exceeds
    /// it.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Handle for a submitted query; indexes into the drain's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTicket(pub usize);

/// Per-query latency breakdown on the drain's shared timeline
/// (times are relative to the start of the drain).
#[derive(Debug, Clone, Copy)]
pub struct QueryTiming {
    /// Time the query spent queued before its first kernel started.
    pub queued: SimTime,
    /// Time from its first kernel's start to its last kernel's end,
    /// including any retry-backoff penalty.
    pub exec: SimTime,
    /// End-to-end latency: when its last kernel finished (plus backoff
    /// penalty).
    pub total: SimTime,
}

/// How far down the degradation ladder a query ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Served by the normal batched/streamed path.
    None,
    /// Fell back to serial `StageBitonic` on the default stream.
    SerialBitonic,
    /// Fell back to the `topk-cpu` heap backend (cannot fault).
    CpuHeap,
}

impl DegradeLevel {
    /// Stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeLevel::None => "none",
            DegradeLevel::SerialBitonic => "serial-bitonic",
            DegradeLevel::CpuHeap => "cpu-heap",
        }
    }
}

/// One query's outcome from a drain.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The ticket [`Server::submit`] returned for it.
    pub ticket: QueryTicket,
    /// The original SQL text.
    pub sql: String,
    /// Result ids and solo kernel-time breakdown. Empty when
    /// [`ServedQuery::error`] is set.
    pub result: QueryResult,
    /// Latency on the shared timeline. For coalesced queries the shared
    /// pack/batch launches count fully towards every member — latency is
    /// about when *this* query's answer was ready.
    pub timing: QueryTiming,
    /// True when the query's ORDER BY/LIMIT ran inside a shared batched
    /// launch instead of its own pipeline.
    pub coalesced: bool,
    /// Why the query did not complete (`None` = completed).
    pub error: Option<QdbError>,
    /// Transient-fault retries this query consumed.
    pub retries: usize,
    /// The degradation rung the query's final answer came from.
    pub degrade: DegradeLevel,
    /// True when the answer came from the epoch-tagged result cache
    /// (zero device work; the stored ids were computed at the same
    /// table epoch, so they are bit-identical to a re-execution).
    pub cached: bool,
}

impl ServedQuery {
    /// True when the query produced a result (no typed error).
    pub fn completed(&self) -> bool {
        self.error.is_none()
    }
}

/// Resilience counters for one drain (plus submissions shed since the
/// previous drain).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Queries that produced a result.
    pub completed: usize,
    /// Submissions shed by admission control since the last drain.
    pub shed: usize,
    /// Queries cancelled on their deadline.
    pub timed_out: usize,
    /// Queries that failed with any other typed error.
    pub failed: usize,
    /// Transient-fault retries across all queries (batch retries
    /// included).
    pub retries: usize,
    /// Queries that fell back to serial `StageBitonic`.
    pub degraded_serial: usize,
    /// Queries that fell all the way to the CPU heap backend.
    pub degraded_cpu: usize,
    /// Faults the device injected during the drain.
    pub faults_injected: usize,
    /// Per-shard executions served by a non-primary replica after the
    /// routed device failed (sharded serving only; always 0 on a
    /// single-device [`Server`]).
    pub failovers: usize,
    /// Lost partitions re-materialized onto a surviving device (sharded
    /// serving only).
    pub rebuilds: usize,
    /// Circuit-breaker transitions to the open state (sharded serving
    /// only).
    pub breaker_trips: usize,
    /// Queries served from the epoch-tagged result cache (zero device
    /// work). Only counted when [`ServerConfig::result_cache`] is on.
    pub cache_hits: usize,
    /// Cache lookups that found no entry for the SQL text.
    pub cache_misses: usize,
    /// Cache lookups that found an entry invalidated by an append (the
    /// stored epoch no longer matches the table's) — the query
    /// re-executes and refreshes the entry.
    pub cache_refreshes: usize,
}

impl ResilienceStats {
    /// One-line summary for logs and examples.
    pub fn render(&self) -> String {
        let mut line = format!(
            "completed {} | shed {} | timed-out {} | failed {} | retries {} | degraded serial {} / cpu {} | faults {}",
            self.completed,
            self.shed,
            self.timed_out,
            self.failed,
            self.retries,
            self.degraded_serial,
            self.degraded_cpu,
            self.faults_injected
        );
        // replication counters only appear where replication exists, so
        // single-device renders stay byte-identical to previous releases
        if self.failovers + self.rebuilds + self.breaker_trips > 0 {
            line.push_str(&format!(
                " | failovers {} | rebuilds {} | breaker trips {}",
                self.failovers, self.rebuilds, self.breaker_trips
            ));
        }
        // cache counters only appear where the result cache is on, so
        // cache-less renders stay byte-identical to previous releases
        if self.cache_hits + self.cache_misses + self.cache_refreshes > 0 {
            line.push_str(&format!(
                " | cache hits {} / misses {} / refreshes {}",
                self.cache_hits, self.cache_misses, self.cache_refreshes
            ));
        }
        line
    }
}

/// Everything one [`Server::drain`] produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<ServedQuery>,
    /// Completion time of the whole drain on the shared timeline.
    pub makespan: SimTime,
    /// What the same kernels would take back-to-back on one stream.
    pub serial_time: SimTime,
    /// Achieved throughput: completed queries divided by makespan.
    pub queries_per_sec: f64,
    /// Median end-to-end latency over completed queries.
    pub p50: SimTime,
    /// 95th-percentile end-to-end latency over completed queries.
    pub p95: SimTime,
    /// 99th-percentile end-to-end latency over completed queries.
    pub p99: SimTime,
    /// Retry/shed/degradation counters for the drain.
    pub resilience: ResilienceStats,
    /// The drain's launches placed on the shared device timeline.
    pub schedule: StreamSchedule,
    /// Host wall-clock time the drain took — the simulator executes
    /// kernels functionally on the host, so this measures harness cost,
    /// not modeled device time (that is [`LoadReport::makespan`]).
    pub host_wall: std::time::Duration,
    trace_json: String,
}

impl LoadReport {
    /// `serial_time / makespan` — the throughput multiplier the streams
    /// plus coalescing bought over one-at-a-time execution.
    pub fn speedup(&self) -> f64 {
        self.schedule.speedup()
    }

    /// Chrome `chrome://tracing` JSON of the drain, one track per stream.
    pub fn chrome_trace(&self) -> &str {
        &self.trace_json
    }

    /// Host-side throughput: queries divided by [`LoadReport::host_wall`]
    /// (0 when the drain was too fast to measure).
    pub fn host_queries_per_sec(&self) -> f64 {
        let secs = self.host_wall.as_secs_f64();
        if secs > 0.0 {
            self.queries.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Packs each query's filtered candidate buffer into one row of a
/// `rows × cols` matrix (padded with MIN sentinels) so a single
/// [`batched_bitonic_topk`] launch can serve the whole batch.
struct PackKernel {
    sources: Vec<(GpuBuffer<Kv<u32>>, usize)>,
    out: GpuBuffer<Kv<u32>>,
    cols: usize,
}

impl Kernel for PackKernel {
    fn name(&self) -> &'static str {
        "qdb_pack_batch"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        self.sources.len()
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        let mut bulk: Vec<BulkAccess> = self
            .sources
            .iter()
            .map(|(src, m)| BulkAccess {
                buf: BufferDecl::of("source", src),
                elems: *m,
                write: false,
            })
            .collect();
        bulk.push(BulkAccess {
            buf: BufferDecl::of("out", &self.out),
            elems: self.sources.len() * self.cols,
            write: true,
        });
        Some(AccessSpec::bulk("pack", bulk))
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let row = blk.block_idx;
        let (src, m) = &self.sources[row];
        for (j, item) in src.read_range(0..*m).into_iter().enumerate() {
            self.out.set(row * self.cols + j, item);
        }
        let bytes = (*m * Kv::<u32>::SIZE_BYTES) as u64;
        blk.bulk_global_read(bytes);
        blk.bulk_global_write(bytes);
        blk.bulk_ops(*m as u64);
    }
}

/// A query admitted but not yet drained.
struct Pending {
    ticket: QueryTicket,
    sql: String,
    query: Query,
    strategy: Strategy,
    deadline: Option<SimTime>,
    /// Ids resolved from the result cache at submission (same SQL, same
    /// table epoch); the drain serves them without touching the device.
    cached: Option<Vec<u32>>,
}

/// What a pending query turned into while draining.
struct Executed {
    ticket: QueryTicket,
    sql: String,
    query: Query,
    strategy: Strategy,
    deadline: Option<SimTime>,
    ids: Vec<u32>,
    /// Absolute launch-log indices of this query's own kernels.
    own: Vec<usize>,
    /// Absolute indices of shared (batch) kernels it rode along in.
    shared: Vec<usize>,
    coalesced: bool,
    error: Option<QdbError>,
    retries: usize,
    degrade: DegradeLevel,
    /// True when the ids came from the result cache.
    from_cache: bool,
    /// Accumulated backoff penalty, added to the query's latency.
    penalty: SimTime,
    /// Simulated time charged against the deadline so far.
    spent: SimTime,
    /// ECC tags of the buffers this query's device result depended on.
    labels: Vec<String>,
}

impl Executed {
    fn new(p: Pending) -> Self {
        Executed {
            ticket: p.ticket,
            sql: p.sql,
            query: p.query,
            strategy: p.strategy,
            deadline: p.deadline,
            ids: Vec::new(),
            own: Vec::new(),
            shared: Vec::new(),
            coalesced: false,
            error: None,
            retries: 0,
            degrade: DegradeLevel::None,
            from_cache: false,
            penalty: SimTime::ZERO,
            spent: SimTime::ZERO,
            labels: Vec::new(),
        }
    }
}

/// A serving front-end over one device and one resident table.
///
/// ```
/// # use simt::Device;
/// # use datagen::twitter::TweetTable;
/// # use qdb::{GpuTweetTable, Server, ServerConfig, SubmitOptions};
/// let dev = Device::titan_x();
/// let host = TweetTable::generate(10_000, 1);
/// let table = GpuTweetTable::upload(&dev, &host);
/// let mut server = Server::new(&dev, &table, ServerConfig::default());
/// let t = server
///     .submit("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10", SubmitOptions::default())
///     .unwrap();
/// let report = server.drain();
/// assert_eq!(report.queries[t.0].result.ids.len(), 10);
/// ```
pub struct Server<'a> {
    dev: &'a Device,
    table: &'a GpuTweetTable,
    cfg: ServerConfig,
    streams: Vec<Stream>,
    pending: Vec<Pending>,
    next_ticket: usize,
    shed: usize,
    /// SQL text → (table epoch at insertion, result ids). Entries whose
    /// epoch no longer matches the table's are stale by definition.
    cache: HashMap<String, (u64, Vec<u32>)>,
    cache_hits: usize,
    cache_misses: usize,
    cache_refreshes: usize,
}

impl<'a> Server<'a> {
    /// Creates a server over a device-resident table.
    pub fn new(dev: &'a Device, table: &'a GpuTweetTable, cfg: ServerConfig) -> Self {
        let streams = (0..cfg.streams.max(1))
            .map(|_| dev.create_stream())
            .collect();
        Server {
            dev,
            table,
            cfg,
            streams,
            pending: Vec::new(),
            next_ticket: 0,
            shed: 0,
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_refreshes: 0,
        }
    }

    /// Parses, validates and admits one SQL query. Unsupported shapes,
    /// unusable LIMITs and a full queue are rejected here, not at drain
    /// time. Per-query knobs travel in [`SubmitOptions`]:
    /// `SubmitOptions::default()` uses the server's configured strategy
    /// and deadline; `with_strategy`/`with_deadline` override them.
    ///
    /// An explicit deadline cancels the query with [`QdbError::Timeout`]
    /// once its simulated execution time (kernel time plus retry
    /// backoff) exceeds it; a deadline that is already non-positive is
    /// rejected as [`QdbError::DeadlineExpired`].
    pub fn submit(&mut self, sql: &str, opts: SubmitOptions) -> Result<QueryTicket, QdbError> {
        self.submit_full(
            sql,
            opts.strategy.unwrap_or(self.cfg.default_strategy),
            opts.deadline.or(self.cfg.default_deadline),
        )
    }

    fn submit_full(
        &mut self,
        sql: &str,
        strategy: Strategy,
        deadline: Option<SimTime>,
    ) -> Result<QueryTicket, QdbError> {
        if self.pending.len() >= self.cfg.max_queue {
            self.shed += 1;
            return Err(QdbError::Overloaded {
                queue_len: self.pending.len(),
                max_queue: self.cfg.max_queue,
            });
        }
        let query = parse(sql)?;
        validate_executable(&query)?;
        let n = self.table.len();
        if n == 0 {
            return Err(QdbError::EmptyTable);
        }
        if query.limit > n {
            return Err(QdbError::InvalidK { k: query.limit, n });
        }
        if let Some(d) = deadline {
            if d.0 <= 0.0 {
                return Err(QdbError::DeadlineExpired { deadline: d });
            }
        }
        let cached = if self.cfg.result_cache {
            match self.cache.get(sql) {
                Some((epoch, ids)) if *epoch == self.table.epoch() => {
                    self.cache_hits += 1;
                    Some(ids.clone())
                }
                Some(_) => {
                    self.cache_refreshes += 1;
                    None
                }
                None => {
                    self.cache_misses += 1;
                    None
                }
            }
        } else {
            None
        };
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(Pending {
            ticket,
            sql: sql.to_string(),
            query,
            strategy,
            deadline,
            cached,
        });
        Ok(ticket)
    }

    /// Number of queries admitted and not yet drained.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// A query can fold into a shared batched launch when it is a plain
    /// descending `retweet_count` top-k (the batched kernel computes
    /// exactly that shape) and its strategy tolerates a bitonic operator.
    fn coalescable(&self, p: &Pending) -> bool {
        self.cfg.coalesce
            && !p.query.group_by_uid
            && !p.query.ascending
            && p.query.order_by == OrderBy::RetweetCount
            && p.strategy != Strategy::StageSort
    }

    /// Runs `f` with the transient-fault retry policy: up to
    /// [`ServerConfig::max_retries`] retries with exponential backoff,
    /// charging kernel time and backoff penalties against `spent` and
    /// cancelling on the deadline.
    fn with_retries<T>(
        &self,
        deadline: Option<SimTime>,
        spent: &mut SimTime,
        retries: &mut usize,
        penalty: &mut SimTime,
        mut f: impl FnMut() -> Result<T, QdbError>,
    ) -> Result<T, QdbError> {
        let mut attempt = 0usize;
        loop {
            if let Some(d) = deadline {
                if spent.0 >= d.0 {
                    return Err(QdbError::Timeout {
                        deadline: d,
                        spent: *spent,
                    });
                }
            }
            let log0 = self.dev.log_len();
            let r = f();
            *spent += self.dev.window_since(log0).time;
            match r {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    attempt += 1;
                    *retries += 1;
                    let backoff =
                        SimTime(self.cfg.backoff_base.0 * (1u64 << (attempt - 1).min(20)) as f64);
                    *penalty += backoff;
                    *spent += backoff;
                }
                Err(QdbError::DeviceFault {
                    what,
                    transient,
                    device,
                    ..
                }) => {
                    return Err(QdbError::DeviceFault {
                        what,
                        transient,
                        attempts: attempt + 1,
                        device,
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs one query down the degradation ladder. `start_serial` skips
    /// the streamed rung (used when the streamed path already failed).
    /// Only [`QdbError::Timeout`] escapes: the final CPU rung cannot
    /// fault.
    fn run_query_ladder(&self, e: &mut Executed, stream: Option<StreamId>, start_serial: bool) {
        let dev = self.dev;
        let Executed {
            ref query,
            strategy,
            deadline,
            ref mut spent,
            ref mut retries,
            ref mut penalty,
            ..
        } = *e;
        if !start_serial {
            let before = dev.log_len();
            let r = self.with_retries(deadline, spent, retries, penalty, || match stream {
                Some(id) => dev.stream_scope(id, || execute(dev, self.table, query, strategy)),
                None => execute(dev, self.table, query, strategy),
            });
            e.own.extend(before..dev.log_len());
            match r {
                Ok(res) => {
                    e.ids = res.ids;
                    return;
                }
                Err(err @ QdbError::Timeout { .. }) => {
                    e.error = Some(err);
                    return;
                }
                Err(_) => {}
            }
        }
        // rung 2: serial StageBitonic on the default stream
        e.degrade = DegradeLevel::SerialBitonic;
        let Executed {
            ref query,
            deadline,
            ref mut spent,
            ref mut retries,
            ref mut penalty,
            ..
        } = *e;
        let before = dev.log_len();
        let r = self.with_retries(deadline, spent, retries, penalty, || {
            execute(dev, self.table, query, Strategy::StageBitonic)
        });
        e.own.extend(before..dev.log_len());
        match r {
            Ok(res) => {
                e.ids = res.ids;
                return;
            }
            Err(err @ QdbError::Timeout { .. }) => {
                e.error = Some(err);
                return;
            }
            Err(_) => {}
        }
        // rung 3: the CPU heap backend — infallible
        e.degrade = DegradeLevel::CpuHeap;
        e.ids = self.cpu_execute(&e.query);
    }

    /// Host-side execution of a validated query against the resident
    /// table via the `topk-cpu` heap backend — the ladder's final rung.
    fn cpu_execute(&self, q: &Query) -> Vec<u32> {
        let t = self.table;
        let n = t.len();
        match (&q.order_by, q.group_by_uid) {
            (OrderBy::Count, true) => {
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for row in 0..n {
                    *counts.entry(t.uid.get(row)).or_insert(0) += 1;
                }
                let mut groups: Vec<Kv<u32>> =
                    counts.into_iter().map(|(uid, c)| Kv::new(c, uid)).collect();
                // HashMap iteration order is not deterministic; fix it
                groups.sort_unstable_by_key(|kv| kv.value);
                topk_cpu::heap_topk(&groups, q.limit)
                    .iter()
                    .map(|kv| kv.value)
                    .collect()
            }
            (OrderBy::Rank { likes_weight }, false) => {
                let items: Vec<Kv<f32>> = (0..n)
                    .map(|r| {
                        let rank = t.retweet_count.get(r) as f32
                            + likes_weight * t.likes_count.get(r) as f32;
                        Kv::new(rank, t.id.get(r))
                    })
                    .collect();
                topk_cpu::heap_topk(&items, q.limit)
                    .iter()
                    .map(|kv| kv.value)
                    .collect()
            }
            (OrderBy::RetweetCount, false) => {
                let op = q.filter.clone().unwrap_or(FilterOp::TimeLess(u32::MAX));
                let items: Vec<Kv<u32>> = (0..n)
                    .filter(|&r| op.matches(t, r))
                    .map(|r| Kv::new(t.retweet_count.get(r), t.id.get(r)))
                    .collect();
                if q.ascending {
                    let rev: Vec<Rev<Kv<u32>>> = items.into_iter().map(Rev).collect();
                    topk_cpu::heap_topk(&rev, q.limit)
                        .iter()
                        .map(|kv| kv.0.value)
                        .collect()
                } else {
                    topk_cpu::heap_topk(&items, q.limit)
                        .iter()
                        .map(|kv| kv.value)
                        .collect()
                }
            }
            _ => Vec::new(), // unreachable: shapes validated at submit
        }
    }

    /// Executes every admitted query and returns the load report.
    ///
    /// Coalescable queries run their filters concurrently (round-robin
    /// over the server's streams), then share one pack + one batched
    /// top-k launch per [`ServerConfig::max_batch`] chunk; everything
    /// else runs its normal pipeline on its round-robin stream. Faults
    /// are retried/degraded per the module docs; with no fault plan the
    /// drain's launch sequence is identical to a fault-unaware one.
    pub fn drain(&mut self) -> LoadReport {
        let wall_start = std::time::Instant::now();
        let dev = self.dev;
        let window = dev.log_len();
        let fault_start = dev.fault_events_len();
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        let mut batch_retries = 0usize;

        let mut executed: Vec<Executed> = Vec::with_capacity(n);
        // coalescable queries whose filter already ran: (strategy kept in
        // Executed; candidates, matched-count, executed-slot)
        let mut filtered: Vec<(GpuBuffer<Kv<u32>>, usize, usize)> = Vec::new();

        for (i, mut p) in pending.into_iter().enumerate() {
            if let Some(ids) = p.cached.take() {
                // resolved at submission from the epoch-tagged cache:
                // zero launches, zero simulated latency
                let mut e = Executed::new(p);
                e.ids = ids;
                e.from_cache = true;
                executed.push(e);
                continue;
            }
            let stream_id = self.streams[i % self.streams.len()].id();
            let coalesce = self.coalescable(&p);
            let mut e = Executed::new(p);
            if coalesce {
                let op = e
                    .query
                    .filter
                    .clone()
                    .unwrap_or(FilterOp::TimeLess(u32::MAX));
                let label = format!("qdb:candidates:t{}", e.ticket.0);
                let before = dev.log_len();
                let r = {
                    let (table, deadline) = (self.table, e.deadline);
                    let (label, op) = (&label, &op);
                    self.with_retries(
                        deadline,
                        &mut e.spent,
                        &mut e.retries,
                        &mut e.penalty,
                        || {
                            let out = dev.try_alloc::<Kv<u32>>(table.len())?;
                            out.tag_ecc(label.clone());
                            let cnt = dev.try_alloc::<u32>(1)?;
                            dev.stream_scope(stream_id, || {
                                dev.launch(&FilterKernel {
                                    table,
                                    op,
                                    key_col: &table.retweet_count,
                                    out: out.clone(),
                                    out_count: cnt.clone(),
                                })
                            })?;
                            Ok((out, cnt.get(0) as usize))
                        },
                    )
                };
                e.own.extend(before..dev.log_len());
                match r {
                    Ok((out, m)) => {
                        e.labels.push(label);
                        executed.push(e);
                        filtered.push((out, m, executed.len() - 1));
                    }
                    Err(err @ QdbError::Timeout { .. }) => {
                        e.error = Some(err);
                        executed.push(e);
                    }
                    Err(_) => {
                        // streamed filter defeated: straight to rung 2
                        self.run_query_ladder(&mut e, None, true);
                        executed.push(e);
                    }
                }
            } else {
                self.run_query_ladder(&mut e, Some(stream_id), false);
                executed.push(e);
            }
        }

        // split the filtered queries into batchable and oversized
        let max_row = max_single_launch_row::<Kv<u32>>(dev.spec());
        let mut batchable: Vec<(GpuBuffer<Kv<u32>>, usize, usize)> = Vec::new();
        for (out, m, slot) in filtered {
            if m == 0 {
                continue; // empty result, already recorded
            }
            if next_pow2(m) <= max_row {
                batchable.push((out, m, slot));
            } else {
                // too big for the fused batch row: finish on its own stream
                self.finish_serially(&mut executed[slot], slot, &out, m);
            }
        }

        // each chunk shares one pack + one batched top-k launch
        for chunk in batchable.chunks(self.cfg.max_batch.max(2)) {
            if chunk.len() < 2 {
                // a lone query gains nothing from the batch detour
                let (out, m, slot) = &chunk[0];
                self.finish_serially(&mut executed[*slot], *slot, out, *m);
                continue;
            }
            let rows = chunk.len();
            let cols = chunk
                .iter()
                .map(|(_, m, _)| next_pow2(*m))
                .max()
                .unwrap_or(1);
            let k_max = chunk
                .iter()
                .map(|(_, _, slot)| executed[*slot].query.limit)
                .max()
                .unwrap();
            let batch_label = format!("qdb:batch:c{}", chunk[0].2);

            let batch_stream = dev.create_stream();
            // the pack must see every member's filter output
            for (_, _, slot) in chunk {
                let ev = self.streams[*slot % self.streams.len()].record_event();
                batch_stream.wait_event(&ev);
            }
            let before = dev.log_len();
            // the shared batch carries no single deadline; per-member
            // deadlines are enforced on the solo rungs
            let mut batch_spent = SimTime::ZERO;
            let mut batch_penalty = SimTime::ZERO;
            let batched = {
                let batch_label = &batch_label;
                self.with_retries(
                    None,
                    &mut batch_spent,
                    &mut batch_retries,
                    &mut batch_penalty,
                    || {
                        let matrix = dev
                            .try_alloc_filled::<Kv<u32>>(rows * cols, Kv::<u32>::min_sentinel())?;
                        matrix.tag_ecc(batch_label.clone());
                        dev.stream_scope(batch_stream.id(), || {
                            dev.launch(&PackKernel {
                                sources: chunk
                                    .iter()
                                    .map(|(out, m, _)| (out.clone(), *m))
                                    .collect(),
                                out: matrix.clone(),
                                cols,
                            })?;
                            batched_bitonic_topk(dev, &matrix, rows, cols, k_max.min(cols))
                                .map_err(QdbError::from)
                        })
                    },
                )
            };
            match batched {
                Ok(batched) => {
                    let shared: Vec<usize> = (before..dev.log_len()).collect();
                    for (row, (_, m, slot)) in chunk.iter().enumerate() {
                        let e = &mut executed[*slot];
                        let mut ids: Vec<u32> =
                            batched.rows[row].iter().map(|kv| kv.value).collect();
                        ids.truncate(e.query.limit.min(*m));
                        e.ids = ids;
                        e.shared.extend(shared.iter().copied());
                        e.coalesced = true;
                        e.labels.push(batch_label.clone());
                    }
                }
                Err(_) => {
                    // the shared batch is defeated: every member finishes
                    // serially from its own candidates
                    for (out, m, slot) in chunk {
                        self.finish_serially(&mut executed[*slot], *slot, out, *m);
                    }
                }
            }
        }

        // integrity audit: a completed query whose tagged buffers show up
        // in the fault log as corruption targets re-executes from the
        // pristine (untagged) resident table, so completed results always
        // match the fault-free oracle
        let hit_labels: HashSet<String> = dev.fault_events()[fault_start..]
            .iter()
            .filter(|ev| ev.kind == simt::FaultKind::MemoryCorruption)
            .filter_map(|ev| ev.target.clone())
            .collect();
        if !hit_labels.is_empty() {
            for e in &mut executed {
                let tainted = e.error.is_none() && e.labels.iter().any(|l| hit_labels.contains(l));
                if tainted {
                    e.degrade = e.degrade.max(DegradeLevel::SerialBitonic);
                    self.run_query_ladder(e, None, true);
                }
            }
        }

        let mut report = self.finish(window, fault_start, batch_retries, executed);
        report.host_wall = wall_start.elapsed();
        report
    }

    /// Finishes one coalescable query from its candidate buffer with the
    /// serial rungs of the ladder: bitonic top-k on the query's stream,
    /// then (on failure) serial re-execution, then the CPU backend.
    fn finish_serially(&self, e: &mut Executed, slot: usize, out: &GpuBuffer<Kv<u32>>, m: usize) {
        let dev = self.dev;
        let stream_id = self.streams[slot % self.streams.len()].id();
        let before = dev.log_len();
        let r = {
            let (deadline, limit) = (e.deadline, e.query.limit);
            self.with_retries(
                deadline,
                &mut e.spent,
                &mut e.retries,
                &mut e.penalty,
                || {
                    dev.stream_scope(stream_id, || {
                        crate::engine::run_topk_stage(
                            dev,
                            out,
                            m,
                            limit.min(m),
                            TopKStrategy::Bitonic,
                        )
                    })
                },
            )
        };
        e.own.extend(before..dev.log_len());
        match r {
            Ok(res) => e.ids = res.items.iter().map(|kv| kv.value).collect(),
            Err(err @ QdbError::Timeout { .. }) => e.error = Some(err),
            Err(_) => {
                e.degrade = DegradeLevel::SerialBitonic;
                self.run_query_ladder(e, None, true);
            }
        }
    }

    /// Replays the drain's launches onto the shared timeline and builds
    /// the per-query and aggregate report.
    fn finish(
        &mut self,
        window: usize,
        fault_start: usize,
        batch_retries: usize,
        executed: Vec<Executed>,
    ) -> LoadReport {
        let dev = self.dev;
        let schedule = dev.schedule_since(window);
        let full_log = dev.log_since(0);
        let trace_json = chrome_trace_streams(&schedule, &full_log);
        let placed: HashMap<usize, (SimTime, SimTime)> = schedule
            .launches
            .iter()
            .map(|l| (l.index, (l.start, l.end)))
            .collect();

        let mut queries: Vec<ServedQuery> = executed
            .into_iter()
            .map(|e| {
                let spans: Vec<(SimTime, SimTime)> = e
                    .own
                    .iter()
                    .chain(e.shared.iter())
                    .filter_map(|i| placed.get(i).copied())
                    .collect();
                let first = spans.iter().map(|s| s.0).fold(SimTime::ZERO, |a, b| {
                    if a.0 == 0.0 || b.0 < a.0 {
                        b
                    } else {
                        a
                    }
                });
                let last =
                    spans
                        .iter()
                        .map(|s| s.1)
                        .fold(SimTime::ZERO, |a, b| if b.0 > a.0 { b } else { a });
                let reports: Vec<_> = e
                    .own
                    .iter()
                    .chain(e.shared.iter())
                    .map(|&i| full_log[i].clone())
                    .collect();
                let mut timing = QueryTiming {
                    queued: first,
                    exec: SimTime(last.0 - first.0),
                    total: last,
                };
                if e.penalty.0 > 0.0 {
                    timing.exec += e.penalty;
                    timing.total += e.penalty;
                }
                ServedQuery {
                    ticket: e.ticket,
                    sql: e.sql,
                    result: QueryResult {
                        ids: e.ids,
                        kernel_time: reports.iter().map(|r| r.time).sum(),
                        breakdown: reports
                            .iter()
                            .map(|r| (r.name.to_string(), r.time))
                            .collect(),
                    },
                    timing,
                    coalesced: e.coalesced,
                    error: e.error,
                    retries: e.retries,
                    degrade: e.degrade,
                    cached: e.from_cache,
                }
            })
            .collect();
        queries.sort_by_key(|q| q.ticket.0);

        // every freshly computed result is valid exactly at the current
        // epoch; the next append invalidates all of them at once
        if self.cfg.result_cache {
            let epoch = self.table.epoch();
            for q in &queries {
                if q.completed() && !q.cached {
                    self.cache
                        .insert(q.sql.clone(), (epoch, q.result.ids.clone()));
                }
            }
        }

        let mut totals: Vec<f64> = queries
            .iter()
            .filter(|q| q.completed())
            .map(|q| q.timing.total.0)
            .collect();
        totals.sort_by(f64::total_cmp);
        let pct = |p: f64| -> SimTime {
            if totals.is_empty() {
                return SimTime::ZERO;
            }
            let idx = ((totals.len() - 1) as f64 * p).round() as usize;
            SimTime(totals[idx])
        };

        let resilience = ResilienceStats {
            completed: queries.iter().filter(|q| q.completed()).count(),
            shed: std::mem::take(&mut self.shed),
            timed_out: queries
                .iter()
                .filter(|q| matches!(q.error, Some(QdbError::Timeout { .. })))
                .count(),
            failed: queries
                .iter()
                .filter(|q| q.error.is_some() && !matches!(q.error, Some(QdbError::Timeout { .. })))
                .count(),
            retries: batch_retries + queries.iter().map(|q| q.retries).sum::<usize>(),
            degraded_serial: queries
                .iter()
                .filter(|q| q.degrade == DegradeLevel::SerialBitonic)
                .count(),
            degraded_cpu: queries
                .iter()
                .filter(|q| q.degrade == DegradeLevel::CpuHeap)
                .count(),
            faults_injected: dev.fault_events_len() - fault_start,
            // replication machinery lives in the sharded layer; one
            // server bound to one device can never fail over or rebuild
            failovers: 0,
            rebuilds: 0,
            breaker_trips: 0,
            cache_hits: std::mem::take(&mut self.cache_hits),
            cache_misses: std::mem::take(&mut self.cache_misses),
            cache_refreshes: std::mem::take(&mut self.cache_refreshes),
        };

        let makespan = schedule.makespan;
        let queries_per_sec = if makespan.0 > 0.0 {
            resilience.completed as f64 / makespan.0
        } else {
            0.0
        };

        LoadReport {
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            makespan,
            serial_time: schedule.serial_time,
            queries_per_sec,
            resilience,
            queries,
            schedule,
            host_wall: std::time::Duration::ZERO,
            trace_json,
        }
    }
}

/// Mirrors the `execute`-time `Unsupported` checks so [`Server::submit`]
/// rejects shapes eagerly instead of failing mid-drain.
fn validate_executable(q: &Query) -> Result<(), SqlError> {
    if let OrderBy::Rank { likes_weight } = q.order_by {
        if (likes_weight - 0.5).abs() > 1e-9 {
            return Err(SqlError::Unsupported("ranking weight other than 0.5"));
        }
        if q.filter.is_some() {
            return Err(SqlError::Unsupported(
                "WHERE combined with a ranking function",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::twitter::TweetTable;
    use simt::FaultPlan;

    fn setup(n: usize) -> (Device, TweetTable) {
        (Device::titan_x(), TweetTable::generate(n, 31))
    }

    /// Keys (not ids) of a result — batched and per-query pipelines may
    /// break exact-tie key duplicates differently, but the returned key
    /// sequence must be identical.
    fn keys(host: &TweetTable, ids: &[u32]) -> Vec<u32> {
        ids.iter()
            .map(|&id| host.retweet_count[id as usize])
            .collect()
    }

    /// The epoch-tagged result cache: warm hits are bit-identical and
    /// free (zero launches, zero simulated time), appends invalidate at
    /// the epoch granularity, and the counters/render track all of it.
    #[test]
    fn result_cache_serves_hits_and_appends_invalidate() {
        let (dev, host) = setup(8_000);
        let table = GpuTweetTable::upload_with_capacity(&dev, &host, 10_000);
        let sql = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10";
        let mut server = Server::new(
            &dev,
            &table,
            ServerConfig {
                result_cache: true,
                ..ServerConfig::default()
            },
        );
        server.submit(sql, SubmitOptions::default()).unwrap();
        let a = server.drain();
        assert!(!a.queries[0].cached, "cold submission computes");
        assert_eq!(a.resilience.cache_misses, 1);

        let log0 = dev.log_len();
        server.submit(sql, SubmitOptions::default()).unwrap();
        let b = server.drain();
        assert!(b.queries[0].cached);
        assert_eq!(b.queries[0].result.ids, a.queries[0].result.ids);
        assert_eq!(b.queries[0].result.kernel_time, SimTime::ZERO);
        assert_eq!(b.resilience.cache_hits, 1);
        assert_eq!(dev.log_len(), log0, "a cache hit launches nothing");
        assert!(b.resilience.render().contains("cache hits 1"));

        // an append bumps the epoch: the stale entry refreshes and the
        // recomputed result matches a from-scratch execution
        let batch = TweetTable::generate_at(500, 5, host.len() as u32);
        table.append_batch(&dev, &batch).unwrap();
        server.submit(sql, SubmitOptions::default()).unwrap();
        let c = server.drain();
        assert!(!c.queries[0].cached);
        assert_eq!(c.resilience.cache_refreshes, 1);
        let oracle = execute(&dev, &table, &parse(sql).unwrap(), Strategy::StageBitonic).unwrap();
        assert_eq!(c.queries[0].result.ids, oracle.ids);
        // the refreshed entry serves the new epoch
        server.submit(sql, SubmitOptions::default()).unwrap();
        assert_eq!(server.drain().resilience.cache_hits, 1);
        // cache off (the default): counters stay zero and the render is
        // byte-identical to previous releases
        let mut plain = Server::new(&dev, &table, ServerConfig::default());
        plain.submit(sql, SubmitOptions::default()).unwrap();
        let p = plain.drain();
        assert!(!p.resilience.render().contains("cache"));
    }

    #[test]
    fn mixed_queries_agree_with_serial_execution() {
        let (dev, host) = setup(10_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 10"),
            "SELECT id FROM tweets WHERE lang='ja' ORDER BY retweet_count DESC LIMIT 25".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5".to_string(),
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 3"),
        ];
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let tickets: Vec<QueryTicket> = sqls
            .iter()
            .map(|s| server.submit(s, SubmitOptions::default()).expect("submit"))
            .collect();
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());

        for (sql, t) in sqls.iter().zip(&tickets) {
            let served = &report.queries[t.0];
            assert_eq!(&served.sql, sql);
            assert!(served.completed(), "{sql}: {:?}", served.error);
            assert_eq!(served.degrade, DegradeLevel::None);
            let q = parse(sql).unwrap();
            let serial = execute(&dev, &table, &q, Strategy::StageBitonic).unwrap();
            if q.group_by_uid {
                // uids map to counts; compare count sequences
                let mut counts = std::collections::HashMap::new();
                for &u in &host.uid {
                    *counts.entry(u).or_insert(0u32) += 1;
                }
                let got: Vec<u32> = served.result.ids.iter().map(|u| counts[u]).collect();
                let want: Vec<u32> = serial.ids.iter().map(|u| counts[u]).collect();
                assert_eq!(got, want, "{sql}");
            } else if matches!(q.order_by, OrderBy::Rank { .. }) {
                let rank = |id: u32| {
                    host.retweet_count[id as usize] as f32
                        + 0.5 * host.likes_count[id as usize] as f32
                };
                let got: Vec<f32> = served.result.ids.iter().map(|&i| rank(i)).collect();
                let want: Vec<f32> = serial.ids.iter().map(|&i| rank(i)).collect();
                assert_eq!(got, want, "{sql}");
            } else {
                assert_eq!(
                    keys(&host, &served.result.ids),
                    keys(&host, &serial.ids),
                    "{sql}"
                );
            }
            assert!(served.timing.total.0 >= served.timing.exec.0);
        }
        // the two plain DESC retweet_count queries coalesced, the rest not
        assert!(report.queries[0].coalesced);
        assert!(report.queries[1].coalesced);
        assert!(!report.queries[2].coalesced);
        assert!(!report.queries[3].coalesced);
        assert!(!report.queries[4].coalesced);
        assert!(report.makespan.0 > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p50.0 <= report.p95.0 && report.p95.0 <= report.p99.0);
        // a fault-free drain reports a clean resilience ledger
        assert_eq!(report.resilience.completed, sqls.len());
        assert_eq!(report.resilience.retries, 0);
        assert_eq!(report.resilience.shed, 0);
        assert_eq!(report.resilience.faults_injected, 0);
        // the drain ran on the host, so wall-clock capture must be live
        assert!(report.host_wall > std::time::Duration::ZERO);
        assert!(report.host_queries_per_sec() > 0.0);
    }

    #[test]
    fn sanitizer_clean_across_batched_and_streamed_serving() {
        // the ISSUE-level acceptance check for the serving layer: the
        // whole drain — pack kernel, batched top-k, and every per-stream
        // pipeline — runs under the sanitizer with zero findings
        let (dev, host) = setup(10_000);
        let table = GpuTweetTable::upload(&dev, &host);
        dev.enable_sanitizer();
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 10"),
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 4"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 12".to_string(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5".to_string(),
        ];
        for s in &sqls {
            server.submit(s, SubmitOptions::default()).expect("submit");
        }
        let report = server.drain();
        assert_eq!(report.queries.len(), sqls.len());
        assert!(
            report.queries[0].coalesced,
            "batched path must be exercised"
        );

        let reports = dev.take_sanitizer_reports();
        assert!(!reports.is_empty(), "no serving launches were sanitized");
        assert!(
            reports.iter().any(|r| r.kernel == "batched_bitonic_row"),
            "batched top-k launch missing from sanitizer coverage"
        );
        assert!(
            reports.iter().any(|r| r.stream != 0),
            "streamed launches missing from sanitizer coverage"
        );
        for rep in &reports {
            assert!(rep.is_clean(), "serving-layer findings\n{}", rep.render());
        }
    }

    #[test]
    fn coalescing_matches_uncoalesced_results() {
        let (dev, host) = setup(12_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let sqls: Vec<String> = (0..12)
            .map(|i| {
                let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.03 * (i % 8) as f64);
                let k = 1 + 7 * (i % 5);
                format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT {k}")
            })
            .collect();

        let run = |coalesce: bool| {
            let mut server = Server::new(
                &dev,
                &table,
                ServerConfig {
                    coalesce,
                    ..ServerConfig::default()
                },
            );
            for s in &sqls {
                server.submit(s, SubmitOptions::default()).unwrap();
            }
            server.drain()
        };
        let on = run(true);
        let off = run(false);
        for (a, b) in on.queries.iter().zip(&off.queries) {
            assert_eq!(
                keys(&host, &a.result.ids),
                keys(&host, &b.result.ids),
                "{}",
                a.sql
            );
            assert!(a.coalesced);
            assert!(!b.coalesced);
        }
    }

    #[test]
    fn concurrent_serving_beats_serial() {
        let (dev, host) = setup(1 << 15);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for i in 0..32 {
            let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.002 * i as f64);
            server
                .submit(&format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 16"
                ), SubmitOptions::default())
                .unwrap();
        }
        let report = server.drain();
        assert!(
            report.speedup() >= 2.0,
            "32 coalesced small queries should serve ≥2× faster than serial, got {:.2}×",
            report.speedup()
        );
        assert!(report.queries.iter().all(|q| q.coalesced));
    }

    #[test]
    fn drain_trace_has_a_track_per_active_stream() {
        let (dev, host) = setup(3_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for k in [5usize, 9, 13] {
            server
                .submit(
                    &format!("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT {k}"),
                    SubmitOptions::default(),
                )
                .unwrap();
        }
        let report = server.drain();
        let trace = report.chrome_trace();
        assert!(trace.starts_with('['));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("thread_name"));
        assert!(trace.contains("qdb_filter"));
        assert!(trace.contains("batched_bitonic_row"));
    }

    #[test]
    fn server_is_reusable_across_drains() {
        let (dev, host) = setup(5_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let t0 = server
            .submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 4",
                SubmitOptions::default(),
            )
            .unwrap();
        let r0 = server.drain();
        assert_eq!(r0.queries.len(), 1);
        assert_eq!(r0.queries[0].ticket, t0);
        assert_eq!(server.pending_len(), 0);

        let t1 = server
            .submit(
                "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 4",
                SubmitOptions::default(),
            )
            .unwrap();
        let r1 = server.drain();
        assert_eq!(r1.queries.len(), 1);
        assert_eq!(r1.queries[0].ticket, t1);
        // tickets keep counting across drains
        assert_eq!(t1.0, t0.0 + 1);
    }

    #[test]
    fn submit_rejects_bad_sql_eagerly() {
        let (dev, host) = setup(1_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        assert!(matches!(
            server.submit("DROP TABLE tweets", SubmitOptions::default()),
            Err(QdbError::Parse(_))
        ));
        assert!(matches!(
            server.submit(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.9 * likes_count DESC LIMIT 5",
                SubmitOptions::default()
            ),
            Err(QdbError::Parse(SqlError::Unsupported(_)))
        ));
        assert_eq!(server.pending_len(), 0);
    }

    #[test]
    fn submit_validation_returns_typed_errors() {
        let (dev, host) = setup(100);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        // k = 0 dies in the parser, typed, no panic
        assert!(matches!(
            server.submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 0",
                SubmitOptions::default()
            ),
            Err(QdbError::Parse(SqlError::BadLimit(_)))
        ));
        // k > n is rejected against the resident table
        assert!(matches!(
            server.submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 200",
                SubmitOptions::default()
            ),
            Err(QdbError::InvalidK { k: 200, n: 100 })
        ));
        // a dead-on-arrival deadline is rejected at submission
        assert!(matches!(
            server.submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
                SubmitOptions::default().with_deadline(SimTime(0.0))
            ),
            Err(QdbError::DeadlineExpired { .. })
        ));
        assert_eq!(server.pending_len(), 0);
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let (dev, host) = setup(1_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let cfg = ServerConfig {
            max_queue: 2,
            ..ServerConfig::default()
        };
        let mut server = Server::new(&dev, &table, cfg);
        let sql = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5";
        server.submit(sql, SubmitOptions::default()).unwrap();
        server.submit(sql, SubmitOptions::default()).unwrap();
        let shed = server.submit(sql, SubmitOptions::default());
        assert!(matches!(
            shed,
            Err(QdbError::Overloaded {
                queue_len: 2,
                max_queue: 2
            })
        ));
        let report = server.drain();
        assert_eq!(report.resilience.shed, 1);
        assert_eq!(report.resilience.completed, 2);
        // the shed counter resets between drains
        server.submit(sql, SubmitOptions::default()).unwrap();
        assert_eq!(server.drain().resilience.shed, 0);
    }

    #[test]
    fn persistent_launch_faults_degrade_to_cpu_with_oracle_results() {
        let (dev, host) = setup(4_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 10"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 8".to_string(),
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 6".to_string(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 5".to_string(),
        ];
        // fault-free oracle first, on the same device
        let oracles: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &table, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        // now every launch fails: nothing on the device can complete
        dev.set_fault_plan(FaultPlan {
            launch_failure_rate: 1.0,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for s in &sqls {
            server.submit(s, SubmitOptions::default()).unwrap();
        }
        let report = server.drain();
        dev.clear_fault_plan();
        assert_eq!(report.resilience.completed, sqls.len());
        assert_eq!(report.resilience.degraded_cpu, sqls.len());
        assert!(report.resilience.retries > 0);
        assert!(report.resilience.faults_injected > 0);
        for (i, served) in report.queries.iter().enumerate() {
            assert_eq!(served.degrade, DegradeLevel::CpuHeap, "{}", served.sql);
            assert!(served.retries > 0, "{}", served.sql);
            // CPU answers must match the fault-free device oracle by key
            let q = parse(&sqls[i]).unwrap();
            if q.group_by_uid {
                let mut counts = std::collections::HashMap::new();
                for &u in &host.uid {
                    *counts.entry(u).or_insert(0u32) += 1;
                }
                let got: Vec<u32> = served.result.ids.iter().map(|u| counts[u]).collect();
                let want: Vec<u32> = oracles[i].iter().map(|u| counts[u]).collect();
                assert_eq!(got, want, "{}", served.sql);
            } else if matches!(q.order_by, OrderBy::Rank { .. }) {
                let rank = |id: u32| {
                    host.retweet_count[id as usize] as f32
                        + 0.5 * host.likes_count[id as usize] as f32
                };
                let got: Vec<f32> = served.result.ids.iter().map(|&x| rank(x)).collect();
                let want: Vec<f32> = oracles[i].iter().map(|&x| rank(x)).collect();
                assert_eq!(got, want, "{}", served.sql);
            } else if q.ascending {
                let got = keys(&host, &served.result.ids);
                let want = keys(&host, &oracles[i]);
                assert_eq!(got, want, "{}", served.sql);
            } else {
                assert_eq!(
                    keys(&host, &served.result.ids),
                    keys(&host, &oracles[i]),
                    "{}",
                    served.sql
                );
            }
        }
    }

    #[test]
    fn tight_deadline_times_out_under_faults_and_reports_typed_error() {
        let (dev, host) = setup(2_000);
        let table = GpuTweetTable::upload(&dev, &host);
        dev.set_fault_plan(FaultPlan {
            launch_failure_rate: 1.0,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let t = server
            .submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
                SubmitOptions::default().with_deadline(SimTime(1e-9)),
            )
            .unwrap();
        let report = server.drain();
        dev.clear_fault_plan();
        let served = &report.queries[t.0];
        assert!(!served.completed());
        assert!(
            matches!(served.error, Some(QdbError::Timeout { .. })),
            "expected timeout, got {:?}",
            served.error
        );
        assert_eq!(report.resilience.timed_out, 1);
        assert_eq!(report.resilience.completed, 0);
    }

    #[test]
    fn generous_deadline_completes_without_faults() {
        let (dev, host) = setup(2_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let t = server
            .submit(
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
                SubmitOptions::default().with_deadline(SimTime(1.0)),
            )
            .unwrap();
        let report = server.drain();
        let served = &report.queries[t.0];
        assert!(served.completed());
        assert_eq!(served.result.ids.len(), 5);
        assert_eq!(report.resilience.timed_out, 0);
    }

    #[test]
    fn corrupted_candidate_buffers_are_audited_and_rerun() {
        let (dev, host) = setup(6_000);
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.3);
        let sqls: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {}",
                    4 + i
                )
            })
            .collect();
        let oracles: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute(&dev, &table, &parse(s).unwrap(), Strategy::StageBitonic)
                    .unwrap()
                    .ids
            })
            .collect();
        // every launch flips one element of some live tagged buffer
        dev.set_fault_plan(FaultPlan {
            corruption_rate: 1.0,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for s in &sqls {
            server.submit(s, SubmitOptions::default()).unwrap();
        }
        let report = server.drain();
        dev.clear_fault_plan();
        assert!(report.resilience.faults_injected > 0);
        assert_eq!(report.resilience.completed, sqls.len());
        // the audit must have re-derived at least one tainted query
        assert!(
            report
                .queries
                .iter()
                .any(|q| q.degrade != DegradeLevel::None),
            "corruption fired but no query was re-derived"
        );
        for (i, served) in report.queries.iter().enumerate() {
            assert_eq!(
                keys(&host, &served.result.ids),
                keys(&host, &oracles[i]),
                "{}",
                served.sql
            );
        }
    }
}
