//! The typed error hierarchy of the serving path.
//!
//! Every fallible qdb operation reports a [`QdbError`]; nothing on the
//! submit/drain path panics. Errors carry enough structure for the
//! server's resilience machinery to act on them: [`QdbError::is_transient`]
//! separates faults worth retrying (injected device faults, transient
//! allocation failures) from permanent ones (malformed SQL, an
//! over-budget launch shape), and the shedding/timeout variants record
//! the limits that were exceeded.

use simt::{LaunchError, OutOfMemory, SimTime};
use topk::TopKError;

use crate::sql::SqlError;

/// Any error the qdb serving path can report.
#[derive(Debug, Clone, PartialEq)]
pub enum QdbError {
    /// The SQL text failed to parse or asks for an unsupported shape.
    Parse(SqlError),
    /// LIMIT k is unusable against the resident table (k = 0 or k > n).
    InvalidK {
        /// The requested k.
        k: usize,
        /// Rows in the resident table.
        n: usize,
    },
    /// The resident table has no rows.
    EmptyTable,
    /// The query was submitted with a deadline that had already passed.
    DeadlineExpired {
        /// The dead-on-arrival deadline.
        deadline: SimTime,
    },
    /// The query's deadline elapsed before an attempt could complete.
    Timeout {
        /// The per-query deadline.
        deadline: SimTime,
        /// Simulated time spent when the query was cancelled.
        spent: SimTime,
    },
    /// Admission control shed the query: the submit queue was full.
    Overloaded {
        /// Queue length at submission.
        queue_len: usize,
        /// The configured queue bound.
        max_queue: usize,
    },
    /// A device fault (injected or real) defeated the query.
    DeviceFault {
        /// Human-readable cause.
        what: String,
        /// True when retrying could have succeeded (the retry budget was
        /// simply exhausted).
        transient: bool,
        /// Execution attempts made before giving up.
        attempts: usize,
        /// Cluster index of the faulting device, when known (sharded
        /// paths attribute the shard's serving device; the single-device
        /// server has no cluster index).
        device: Option<usize>,
    },
    /// An internal invariant was violated — a bug in this library, not
    /// in the query or the device. Typed (instead of a panic) so the
    /// no-panics contract holds on every serving path.
    Internal {
        /// The violated invariant.
        what: String,
    },
    /// An append would overflow the rows the table's device columns
    /// were allocated for (see `GpuTweetTable::upload_with_capacity`).
    /// Device buffers have fixed extents, so growth headroom is a
    /// provisioning decision made at load time — running out is a typed,
    /// recoverable condition, not a panic.
    CapacityExceeded {
        /// Rows the table would hold after the append.
        needed: usize,
        /// Rows the device columns were allocated for.
        cap: usize,
    },
    /// The query asks for a simulator-only feature on a backend that
    /// lacks it (e.g. `EXPLAIN SANITIZE` on the CPU backend). Typed so
    /// callers can route around it; never a silent degradation.
    UnsupportedOnBackend {
        /// The backend that rejected the request.
        backend: &'static str,
        /// The unavailable feature.
        feature: &'static str,
    },
}

impl QdbError {
    /// True for errors a retry may clear (injected launch faults and
    /// allocation failures); parse, validation, timeout and shed errors
    /// are final.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            QdbError::DeviceFault {
                transient: true,
                ..
            }
        )
    }

    /// Stable kind name for reports and JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            QdbError::Parse(_) => "parse",
            QdbError::InvalidK { .. } => "invalid-k",
            QdbError::EmptyTable => "empty-table",
            QdbError::DeadlineExpired { .. } => "deadline-expired",
            QdbError::Timeout { .. } => "timeout",
            QdbError::Overloaded { .. } => "overloaded",
            QdbError::DeviceFault { .. } => "device-fault",
            QdbError::Internal { .. } => "internal",
            QdbError::CapacityExceeded { .. } => "capacity-exceeded",
            QdbError::UnsupportedOnBackend { .. } => "unsupported-on-backend",
        }
    }
}

impl std::fmt::Display for QdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QdbError::Parse(e) => write!(f, "{e}"),
            QdbError::InvalidK { k, n } => {
                write!(f, "LIMIT {k} unusable against a {n}-row table")
            }
            QdbError::EmptyTable => write!(f, "resident table is empty"),
            QdbError::DeadlineExpired { deadline } => {
                write!(f, "deadline {deadline} already expired at submission")
            }
            QdbError::Timeout { deadline, spent } => {
                write!(f, "deadline {deadline} exceeded after {spent}")
            }
            QdbError::Overloaded {
                queue_len,
                max_queue,
            } => write!(
                f,
                "shed: submit queue full ({queue_len} of {max_queue} slots)"
            ),
            QdbError::DeviceFault {
                what,
                transient,
                attempts,
                device,
            } => {
                let class = if *transient { "transient" } else { "fatal" };
                write!(f, "{class} device fault")?;
                if let Some(d) = device {
                    write!(f, " on dev{d}")?;
                }
                write!(f, " after {attempts} attempt(s): {what}")
            }
            QdbError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            QdbError::CapacityExceeded { needed, cap } => {
                write!(
                    f,
                    "append needs {needed} rows but the device columns were \
                     allocated for {cap}"
                )
            }
            QdbError::UnsupportedOnBackend { backend, feature } => {
                write!(f, "the {backend} backend does not support {feature}")
            }
        }
    }
}

impl std::error::Error for QdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QdbError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for QdbError {
    fn from(e: SqlError) -> Self {
        QdbError::Parse(e)
    }
}

impl From<LaunchError> for QdbError {
    fn from(e: LaunchError) -> Self {
        QdbError::DeviceFault {
            transient: e.is_transient(),
            what: e.to_string(),
            attempts: 1,
            device: None,
        }
    }
}

impl From<OutOfMemory> for QdbError {
    fn from(e: OutOfMemory) -> Self {
        // allocation pressure is transient by nature: buffers retire as
        // queries drain (and injected OOMs model exactly that)
        QdbError::DeviceFault {
            what: e.to_string(),
            transient: true,
            attempts: 1,
            device: None,
        }
    }
}

impl From<TopKError> for QdbError {
    fn from(e: TopKError) -> Self {
        match e {
            TopKError::ZeroK => QdbError::InvalidK { k: 0, n: 0 },
            TopKError::EmptyInput => QdbError::EmptyTable,
            TopKError::Launch(l) => l.into(),
            TopKError::UnsupportedOnBackend { backend, feature } => {
                QdbError::UnsupportedOnBackend { backend, feature }
            }
            // a buffer routed to the wrong engine is a permanent plan
            // defect, not something a retry can clear
            TopKError::BackendMismatch { backend, buffer } => QdbError::DeviceFault {
                what: format!("the {backend} backend was handed a {buffer} buffer"),
                transient: false,
                attempts: 1,
                device: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transiency_classification() {
        let injected: QdbError = LaunchError::DeviceFault { kernel: "k" }.into();
        assert!(injected.is_transient());
        let shape: QdbError = LaunchError::EmptyLaunch.into();
        assert!(!shape.is_transient());
        // a down device is final: the conversion must classify it fatal
        let down: QdbError = LaunchError::DeviceDown { kernel: "k" }.into();
        assert!(!down.is_transient());
        assert!(!QdbError::Internal {
            what: "x".to_string()
        }
        .is_transient());
        let oom: QdbError = OutOfMemory {
            requested: 1,
            in_use: 0,
            capacity: 1,
        }
        .into();
        assert!(oom.is_transient());
        assert!(!QdbError::EmptyTable.is_transient());
        assert!(!QdbError::Timeout {
            deadline: SimTime(1e-3),
            spent: SimTime(2e-3),
        }
        .is_transient());
    }

    #[test]
    fn kinds_and_display_are_stable() {
        let e = QdbError::Overloaded {
            queue_len: 32,
            max_queue: 32,
        };
        assert_eq!(e.kind(), "overloaded");
        assert!(e.to_string().contains("queue full"));
        let e = QdbError::InvalidK { k: 0, n: 100 };
        assert_eq!(e.kind(), "invalid-k");
        assert!(e.to_string().contains("LIMIT 0"));
        let e = QdbError::Internal {
            what: "delegate id 7 missing from its shard".to_string(),
        };
        assert_eq!(e.kind(), "internal");
        assert!(e.to_string().contains("invariant"));
        // attributed device faults name the device in the rendering
        let e = QdbError::DeviceFault {
            what: "boom".to_string(),
            transient: false,
            attempts: 2,
            device: Some(3),
        };
        assert!(e.to_string().contains("on dev3"));
    }
}
