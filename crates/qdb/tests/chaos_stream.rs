//! Chaos suite for the streaming layer: random appends interleaved with
//! standing-view refreshes and result-cached serving, under transient
//! fault plans and permanent device loss.
//!
//! The invariants extend `chaos_serving`/`chaos_sharded` to moving data:
//!
//! * (a) **no panic ever escapes** — appends, refreshes and drains
//!   return typed results no matter what the devices inject;
//! * (b) **a completed refresh is oracle-exact** — whatever mix of
//!   delta-merges and rescans maintenance chose, the standing result is
//!   bit-identical to a from-scratch rescan of the current table on a
//!   fault-free device;
//! * (c) **failure never corrupts the view** — after a refresh fails,
//!   the next successful refresh still matches the oracle (the standing
//!   run only advances on commit);
//! * (d) **ledgers stay consistent** — view mode counters equal the
//!   number of successful refreshes, and the server's cache counters
//!   partition every admitted query into hit/miss/refresh.

use datagen::twitter::TweetTable;
use proptest::prelude::*;
use qdb::shard::{PartitionPolicy, ShardedTable};
use qdb::{
    execute_sql, parse_sql, GpuTweetTable, QdbError, ReplicationFactor, Server, ServerConfig,
    Strategy, SubmitOptions, TopKView, ViewConfig,
};
use simt::topology::{Cluster, ClusterSpec};
use simt::{Device, FaultPlan, SimTime};

/// The three maintainable view shapes (GROUP BY is rejected at
/// registration by design).
fn view_sql(shape: usize) -> &'static str {
    match shape % 3 {
        0 => {
            "SELECT id FROM tweets WHERE tweet_time < 1500000 \
             ORDER BY retweet_count DESC LIMIT 12"
        }
        1 => "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 9",
        _ => "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 7",
    }
}

/// Fault-free rescan of the current host table on a fresh device — the
/// oracle every completed streamed read must match bit-for-bit.
fn oracle(host: &TweetTable, sql: &str) -> Vec<u32> {
    let dev = Device::titan_x();
    let gpu = GpuTweetTable::upload(&dev, host);
    execute_sql(&dev, &gpu, &parse_sql(sql).unwrap(), Strategy::StageBitonic)
        .expect("fault-free oracle")
        .ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single-device maintenance under launch-failure/stall/oom chaos:
    /// every refresh over a randomly growing table either returns the
    /// bit-exact rescan result or fails typed, and a failed refresh
    /// never poisons the standing run.
    #[test]
    fn chaotic_view_refresh_is_exact_or_loud(
        seed in any::<u64>(),
        shape in 0usize..3,
        launch_failure_rate in 0.0f64..0.4,
        stall_rate in 0.0f64..0.3,
        oom_rate in 0.0f64..0.2,
        max_faults in 1usize..64,
        batches in prop::collection::vec(0usize..900, 4..8),
    ) {
        let mut host = TweetTable::generate(4_000, seed);
        let cap = host.len() + batches.iter().sum::<usize>();
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, cap);
        let sql = view_sql(shape);
        let view = TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default())
            .expect("view registers");

        dev.set_fault_plan(FaultPlan {
            seed: seed.wrapping_add(1),
            launch_failure_rate,
            stall_rate,
            stall_delay: SimTime(100e-6),
            oom_rate,
            max_faults,
            ..FaultPlan::none()
        });

        let mut ok_refreshes = 0usize;
        for (i, &rows) in batches.iter().enumerate() {
            if rows > 0 {
                // appends splice resident columns; transient kernel chaos
                // cannot defeat them, so host and device stay in lockstep
                let batch = TweetTable::generate_at(rows, seed ^ (i as u64 + 1), host.len() as u32);
                gpu.append_batch(&dev, &batch).expect("append within capacity");
                host.extend_from(&batch);
            }
            match view.refresh(&dev, &gpu) {
                Ok(r) => {
                    ok_refreshes += 1;
                    prop_assert_eq!(r.epoch, gpu.epoch());
                    // (b) bit-exact against a fault-free rescan
                    prop_assert_eq!(&r.ids, &oracle(&host, sql), "step {}: {}", i, sql);
                }
                Err(e) => {
                    // (a)+(c) typed failure, view untouched
                    prop_assert!(
                        matches!(e, QdbError::DeviceFault { .. }),
                        "step {i}: untyped chaos error {e:?}"
                    );
                }
            }
        }

        dev.clear_fault_plan();
        // (c) the view recovers: one clean refresh lands on the oracle
        let r = view.refresh(&dev, &gpu).expect("clean refresh");
        prop_assert_eq!(&r.ids, &oracle(&host, sql), "post-chaos {}", sql);
        // (d) mode counters account for every successful refresh
        let stats = view.stats();
        prop_assert_eq!(
            stats.current_hits + stats.delta_merges + stats.rescans,
            ok_refreshes + 1
        );
    }

    /// Replicated maintenance across a permanent device loss at a random
    /// point in the append stream: with `r = 2` every refresh after the
    /// loss still completes bit-exact (delta scans fail over to the
    /// surviving replica), and appends keep landing on the healthy
    /// copies.
    #[test]
    fn chaotic_replicated_view_survives_device_loss(
        seed in any::<u64>(),
        shape in 0usize..3,
        down_device in 0usize..4,
        down_step in 0usize..4,
        policy_idx in 0usize..3,
        batches in prop::collection::vec(8usize..700, 4..6),
    ) {
        let mut host = TweetTable::generate(5_000, seed);
        let cap = host.len() + batches.iter().sum::<usize>();
        let sql = view_sql(shape);
        let view = TopKView::register(sql, Strategy::StageBitonic, ViewConfig::default())
            .expect("view registers");

        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated_with_capacity(
            &cluster,
            &host,
            PartitionPolicy::all()[policy_idx],
            ReplicationFactor(2),
            cap,
        )
        .expect("replicated partition");

        // a healthy baseline refresh so the loss hits a live view
        let r0 = view.refresh_sharded(&cluster, &table, 2).expect("baseline refresh");
        prop_assert_eq!(&r0.ids, &oracle(&host, sql), "baseline {}", sql);

        let mut lost = false;
        let mut skipped = 0usize;
        for (i, &rows) in batches.iter().enumerate() {
            if i == down_step {
                cluster.device(down_device).mark_down();
                lost = true;
            }
            let batch = TweetTable::generate_at(rows, seed ^ (i as u64 + 1), host.len() as u32);
            let receipt = table.append_batch(&cluster, &batch).expect("replicated append");
            host.extend_from(&batch);
            skipped += receipt.skipped_replicas;
            // (b) r=2 absorbs one permanent loss: refresh must complete
            let r = view.refresh_sharded(&cluster, &table, 2).expect("refresh under loss");
            prop_assert_eq!(&r.ids, &oracle(&host, sql), "step {}: {}", i, sql);
        }
        // hash routing spreads every batch over all shards, so appends
        // after the loss must have skipped the dead device's copies
        // (range/round-robin may legitimately route around it)
        if lost && PartitionPolicy::all()[policy_idx] == PartitionPolicy::Hash {
            prop_assert!(skipped > 0, "down device's replicas were never skipped");
        }

        // (d) every refresh completed, so the counters cover them all
        let stats = view.stats();
        prop_assert_eq!(
            stats.current_hits + stats.delta_merges + stats.rescans,
            batches.len() + 1
        );
    }

    /// Result-cached serving over a randomly appending table under
    /// transient chaos: completed queries are oracle-exact at their
    /// epoch, cache hits never fail (they launch nothing), and each
    /// drain's cache counters partition exactly the queries it admitted.
    #[test]
    fn chaotic_cached_serving_over_a_stream_is_exact(
        seed in any::<u64>(),
        launch_failure_rate in 0.0f64..0.3,
        stall_rate in 0.0f64..0.2,
        max_faults in 1usize..48,
        batches in prop::collection::vec(0usize..600, 3..6),
    ) {
        let mut host = TweetTable::generate(4_000, seed);
        let cap = host.len() + batches.iter().sum::<usize>();
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, cap);
        let sqls: Vec<&str> = (0..3).map(view_sql).collect();
        let mut server = Server::new(
            &dev,
            &gpu,
            ServerConfig {
                result_cache: true,
                coalesce: false,
                ..ServerConfig::default()
            },
        );

        dev.set_fault_plan(FaultPlan {
            seed: seed.wrapping_add(2),
            launch_failure_rate,
            stall_rate,
            stall_delay: SimTime(100e-6),
            max_faults,
            ..FaultPlan::none()
        });

        for (i, &rows) in batches.iter().enumerate() {
            if rows > 0 {
                let batch = TweetTable::generate_at(rows, seed ^ (i as u64 + 7), host.len() as u32);
                gpu.append_batch(&dev, &batch).expect("append within capacity");
                host.extend_from(&batch);
            }
            let mut admitted = 0usize;
            for sql in &sqls {
                match server.submit(sql, SubmitOptions::default()) {
                    Ok(_) => admitted += 1,
                    Err(QdbError::Overloaded { .. }) => {}
                    Err(other) => prop_assert!(false, "untyped admission failure: {other:?}"),
                }
            }
            let report = server.drain();
            prop_assert_eq!(report.queries.len(), admitted);
            for served in &report.queries {
                match &served.error {
                    None => {
                        // (b) completed answers match the fault-free
                        // rescan of the table as it stands this epoch
                        prop_assert_eq!(
                            &served.result.ids,
                            &oracle(&host, &served.sql),
                            "epoch {}: {}",
                            gpu.epoch(),
                            served.sql
                        );
                    }
                    Some(QdbError::DeviceFault { .. }) | Some(QdbError::Timeout { .. }) => {
                        // a cache hit launches nothing, so it cannot fail
                        prop_assert!(!served.cached, "cache hit failed: {}", served.sql);
                    }
                    Some(other) => prop_assert!(false, "untyped drain error: {other:?}"),
                }
            }
            // (d) submit-time classification partitions the admitted set
            let res = &report.resilience;
            prop_assert_eq!(
                res.cache_hits + res.cache_misses + res.cache_refreshes,
                admitted
            );
        }
    }
}
