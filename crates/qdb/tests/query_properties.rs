//! Property-based end-to-end tests of the query engine: for random
//! tables, selectivities, and limits, every execution strategy must agree
//! with a naive host-side SQL evaluation.

use datagen::twitter::TweetTable;
use proptest::prelude::*;
use qdb::{
    queries::{filtered_topk, group_topk, ranked_topk},
    FilterOp, GpuTweetTable, Strategy, SubmitOptions, TopKStrategy,
};
use simt::Device;

/// Naive host evaluation of Q1/Q3: filter, order by retweet_count desc,
/// limit k — returns the winning retweet counts (ids may tie-permute).
fn host_q1(host: &TweetTable, pred: impl Fn(usize) -> bool, k: usize) -> Vec<u32> {
    let mut keys: Vec<u32> = (0..host.len())
        .filter(|&r| pred(r))
        .map(|r| host.retweet_count[r])
        .collect();
    keys.sort_unstable_by(|a, b| b.cmp(a));
    keys.truncate(k);
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn q1_agrees_for_random_selectivity_and_k(
        seed in any::<u64>(),
        sel in 0.0f64..1.0,
        k in 1usize..200,
    ) {
        let host = TweetTable::generate(20_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(sel);
        let expect = host_q1(&host, |r| host.tweet_time[r] < cutoff, k);
        for strat in Strategy::all() {
            let r = filtered_topk(&dev, &table, &FilterOp::TimeLess(cutoff), k, strat).unwrap();
            let keys: Vec<u32> = r.ids.iter().map(|&id| host.retweet_count[id as usize]).collect();
            prop_assert_eq!(&keys, &expect, "{} sel={} k={}", strat.name(), sel, k);
            for &id in &r.ids {
                prop_assert!(host.tweet_time[id as usize] < cutoff);
            }
        }
    }

    #[test]
    fn q2_agrees_for_random_k(seed in any::<u64>(), k in 1usize..100) {
        let host = TweetTable::generate(10_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let rank = |r: usize| host.retweet_count[r] as f32 + 0.5 * host.likes_count[r] as f32;
        let mut expect: Vec<f32> = (0..host.len()).map(rank).collect();
        expect.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        expect.truncate(k);
        for strat in Strategy::all() {
            let r = ranked_topk(&dev, &table, k, strat).unwrap();
            let keys: Vec<f32> = r.ids.iter().map(|&id| rank(id as usize)).collect();
            prop_assert_eq!(&keys, &expect, "{}", strat.name());
        }
    }

    #[test]
    fn q4_group_counts_agree(seed in any::<u64>(), k in 1usize..50) {
        let host = TweetTable::generate(15_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let mut counts = std::collections::HashMap::new();
        for &u in &host.uid {
            *counts.entry(u).or_insert(0u32) += 1;
        }
        let mut expect: Vec<u32> = counts.values().copied().collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k.min(expect.len()));
        for strat in [TopKStrategy::Sort, TopKStrategy::Bitonic] {
            let r = group_topk(&dev, &table, k, strat).unwrap();
            let got: Vec<u32> = r.ids.iter().map(|uid| counts[uid]).collect();
            prop_assert_eq!(&got, &expect, "{:?}", strat);
        }
    }

    /// The serving layer's batch coalescing must never change results:
    /// for random small-query workloads, a coalesced drain and a
    /// coalescing-disabled drain return identical key sequences, which
    /// also match the naive host evaluation.
    #[test]
    fn coalesced_drain_agrees_with_per_query(
        seed in any::<u64>(),
        sels in prop::collection::vec(0.01f64..0.2, 2..10),
        ks in prop::collection::vec(1usize..40, 2..10),
    ) {
        let host = TweetTable::generate(12_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let sqls: Vec<String> = sels
            .iter()
            .zip(ks.iter().cycle())
            .map(|(&sel, &k)| {
                let cutoff = host.time_cutoff_for_selectivity(sel);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {k}"
                )
            })
            .collect();
        let run = |coalesce: bool| {
            let cfg = qdb::ServerConfig { coalesce, ..qdb::ServerConfig::default() };
            let mut server = qdb::Server::new(&dev, &table, cfg);
            for sql in &sqls {
                server.submit(sql, SubmitOptions::default()).unwrap();
            }
            server.drain()
        };
        let on = run(true);
        let off = run(false);
        for ((sql, a), b) in sqls.iter().zip(&on.queries).zip(&off.queries) {
            let ak: Vec<u32> = a.result.ids.iter().map(|&id| host.retweet_count[id as usize]).collect();
            let bk: Vec<u32> = b.result.ids.iter().map(|&id| host.retweet_count[id as usize]).collect();
            prop_assert_eq!(&ak, &bk, "{}", sql);
            let q = qdb::parse_sql(sql).unwrap();
            let cutoff = match q.filter {
                Some(FilterOp::TimeLess(c)) => c,
                _ => unreachable!(),
            };
            let expect = host_q1(&host, |r| host.tweet_time[r] < cutoff, q.limit);
            prop_assert_eq!(&ak, &expect, "{}", sql);
        }
    }

    /// Fusion must never change results, only traffic.
    #[test]
    fn fused_and_staged_always_agree(seed in any::<u64>(), langs in prop::collection::btree_set(0u8..6, 1..4)) {
        let host = TweetTable::generate(8_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let op = FilterOp::LangIn(langs.into_iter().collect());
        let staged = filtered_topk(&dev, &table, &op, 25, Strategy::StageBitonic).unwrap();
        let fused = filtered_topk(&dev, &table, &op, 25, Strategy::CombinedBitonic).unwrap();
        let sk: Vec<u32> = staged.ids.iter().map(|&id| host.retweet_count[id as usize]).collect();
        let fk: Vec<u32> = fused.ids.iter().map(|&id| host.retweet_count[id as usize]).collect();
        prop_assert_eq!(sk, fk);
    }
}
