//! Chaos suite: random fault plans driven against concurrent `Server`
//! loads.
//!
//! For every generated plan the suite asserts the serving layer's three
//! resilience invariants:
//!
//! * (a) **no panic ever escapes** — submit and drain return typed
//!   results no matter what the device injects;
//! * (b) **completed queries are oracle-exact** — every query that
//!   reports success returns the same key/count/rank sequence as a
//!   fault-free execution (ids may permute only among exact ties);
//! * (c) **non-completed queries carry typed errors** — shed
//!   submissions see [`QdbError::Overloaded`], cancelled queries see
//!   [`QdbError::Timeout`], and the drain's [`ResilienceStats`] ledger
//!   is consistent with the per-query outcomes.

use datagen::twitter::TweetTable;
use proptest::prelude::*;
use qdb::{
    execute_sql, parse_sql, DegradeLevel, GpuTweetTable, QdbError, Server, ServerConfig, Strategy,
    SubmitOptions,
};
use simt::{Device, FaultPlan, SimTime};

/// Mixed workload covering every query shape the engine serves: plain
/// filtered top-k (coalescable), language filters, ranking, ascending,
/// and group-by.
fn workload(host: &TweetTable, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match i % 5 {
            0 | 3 => {
                let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.03 * (i % 7) as f64);
                let k = 4 + (i % 13);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {k}"
                )
            }
            1 => format!(
                "SELECT id FROM tweets WHERE lang='ja' ORDER BY retweet_count DESC LIMIT {}",
                3 + (i % 9)
            ),
            2 => format!(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
                2 + (i % 11)
            ),
            _ => format!(
                "SELECT uid, COUNT(*) FROM tweets GROUP BY uid \
                 ORDER BY COUNT(*) DESC LIMIT {}",
                2 + (i % 6)
            ),
        })
        .collect()
}

/// Shape-aware signature of a result: the ordered sequence of sort keys
/// (retweet counts, group counts, or rank bits). Two runs agree exactly
/// on the signature even when exact-tie ids permute.
fn signature(host: &TweetTable, sql: &str, ids: &[u32]) -> Vec<u64> {
    let q = parse_sql(sql).expect("workload sql parses");
    if q.group_by_uid {
        let mut counts = std::collections::HashMap::new();
        for &u in &host.uid {
            *counts.entry(u).or_insert(0u64) += 1;
        }
        ids.iter().map(|u| counts[u]).collect()
    } else if matches!(q.order_by, qdb::sql::OrderBy::Rank { .. }) {
        ids.iter()
            .map(|&id| {
                let rank = host.retweet_count[id as usize] as f32
                    + 0.5 * host.likes_count[id as usize] as f32;
                rank.to_bits() as u64
            })
            .collect()
    } else {
        ids.iter()
            .map(|&id| host.retweet_count[id as usize] as u64)
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_plans_never_panic_and_completed_queries_match_the_oracle(
        seed in any::<u64>(),
        launch_failure_rate in 0.0f64..0.35,
        corruption_rate in 0.0f64..0.35,
        stall_rate in 0.0f64..0.25,
        oom_rate in 0.0f64..0.25,
        max_faults in 1usize..96,
    ) {
        let host = TweetTable::generate(6_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let sqls = workload(&host, 40);

        // fault-free oracle on the same device, before any plan is set
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute_sql(&dev, &table, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                    .expect("fault-free oracle")
                    .ids
            })
            .collect();

        dev.set_fault_plan(FaultPlan {
            seed,
            launch_failure_rate,
            corruption_rate,
            stall_rate,
            stall_delay: SimTime(100e-6),
            oom_rate,
            max_faults,
            ..FaultPlan::none()
        });

        // concurrency 32 with a queue bound that sheds the rest
        let cfg = ServerConfig {
            max_queue: 32,
            ..ServerConfig::default()
        };
        let mut server = Server::new(&dev, &table, cfg);
        let mut admitted: Vec<(usize, qdb::QueryTicket)> = Vec::new();
        let mut shed = 0usize;
        for (i, sql) in sqls.iter().enumerate() {
            match server.submit(sql, SubmitOptions::default()) {
                Ok(t) => admitted.push((i, t)),
                Err(QdbError::Overloaded { .. }) => shed += 1,
                Err(other) => prop_assert!(false, "untyped admission failure: {other:?}"),
            }
        }
        prop_assert_eq!(admitted.len(), 32, "concurrency floor");
        prop_assert_eq!(shed, sqls.len() - 32);

        let report = server.drain();
        dev.clear_fault_plan();

        // (c) the shed ledger matches what submit returned
        prop_assert_eq!(report.resilience.shed, shed);
        prop_assert_eq!(report.queries.len(), admitted.len());

        let mut completed = 0usize;
        let mut timed_out = 0usize;
        let mut failed = 0usize;
        for (i, t) in &admitted {
            let served = &report.queries[t.0];
            prop_assert_eq!(&served.sql, &sqls[*i]);
            match &served.error {
                None => {
                    completed += 1;
                    // (b) oracle-exact by signature
                    let got = signature(&host, &sqls[*i], &served.result.ids);
                    let want = signature(&host, &sqls[*i], &oracle[*i]);
                    prop_assert_eq!(
                        got,
                        want,
                        "{} (degrade={})",
                        served.sql,
                        served.degrade.name()
                    );
                }
                Some(QdbError::Timeout { .. }) => timed_out += 1,
                Some(QdbError::DeviceFault { .. }) => failed += 1,
                Some(other) => prop_assert!(false, "unexpected drain error: {other:?}"),
            }
        }
        // (c) ledger consistency
        prop_assert_eq!(report.resilience.completed, completed);
        prop_assert_eq!(report.resilience.timed_out, timed_out);
        prop_assert_eq!(report.resilience.failed, failed);
        prop_assert_eq!(completed + timed_out + failed, admitted.len());
        let degraded = report
            .queries
            .iter()
            .filter(|q| q.degrade != DegradeLevel::None)
            .count();
        prop_assert_eq!(
            report.resilience.degraded_serial + report.resilience.degraded_cpu,
            degraded
        );
        // no deadlines were set, so nothing can time out here
        prop_assert_eq!(timed_out, 0);
    }

    #[test]
    fn chaos_with_tight_deadlines_reports_typed_timeouts(
        seed in any::<u64>(),
        launch_failure_rate in 0.3f64..1.0,
        deadline_us in 1.0f64..120.0,
    ) {
        let host = TweetTable::generate(3_000, seed);
        let dev = Device::titan_x();
        let table = GpuTweetTable::upload(&dev, &host);
        let sqls = workload(&host, 8);
        dev.set_fault_plan(FaultPlan {
            seed,
            launch_failure_rate,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        let mut tickets = Vec::new();
        for sql in &sqls {
            tickets.push(
                server
                    .submit(sql, SubmitOptions::default().with_deadline(SimTime(deadline_us * 1e-6)))
                    .expect("admission"),
            );
        }
        let report = server.drain();
        dev.clear_fault_plan();
        for t in &tickets {
            let served = &report.queries[t.0];
            match &served.error {
                // completed under the deadline: must match the oracle
                None => {
                    let oracle =
                        execute_sql(&dev, &table, &parse_sql(&served.sql).unwrap(), Strategy::StageBitonic)
                            .expect("fault-free oracle")
                            .ids;
                    let got = signature(&host, &served.sql, &served.result.ids);
                    let want = signature(&host, &served.sql, &oracle);
                    prop_assert_eq!(got, want, "{}", served.sql);
                }
                Some(QdbError::Timeout { deadline, spent }) => {
                    prop_assert!(spent.0 >= deadline.0, "timeout fired early");
                }
                Some(other) => prop_assert!(false, "unexpected error: {other:?}"),
            }
        }
        prop_assert_eq!(
            report.resilience.completed + report.resilience.timed_out,
            tickets.len()
        );
    }
}

#[test]
fn all_zero_plan_serves_like_no_plan_at_all() {
    let host = TweetTable::generate(5_000, 7);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);
    let sqls = workload(&host, 16);

    dev.set_fault_plan(FaultPlan::none());
    let mut server = Server::new(&dev, &table, ServerConfig::default());
    for s in &sqls {
        server
            .submit(s, SubmitOptions::default())
            .expect("admission");
    }
    let report = server.drain();
    dev.clear_fault_plan();

    assert_eq!(report.resilience.completed, sqls.len());
    assert_eq!(report.resilience.retries, 0);
    assert_eq!(report.resilience.timed_out, 0);
    assert_eq!(report.resilience.failed, 0);
    assert_eq!(report.resilience.faults_injected, 0);
    assert!(report
        .queries
        .iter()
        .all(|q| q.degrade == DegradeLevel::None));
}
