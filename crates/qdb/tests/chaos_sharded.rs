//! Chaos suite for the sharded layer: random fault plans on a random
//! subset of a cluster's devices, driven against scatter-gather queries.
//!
//! The invariants mirror `chaos_serving`, lifted to the cluster:
//!
//! * (a) **no panic ever escapes** — `execute_sharded`, `submit` and
//!   `drain` return typed results no matter what the devices inject;
//! * (b) **completed queries are oracle-exact** — a query that reports
//!   success returns exactly the fault-free result (same length, same
//!   key sequence; bit-identical ids when no shard degraded to the CPU
//!   rung, whose heap orders exact ties differently);
//! * (c) **failure is loud, never truncation** — a shard whose local
//!   pass or delegate transfer is defeated after retries fails the whole
//!   query with a typed [`QdbError`]; a completed query is never the
//!   merge of a subset of shards.

use datagen::twitter::TweetTable;
use proptest::prelude::*;
use qdb::shard::{execute_sharded, PartitionPolicy, ShardedServer, ShardedTable};
use qdb::{execute_sql, parse_sql, GpuTweetTable, QdbError, ServerConfig, Strategy};
use simt::topology::{Cluster, ClusterSpec};
use simt::{Device, FaultPlan, SimTime};

/// Sharded-servable workload: every supported shape except GROUP BY
/// (rejected on the sharded path by design).
fn workload(host: &TweetTable, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match i % 4 {
            0 | 3 => {
                let cutoff = host.time_cutoff_for_selectivity(0.1 + 0.05 * (i % 7) as f64);
                let k = 4 + (i % 13);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {k}"
                )
            }
            1 => format!(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
                2 + (i % 11)
            ),
            _ => format!(
                "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT {}",
                3 + (i % 9)
            ),
        })
        .collect()
}

/// Ordered key sequence of a result — the oracle signature that is
/// invariant even when a CPU-degraded shard permutes exact-tie ids.
fn signature(host: &TweetTable, sql: &str, ids: &[u32]) -> Vec<u64> {
    let q = parse_sql(sql).expect("workload sql parses");
    if matches!(q.order_by, qdb::sql::OrderBy::Rank { .. }) {
        ids.iter()
            .map(|&id| {
                let rank = host.retweet_count[id as usize] as f32
                    + 0.5 * host.likes_count[id as usize] as f32;
                rank.to_bits() as u64
            })
            .collect()
    } else {
        ids.iter()
            .map(|&id| host.retweet_count[id as usize] as u64)
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Raw scatter-gather path under launch-failure/stall/oom chaos on a
    /// random device subset: every call either returns the bit-exact
    /// fault-free result or a typed error — never a truncated result.
    #[test]
    fn chaotic_execute_sharded_is_exact_or_loud(
        seed in any::<u64>(),
        launch_failure_rate in 0.0f64..0.4,
        stall_rate in 0.0f64..0.3,
        oom_rate in 0.0f64..0.2,
        max_faults in 1usize..64,
        subset_mask in 1u8..16,
        policy_idx in 0usize..3,
    ) {
        let host = TweetTable::generate(5_000, seed);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let sqls = workload(&host, 10);
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                    .expect("fault-free oracle")
                    .ids
            })
            .collect();

        let policy = PartitionPolicy::all()[policy_idx];
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, policy)
            .expect("partition before faults");
        // arm a random subset of devices (mask bit i = device i)
        for i in 0..4 {
            if subset_mask & (1 << i) != 0 {
                cluster.device(i).set_fault_plan(FaultPlan {
                    seed: seed.wrapping_add(i as u64),
                    launch_failure_rate,
                    stall_rate,
                    stall_delay: SimTime(100e-6),
                    oom_rate,
                    max_faults,
                    ..FaultPlan::none()
                });
            }
        }

        for (i, sql) in sqls.iter().enumerate() {
            let q = parse_sql(sql).unwrap();
            match execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2) {
                Ok(r) => {
                    // (b) bit-exact: no corruption plans and no CPU rung
                    // on this path, so ids must match the oracle exactly
                    prop_assert_eq!(&r.ids, &oracle[i], "{}", sql);
                }
                Err(e) => {
                    // (c) typed, transient-classed failure — never a
                    // silently shortened result
                    prop_assert!(
                        matches!(e, QdbError::DeviceFault { .. }),
                        "{sql}: untyped chaos error {e:?}"
                    );
                }
            }
        }
        for i in 0..4 {
            cluster.device(i).clear_fault_plan();
        }
        // with plans cleared every query completes bit-exact again
        for (i, sql) in sqls.iter().enumerate() {
            let q = parse_sql(sql).unwrap();
            let r = execute_sharded(&cluster, &table, &q, Strategy::StageBitonic, 2)
                .expect("clean rerun");
            prop_assert_eq!(&r.ids, &oracle[i], "post-chaos {}", sql);
        }
    }

    /// Full sharded-server path (admission queues + degradation ladder
    /// per shard + delegate merge) under chaos including corruption:
    /// completed queries carry the oracle's key sequence at full length.
    #[test]
    fn chaotic_sharded_server_completions_match_the_oracle(
        seed in any::<u64>(),
        launch_failure_rate in 0.0f64..0.3,
        corruption_rate in 0.0f64..0.3,
        stall_rate in 0.0f64..0.2,
        max_faults in 1usize..64,
        subset_mask in 1u8..16,
    ) {
        let host = TweetTable::generate(5_000, seed);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let sqls = workload(&host, 12);
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                    .expect("fault-free oracle")
                    .ids
            })
            .collect();

        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash)
            .expect("partition before faults");
        // corruption chaos only on non-merge devices: their servers run
        // the PR 4 audit ladder, while the device-0 merge has no audit
        // of its own (device 0 still gets drop/stall chaos)
        for i in 0..4usize {
            if subset_mask & (1 << i) != 0 {
                cluster.device(i).set_fault_plan(FaultPlan {
                    seed: seed.wrapping_add(i as u64),
                    launch_failure_rate,
                    corruption_rate: if i == 0 { 0.0 } else { corruption_rate },
                    stall_rate,
                    stall_delay: SimTime(100e-6),
                    max_faults,
                    ..FaultPlan::none()
                });
            }
        }

        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        let mut admitted = Vec::new();
        for (i, sql) in sqls.iter().enumerate() {
            match server.submit(sql) {
                Ok(t) => admitted.push((i, t)),
                Err(QdbError::Overloaded { .. }) => {}
                Err(other) => prop_assert!(false, "untyped admission failure: {other:?}"),
            }
        }
        let report = server.drain();
        for i in 0..4 {
            cluster.device(i).clear_fault_plan();
        }

        prop_assert_eq!(report.queries.len(), admitted.len());
        let mut completed = 0usize;
        for (i, t) in &admitted {
            let served = &report.queries[t.0];
            prop_assert_eq!(&served.sql, &sqls[*i]);
            match &served.error {
                None => {
                    completed += 1;
                    // (b)+(c): full length and oracle key sequence — a
                    // lost shard can never manifest as a shorter or
                    // reordered result
                    prop_assert_eq!(served.ids.len(), oracle[*i].len(), "{}", served.sql);
                    let got = signature(&host, &served.sql, &served.ids);
                    let want = signature(&host, &served.sql, &oracle[*i]);
                    prop_assert_eq!(got, want, "{}", served.sql);
                }
                Some(QdbError::DeviceFault { .. }) | Some(QdbError::Timeout { .. }) => {}
                Some(other) => prop_assert!(false, "untyped drain error: {other:?}"),
            }
        }
        // (c) ledger consistency at the sharded-query level
        prop_assert_eq!(report.resilience.completed, completed);
        prop_assert_eq!(
            report.resilience.completed + report.resilience.failed
                + report.resilience.timed_out,
            admitted.len()
        );
    }

    /// Replicated serving under a random permanent device-down plan
    /// armed mid-load: at `r >= 2` every query still completes
    /// bit-exact (drain-time failover); at `r = 1` the loss is loud and
    /// typed, never a truncated result; rebuilt copies serve the next
    /// batch either way, and the resilience ledger stays consistent.
    #[test]
    fn chaotic_device_down_plans_fail_over_or_fail_loud(
        seed in any::<u64>(),
        replication in 1usize..=3,
        down_device in 0usize..4,
        budget_trigger in any::<bool>(),
    ) {
        let host = TweetTable::generate(5_000, seed);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host);
        let sqls = workload(&host, 8);
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                    .expect("fault-free oracle")
                    .ids
            })
            .collect();

        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition_replicated(
            &cluster,
            &host,
            PartitionPolicy::Hash,
            qdb::ReplicationFactor(replication),
        )
        .expect("partition before faults");
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());

        // batch A: healthy baseline
        for s in &sqls {
            server.submit(s).expect("healthy admission");
        }
        let a = server.drain();
        prop_assert_eq!(a.resilience.completed, sqls.len());
        for (i, sq) in a.queries.iter().enumerate() {
            prop_assert_eq!(&sq.ids, &oracle[i], "batch A: {}", sq.sql);
        }

        // batch B admitted, then the device dies under it: both plan
        // triggers fire before the next launch touches the device
        for s in &sqls {
            server.submit(s).expect("admission before loss");
        }
        let plan = if budget_trigger {
            FaultPlan {
                down_after_faults: Some(0),
                ..FaultPlan::none()
            }
        } else {
            FaultPlan::down_at(SimTime::ZERO)
        };
        cluster.device(down_device).set_fault_plan(plan);
        let b = server.drain();

        prop_assert_eq!(b.queries.len(), sqls.len());
        let mut completed = 0usize;
        for (i, sq) in b.queries.iter().enumerate() {
            match &sq.error {
                None => {
                    completed += 1;
                    // failover must be invisible in the result
                    prop_assert_eq!(&sq.ids, &oracle[i], "batch B: {}", sq.sql);
                }
                Some(QdbError::DeviceFault { transient, .. }) => {
                    // loud, typed, final — and never truncated
                    prop_assert!(!transient, "device loss must be terminal");
                    prop_assert!(sq.ids.is_empty(), "no truncated results");
                }
                Some(other) => prop_assert!(false, "untyped loss error: {other:?}"),
            }
        }
        if replication >= 2 {
            prop_assert_eq!(
                completed,
                sqls.len(),
                "r={} survives one permanent loss",
                replication
            );
        } else {
            // r = 1: every query scatters over the lost shard and fails
            prop_assert_eq!(completed, 0, "r=1 loss cannot be absorbed");
        }
        // ledger consistency and an honest health snapshot
        prop_assert_eq!(b.resilience.completed, completed);
        prop_assert_eq!(
            b.resilience.completed + b.resilience.failed + b.resilience.timed_out,
            sqls.len()
        );
        let per_query: usize = b.queries.iter().map(|q| q.failovers).sum();
        prop_assert_eq!(b.resilience.failovers, per_query);
        prop_assert!(b.health[down_device].down, "loss recorded in health");
        prop_assert!(b.resilience.rebuilds > 0, "lost copies re-materialize");

        // batch C: rebuilt copies restore service at every r
        for s in &sqls {
            server.submit(s).expect("post-rebuild admission");
        }
        let c = server.drain();
        prop_assert_eq!(c.resilience.completed, sqls.len());
        for (i, sq) in c.queries.iter().enumerate() {
            prop_assert_eq!(&sq.ids, &oracle[i], "batch C: {}", sq.sql);
        }
    }
}

#[test]
fn zero_rate_plans_on_every_device_change_nothing() {
    // interconnect channels stay occupied across queries on a live
    // cluster, so the comparison needs two fresh clusters: one bare, one
    // with explicit all-zero fault plans armed on every device
    let host = TweetTable::generate(4_000, 3);
    let sqls = workload(&host, 8);
    let run = |arm_plans: bool| -> Vec<_> {
        let cluster = Cluster::new(ClusterSpec::pcie_node(4));
        let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::RoundRobin).unwrap();
        if arm_plans {
            for i in 0..4 {
                cluster.device(i).set_fault_plan(FaultPlan::none());
            }
        }
        sqls.iter()
            .map(|s| {
                execute_sharded(
                    &cluster,
                    &table,
                    &parse_sql(s).unwrap(),
                    Strategy::StageBitonic,
                    0,
                )
                .unwrap()
            })
            .collect()
    };
    let clean = run(false);
    let armed = run(true);
    for ((r, c), s) in armed.iter().zip(&clean).zip(&sqls) {
        assert_eq!(r.ids, c.ids, "{s}");
        // all-zero plans must not perturb modeled time either (the fault
        // machinery draws no RNG words for zero rates)
        assert_eq!(r.sim_time, c.sim_time, "{s}");
        assert_eq!(r.retries, 0);
    }
}
