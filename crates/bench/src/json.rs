//! A minimal JSON value type with a parser and writer.
//!
//! The workspace is offline (no serde); the benchmark reports and the
//! `bench-diff` gate need both directions — [`SanitizerReport::to_json`]
//! style hand-rolled writers are fine for write-only artifacts, but the
//! diff tool must *read* a committed baseline back. Numbers are kept as
//! `f64` and written with Rust's shortest-roundtrip formatting, so a
//! write→parse cycle reproduces the exact same bits — which is what lets
//! deterministic simulator metrics be gated with an exact match.
//!
//! [`SanitizerReport::to_json`]: simt::SanitizerReport::to_json

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Objects use a `BTreeMap` so rendering is
/// deterministic (sorted keys) and report diffs are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Renders the document compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip: parsing the text
        // back yields the identical bits, which the exact gate relies on.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; the schema never produces them, but a
        // defensive null beats emitting an unparseable token.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a valid &str)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_float_bits() {
        let mut obj = BTreeMap::new();
        obj.insert("pi".to_string(), Json::Num(0.1 + 0.2));
        obj.insert("n".to_string(), Json::Num(-3.0));
        obj.insert("big".to_string(), Json::Num(1.0e300));
        obj.insert("tiny".to_string(), Json::Num(5.4e-312));
        obj.insert("s".to_string(), Json::Str("a\"b\\c\nd\u{1}".to_string()));
        obj.insert(
            "arr".to_string(),
            Json::Arr(vec![
                Json::Null,
                Json::Bool(true),
                Json::Obj(BTreeMap::new()),
            ]),
        );
        let doc = Json::Obj(obj);
        for text in [doc.render(), doc.render_pretty()] {
            let back = parse(&text).expect("parse back");
            assert_eq!(back, doc, "roundtrip failed for {text}");
        }
        // exact f64 bits survive the text roundtrip
        let n = parse(&Json::Num(0.1 + 0.2).render()).unwrap();
        assert_eq!(n.as_num().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = parse(" {\n \"a\" : [ 1 , 2.5e1 , \"\\u0041\\n\" ] ,\"b\":null } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("A\n")
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"x"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse(r#"{"x": 1}"#).unwrap();
        assert!(v.as_arr().is_none());
        assert!(v.get("x").unwrap().as_str().is_none());
        assert_eq!(v.get("x").unwrap().as_num(), Some(1.0));
        assert!(v.get("missing").is_none());
    }
}
