//! The machine-readable benchmark report schema (`BENCH_*.json`).
//!
//! A report is one harness run: which suite (`topk` or `serve`), the
//! commit it measured, the scale profile it ran at, and one metric map
//! per experiment. Metric names carry their gating class in a prefix:
//!
//! * `sim_*` — derived from the simulator's deterministic counters
//!   (modeled time, bytes, sectors, conflict degrees, occupancy). Same
//!   code + same seed ⇒ bit-identical values on any machine, so
//!   `bench-diff` gates them with an **exact match**.
//! * `host_*` — host wall-clock measurements. Machine-dependent, gated
//!   with a **percentage tolerance**.
//!
//! The schema is versioned; [`BenchReport::from_json`] validates shape,
//! uniqueness of experiment ids, metric-name prefixes and finiteness, so
//! a malformed or hand-edited report fails loudly at the gate instead of
//! silently comparing garbage.

use std::collections::BTreeMap;

use crate::json::{self, Json};

/// Current schema version; bump on any incompatible report change.
pub const SCHEMA_VERSION: f64 = 1.0;

/// The dataset scale a report was measured at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// log2 of the element count the top-k suite ran at.
    pub log2n: u32,
    /// Human name for the profile (`small`, `full`, or `log2n<N>`).
    pub profile: String,
}

impl Scale {
    /// Canonical profile name for a top-k scale: `small` for the CI gate
    /// scale (≤ 2^16), `full` for the default 2^22+ scale, and an
    /// explicit `log2n<N>` for anything between.
    pub fn profile_name(log2n: u32) -> String {
        match log2n {
            0..=16 => "small".to_string(),
            22.. => "full".to_string(),
            n => format!("log2n{n}"),
        }
    }

    /// A scale with its canonical profile name.
    pub fn new(log2n: u32) -> Self {
        Scale {
            log2n,
            profile: Self::profile_name(log2n),
        }
    }
}

/// One benchmark cell: a stable id plus its metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Stable, path-like id (e.g. `vary_k/uniform/bitonic/k32`).
    pub id: String,
    /// Metric name → value. Names must start with `sim_` or `host_`.
    pub metrics: BTreeMap<String, f64>,
}

/// One harness run, serializable to/from `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Which suite produced it: `topk` or `serve`.
    pub kind: String,
    /// Commit hash the run measured (informational; not diffed).
    pub commit: String,
    /// Scale profile the run used.
    pub scale: Scale,
    /// All measured cells, in harness execution order.
    pub experiments: Vec<Experiment>,
}

/// Report validation/parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The document is not valid JSON.
    Json(json::JsonError),
    /// The document parsed but violates the schema.
    Schema(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Schema(m) => write!(f, "schema violation: {m}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl BenchReport {
    /// The metric map of the experiment with this id.
    pub fn experiment(&self, id: &str) -> Option<&Experiment> {
        self.experiments.iter().find(|e| e.id == id)
    }

    /// One metric of one experiment.
    pub fn metric(&self, id: &str, name: &str) -> Option<f64> {
        self.experiment(id)?.metrics.get(name).copied()
    }

    /// Renders the report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("schema_version".to_string(), Json::Num(SCHEMA_VERSION));
        root.insert("kind".to_string(), Json::Str(self.kind.clone()));
        root.insert("commit".to_string(), Json::Str(self.commit.clone()));
        let mut scale = BTreeMap::new();
        scale.insert("log2n".to_string(), Json::Num(self.scale.log2n as f64));
        scale.insert("profile".to_string(), Json::Str(self.scale.profile.clone()));
        root.insert("scale".to_string(), Json::Obj(scale));
        root.insert(
            "experiments".to_string(),
            Json::Arr(
                self.experiments
                    .iter()
                    .map(|e| {
                        let mut obj = BTreeMap::new();
                        obj.insert("id".to_string(), Json::Str(e.id.clone()));
                        obj.insert(
                            "metrics".to_string(),
                            Json::Obj(
                                e.metrics
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        );
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        );
        Json::Obj(root).render_pretty()
    }

    /// Parses and validates a report document.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let doc = json::parse(text).map_err(ReportError::Json)?;
        let schema = |m: String| ReportError::Schema(m);
        let version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or_else(|| schema("missing numeric 'schema_version'".into()))?;
        if version != SCHEMA_VERSION {
            return Err(schema(format!(
                "schema_version {version} (this tool reads {SCHEMA_VERSION})"
            )));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string 'kind'".into()))?
            .to_string();
        if kind.is_empty() {
            return Err(schema("'kind' must be nonempty".into()));
        }
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string 'commit'".into()))?
            .to_string();
        let scale_obj = doc
            .get("scale")
            .ok_or_else(|| schema("missing 'scale' object".into()))?;
        let log2n = scale_obj
            .get("log2n")
            .and_then(Json::as_num)
            .filter(|n| *n >= 1.0 && *n <= 40.0 && n.fract() == 0.0)
            .ok_or_else(|| schema("'scale.log2n' must be an integer in 1..=40".into()))?
            as u32;
        let profile = scale_obj
            .get("profile")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string 'scale.profile'".into()))?
            .to_string();
        let exps = doc
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema("missing 'experiments' array".into()))?;
        let mut experiments = Vec::with_capacity(exps.len());
        let mut seen = std::collections::BTreeSet::new();
        for (i, e) in exps.iter().enumerate() {
            let id = e
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| schema(format!("experiment #{i}: missing string 'id'")))?
                .to_string();
            if !seen.insert(id.clone()) {
                return Err(schema(format!("duplicate experiment id '{id}'")));
            }
            let metrics_obj = e
                .get("metrics")
                .and_then(Json::as_obj)
                .ok_or_else(|| schema(format!("experiment '{id}': missing 'metrics' object")))?;
            let mut metrics = BTreeMap::new();
            for (name, val) in metrics_obj {
                if !name.starts_with("sim_") && !name.starts_with("host_") {
                    return Err(schema(format!(
                        "experiment '{id}': metric '{name}' must be prefixed sim_ or host_"
                    )));
                }
                let v = val.as_num().filter(|v| v.is_finite()).ok_or_else(|| {
                    schema(format!("experiment '{id}': metric '{name}' must be finite"))
                })?;
                metrics.insert(name.clone(), v);
            }
            if metrics.is_empty() {
                return Err(schema(format!("experiment '{id}': no metrics")));
            }
            experiments.push(Experiment { id, metrics });
        }
        Ok(BenchReport {
            kind,
            commit,
            scale: Scale { log2n, profile },
            experiments,
        })
    }
}

/// The commit hash to stamp reports with: `GITHUB_SHA` in CI, otherwise
/// `git rev-parse HEAD`, otherwise `"unknown"`. Informational only —
/// `bench-diff` never compares it.
pub fn current_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            kind: "topk".to_string(),
            commit: "deadbeef".to_string(),
            scale: Scale::new(16),
            experiments: vec![Experiment {
                id: "vary_k/uniform/bitonic/k32".to_string(),
                metrics: [
                    ("sim_time_ms".to_string(), 0.125),
                    ("host_wall_ms".to_string(), 42.0),
                ]
                .into_iter()
                .collect(),
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample();
        let text = r.render();
        let back = BenchReport::from_json(&text).expect("valid");
        assert_eq!(back, r);
        assert_eq!(
            back.metric("vary_k/uniform/bitonic/k32", "sim_time_ms"),
            Some(0.125)
        );
    }

    #[test]
    fn profile_names() {
        assert_eq!(Scale::new(16).profile, "small");
        assert_eq!(Scale::new(14).profile, "small");
        assert_eq!(Scale::new(22).profile, "full");
        assert_eq!(Scale::new(29).profile, "full");
        assert_eq!(Scale::new(18).profile, "log2n18");
    }

    #[test]
    fn schema_violations_are_rejected() {
        let good = sample().render();
        // wrong version
        let bad = good.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(matches!(
            BenchReport::from_json(&bad),
            Err(ReportError::Schema(_))
        ));
        // unprefixed metric name
        let bad = good.replace("sim_time_ms", "time_ms");
        assert!(matches!(
            BenchReport::from_json(&bad),
            Err(ReportError::Schema(_))
        ));
        // not JSON at all
        assert!(matches!(
            BenchReport::from_json("not json"),
            Err(ReportError::Json(_))
        ));
        // duplicate experiment ids
        let mut dup = sample();
        dup.experiments.push(dup.experiments[0].clone());
        assert!(matches!(
            BenchReport::from_json(&dup.render()),
            Err(ReportError::Schema(m)) if m.contains("duplicate")
        ));
    }
}
