//! The unified benchmark harness: drives the paper's figure experiments
//! and the qdb serving workload, collects per-run metrics from the
//! simulator's counters plus host wall-clock, and emits versioned
//! [`BenchReport`]s (`BENCH_topk.json` / `BENCH_serve.json`).
//!
//! Three top-k experiment families (the shapes behind Figures 11–13 and
//! the robustness ablation) and one serving sweep:
//!
//! * `vary_k/uniform/<alg>/k<k>` — every [`TopKAlgorithm`] across the
//!   paper's k sweep on uniform f32 keys;
//! * `vary_n/uniform/<alg>/log2n<x>` — scaling in n at k = 64;
//! * `dist/<distribution>/<alg>/k32` — the six-distribution robustness
//!   sweep (skew claims are machine-checked from these cells);
//! * `serve/load<q>` — the qdb serving layer under increasing offered
//!   load (queries/sec, speedup over serial, latency percentiles).
//!
//! Cells whose launch legitimately fails (per-thread top-k at k ≥ 512
//! exceeds shared memory, Section 6.2) are omitted from the report; the
//! diff gate treats a *disappearing* cell as a regression, so an
//! algorithm that starts failing where it used to run cannot slip by.

use std::time::Instant;

use datagen::twitter::TweetTable;
use datagen::{
    BucketKiller, Clustered, Decreasing, Distribution, Increasing, Kv, Normal, TopKItem, Uniform,
};
use qdb::shard::{
    partition_indices, sharded_delegate_topk, sharded_topk, PartitionPolicy, ReplicationFactor,
    ShardedLoadReport, ShardedServer, ShardedTable,
};
use qdb::{
    execute_sql, parse_sql, GpuTweetTable, QdbError, Server, ServerConfig, Strategy, SubmitOptions,
};
use simt::topology::{Cluster, ClusterSpec};
use simt::{Device, FaultPlan, GpuBuffer, LaunchWindow, SimTime};
use topk::bitonic::{bitonic_topk, BitonicConfig};
use topk::delegate::{warm_delegate_index, DelegateConfig};
use topk::{Backend, CpuBackend, TopKAlgorithm, TopKRequest};
use topk_costmodel::{cluster_topk_seconds, ClusterModelInput};

use crate::report::{current_commit, BenchReport, Experiment, Scale};
use crate::K_SWEEP;

/// The scales one harness invocation runs at, resolved from
/// `TOPK_REPRO_LOG2N` (the same knob every experiment binary uses).
#[derive(Debug, Clone)]
pub struct HarnessScales {
    /// Element-count exponent for the top-k suite (default 22).
    pub topk_log2n: u32,
    /// Resident-table exponent for the serving suite (default 17,
    /// capped by the top-k scale when overridden).
    pub serve_log2n: u32,
    /// Element-count exponent for the real-CPU backend suite (default
    /// 20 — the scale the thread-scaling claim gates at — capped by the
    /// top-k scale when overridden).
    pub cpu_log2n: u32,
    /// Resident-table exponent for the streaming-ingest suite (default
    /// 20 — the scale the delta-maintenance traffic claim gates at —
    /// capped by the top-k scale when overridden).
    pub stream_log2n: u32,
    /// Profile name stamped into both reports.
    pub profile: String,
}

impl HarnessScales {
    /// Resolves scales from the environment: unset means the full
    /// profile (top-k at 2^22, serving at 2^17); `TOPK_REPRO_LOG2N=16`
    /// is the CI gate's small profile.
    pub fn from_env() -> Self {
        let topk_log2n = datagen::repro_log2n(22);
        HarnessScales {
            topk_log2n,
            serve_log2n: topk_log2n.min(17),
            cpu_log2n: topk_log2n.min(20),
            stream_log2n: topk_log2n.min(20),
            profile: Scale::profile_name(topk_log2n),
        }
    }
}

/// The distribution line-up of the robustness sweep, by stable name.
pub fn distributions() -> Vec<(&'static str, Box<dyn Distribution<f32>>)> {
    vec![
        ("uniform", Box::new(Uniform)),
        ("normal", Box::new(Normal)),
        ("increasing", Box::new(Increasing)),
        ("decreasing", Box::new(Decreasing)),
        ("bucket-killer", Box::new(BucketKiller)),
        ("clustered", Box::new(Clustered)),
    ]
}

/// Fixed k for the distribution sweep (matches the robustness ablation).
pub const DIST_SWEEP_K: usize = 32;

/// Fixed k for the vary-n sweep (matches Figure 13).
pub const VARY_N_K: usize = 64;

fn run_cell(
    dev: &Device,
    alg: &TopKAlgorithm,
    input: &GpuBuffer<f32>,
    k: usize,
) -> Option<Experiment> {
    dev.take_lint_reports(); // bound accumulation across the sweep
    let wall = Instant::now();
    let result = TopKRequest::largest(k)
        .with_alg(*alg)
        .run(dev, input)
        .ok()?;
    let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let w = LaunchWindow::from_reports(&result.reports);
    let mut metrics = vec![
        ("sim_time_ms", result.time.millis()),
        ("sim_global_bytes", w.stats.global_bytes() as f64),
        ("sim_sectors_per_access", w.stats.sectors_per_access()),
        ("sim_conflict_degree", w.stats.avg_conflict_degree()),
        ("sim_occupancy", w.time_weighted_occupancy),
        ("sim_launches", w.launches as f64),
        ("host_wall_ms", host_wall_ms),
    ];
    // the static analyzer's pre-launch predictions, present whenever
    // every launch in the window carried an access-spec contract; the
    // diff gate requires them to bit-match the measured metrics above
    if let Some(p) = &w.static_pred {
        metrics.push(("sim_static_sectors_per_access", p.sectors_per_access()));
        metrics.push(("sim_static_conflict_degree", p.avg_conflict_degree()));
    }
    Some(Experiment {
        id: String::new(),
        metrics: metrics
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    })
}

/// Runs the top-k suite at `2^log2n` elements and returns its report.
pub fn run_topk_suite(log2n: u32, profile: &str) -> BenchReport {
    let mut experiments = Vec::new();
    let algs = TopKAlgorithm::all();

    // vary-k on uniform f32 (the Figure 11a shape)
    {
        let dev = Device::titan_x();
        dev.enable_lint();
        let data: Vec<f32> = Uniform.generate(1 << log2n, 11);
        let input = dev.upload(&data);
        // delegate cells measure warm queries: the index builds once per
        // buffer (the extraction launch lands outside every cell window)
        warm_delegate_index(&dev, &input, DelegateConfig::default()).expect("delegate index");
        for alg in &algs {
            for k in K_SWEEP {
                if let Some(mut e) = run_cell(&dev, alg, &input, k) {
                    e.id = format!("vary_k/uniform/{}/k{k}", alg.name());
                    experiments.push(e);
                }
            }
        }
    }

    // vary-n at k = 64 (the Figure 13 shape)
    {
        let start = log2n.min(14);
        for x in (start..=log2n).step_by(2) {
            let dev = Device::titan_x();
            dev.enable_lint();
            let data: Vec<f32> = Uniform.generate(1 << x, 13);
            let input = dev.upload(&data);
            warm_delegate_index(&dev, &input, DelegateConfig::default()).expect("delegate index");
            for alg in &algs {
                if let Some(mut e) = run_cell(&dev, alg, &input, VARY_N_K) {
                    e.id = format!("vary_n/uniform/{}/log2n{x}", alg.name());
                    experiments.push(e);
                }
            }
        }
    }

    // distribution robustness at k = 32 (the skew-claim cells)
    for (name, dist) in distributions() {
        let dev = Device::titan_x();
        dev.enable_lint();
        let data: Vec<f32> = dist.generate(1 << log2n, 40);
        let input = dev.upload(&data);
        warm_delegate_index(&dev, &input, DelegateConfig::default()).expect("delegate index");
        for alg in &algs {
            if let Some(mut e) = run_cell(&dev, alg, &input, DIST_SWEEP_K) {
                e.id = format!("dist/{name}/{}/k{}", alg.name(), DIST_SWEEP_K);
                experiments.push(e);
            }
        }
    }

    BenchReport {
        kind: "topk".to_string(),
        commit: current_commit(),
        scale: Scale {
            log2n,
            profile: profile.to_string(),
        },
        experiments,
    }
}

/// Device counts the cluster suite sweeps.
pub const CLUSTER_DEVICES: [usize; 4] = [1, 2, 4, 8];

/// Fixed k for the cluster sweep (matches the scaling claim).
pub const CLUSTER_K: usize = 64;

/// Replication factors the availability sweep serves at.
pub const AVAIL_REPLICATION: [usize; 3] = [1, 2, 3];

/// Devices in the availability sweep's cluster.
pub const AVAIL_DEVICES: usize = 4;

/// Queries per batch in the availability sweep (>= the breaker
/// threshold, so a loss trips the lost device's breaker).
pub const AVAIL_QUERIES: usize = 5;

/// Availability workload: the sharded-servable query shapes.
fn avail_sql(host: &TweetTable, i: usize) -> String {
    match i % 3 {
        0 => {
            let cutoff = host.time_cutoff_for_selectivity(0.1 + 0.05 * (i % 4) as f64);
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT {}",
                6 + i
            )
        }
        1 => format!(
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
            4 + i
        ),
        _ => format!(
            "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT {}",
            3 + i
        ),
    }
}

/// Runs the multi-device sharded top-k suite: device count × partition
/// policy over uniform keyed items, with the single-device bitonic
/// result as the exactness oracle (`sim_exact`) and the
/// `topk-costmodel` cluster estimate alongside for Figure 17-style
/// model-vs-measurement comparison.
pub fn run_cluster_suite(log2n: u32, profile: &str) -> BenchReport {
    let n = 1usize << log2n;
    let items: Vec<Kv<f32>> = Uniform
        .generate(n, 23)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Kv::new(k, i as u32))
        .collect();

    // single-device oracle for the exactness column
    let oracle = {
        let dev = Device::titan_x();
        let input = dev.upload(&items);
        bitonic_topk(&dev, &input, CLUSTER_K, BitonicConfig::default())
            .expect("oracle top-k")
            .items
    };

    let mut experiments = Vec::new();
    for policy in PartitionPolicy::all() {
        for devices in CLUSTER_DEVICES {
            let wall = Instant::now();
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let parts: Vec<Vec<Kv<f32>>> = partition_indices(n, devices, policy)
                .into_iter()
                .map(|rows| rows.into_iter().map(|r| items[r]).collect())
                .collect();
            let shard_rows: Vec<usize> = parts.iter().map(Vec::len).collect();
            let r = sharded_topk(&cluster, &parts, CLUSTER_K, BitonicConfig::default(), 0)
                .expect("sharded top-k");
            let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            let est = cluster_topk_seconds(
                cluster.spec(),
                &ClusterModelInput {
                    shard_rows,
                    k: CLUSTER_K,
                    item_bytes: Kv::<f32>::SIZE_BYTES,
                },
            );
            let max_local = r.local.iter().map(|t| t.seconds()).fold(0.0, f64::max);
            let metrics = [
                ("sim_time_ms", r.sim_time.millis()),
                ("sim_local_ms", max_local * 1e3),
                ("sim_transfer_done_ms", r.transfer_done.millis()),
                ("sim_merge_ms", r.merge_time.millis()),
                ("sim_candidate_bytes", r.candidate_bytes as f64),
                ("sim_exact", f64::from(r.items == oracle)),
                ("sim_model_ms", est.total_seconds() * 1e3),
                ("host_wall_ms", host_wall_ms),
            ];
            experiments.push(Experiment {
                id: format!("cluster/{}/dev{devices}", policy.name()),
                metrics: metrics
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        }
    }

    // delegates of delegates: shards run delegate select locally and
    // ship their winners (one cell — round-robin across the largest
    // device count — exercising the two-level decomposition)
    {
        let devices = *CLUSTER_DEVICES.last().expect("non-empty sweep");
        let policy = PartitionPolicy::RoundRobin;
        let wall = Instant::now();
        let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
        let parts: Vec<Vec<Kv<f32>>> = partition_indices(n, devices, policy)
            .into_iter()
            .map(|rows| rows.into_iter().map(|r| items[r]).collect())
            .collect();
        let r = sharded_delegate_topk(&cluster, &parts, CLUSTER_K, DelegateConfig::default(), 0)
            .expect("sharded delegate top-k");
        let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let max_local = r.local.iter().map(|t| t.seconds()).fold(0.0, f64::max);
        let metrics = [
            ("sim_time_ms", r.sim_time.millis()),
            ("sim_local_ms", max_local * 1e3),
            ("sim_transfer_done_ms", r.transfer_done.millis()),
            ("sim_merge_ms", r.merge_time.millis()),
            ("sim_candidate_bytes", r.candidate_bytes as f64),
            ("sim_exact", f64::from(r.items == oracle)),
            ("host_wall_ms", host_wall_ms),
        ];
        experiments.push(Experiment {
            id: format!("cluster/delegate-{}/dev{devices}", policy.name()),
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    // availability under permanent device loss: a replicated sharded
    // server at r ∈ {1,2,3} serves three batches — healthy, one device
    // lost with the batch already admitted, and post-rebuild recovery.
    // `sim_exact` encodes the availability claim: completed queries are
    // bit-exact at every r; r >= 2 completes every query through the
    // loss; r = 1 fails loudly with typed device faults, never a
    // truncated result.
    {
        let avail_log2n = log2n.min(16);
        let host_table = TweetTable::generate(1usize << avail_log2n, 2018);
        let dev = Device::titan_x();
        let gpu = GpuTweetTable::upload(&dev, &host_table);
        let sqls: Vec<String> = (0..AVAIL_QUERIES)
            .map(|i| avail_sql(&host_table, i))
            .collect();
        let oracle: Vec<Vec<u32>> = sqls
            .iter()
            .map(|s| {
                execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                    .expect("fault-free oracle")
                    .ids
            })
            .collect();
        let exact = |rep: &ShardedLoadReport| {
            rep.queries
                .iter()
                .enumerate()
                .all(|(i, sq)| !sq.completed() || sq.ids == oracle[i])
        };
        for r_factor in AVAIL_REPLICATION {
            let wall = Instant::now();
            let cluster = Cluster::new(ClusterSpec::pcie_node(AVAIL_DEVICES));
            let table = ShardedTable::partition_replicated(
                &cluster,
                &host_table,
                PartitionPolicy::Hash,
                ReplicationFactor(r_factor),
            )
            .expect("replicated partition");
            let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
            // batch A: the healthy baseline
            for s in &sqls {
                server.submit(s).expect("healthy admission");
            }
            let a = server.drain();
            // batch B admitted, then device 1 dies permanently under it
            for s in &sqls {
                server.submit(s).expect("admission before loss");
            }
            cluster
                .device(1)
                .set_fault_plan(FaultPlan::down_at(SimTime::ZERO));
            let b = server.drain();
            // batch C: service after online rebuild
            for s in &sqls {
                server.submit(s).expect("post-rebuild admission");
            }
            let c = server.drain();
            let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

            let loud = b.queries.iter().all(|sq| match &sq.error {
                None => true,
                Some(QdbError::DeviceFault { transient, .. }) => !transient && sq.ids.is_empty(),
                Some(_) => false,
            });
            let full = sqls.len();
            let compliant = exact(&a)
                && exact(&b)
                && exact(&c)
                && a.resilience.completed == full
                && c.resilience.completed == full
                && loud
                && (r_factor < 2 || b.resilience.completed == full);
            let completed =
                a.resilience.completed + b.resilience.completed + c.resilience.completed;
            let metrics = [
                ("sim_exact", f64::from(compliant)),
                ("sim_completed_frac", completed as f64 / (3 * full) as f64),
                ("sim_failovers", b.resilience.failovers as f64),
                ("sim_rebuilds", b.resilience.rebuilds as f64),
                ("sim_breaker_trips", b.resilience.breaker_trips as f64),
                ("sim_loss_makespan_ms", b.makespan.millis()),
                ("host_wall_ms", host_wall_ms),
            ];
            experiments.push(Experiment {
                id: format!("cluster/avail/r{r_factor}"),
                metrics: metrics
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        }
    }

    BenchReport {
        kind: "cluster".to_string(),
        commit: current_commit(),
        scale: Scale {
            log2n,
            profile: profile.to_string(),
        },
        experiments,
    }
}

/// The worker-thread sweep of the CPU backend suite.
pub const CPU_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Fixed k for the CPU backend suite.
pub const CPU_SUITE_K: usize = 64;

/// Repetitions per CPU cell; the fastest is reported (wall-clock cells
/// gate on the *worse* direction only, so best-of-N just trims
/// scheduler noise).
pub const CPU_SUITE_REPS: usize = 3;

/// Runs the real-CPU backend suite through the [`topk::Backend`] trait:
/// every algorithm across the thread sweep on `2^log2n` uniform f32
/// keys. Cells are `cpu/<alg>/t<threads>` and carry only `host_*`
/// metrics — there is nothing modeled here, every number is wall-clock
/// from [`topk::ExecReport`]. The scaling claim (multi-thread beats
/// single-thread, checked by `bench-diff`) reads the `t1` cell against
/// the rest of the sweep.
pub fn run_cpu_suite(log2n: u32, profile: &str) -> BenchReport {
    let n = 1usize << log2n;
    let data: Vec<f32> = Uniform.generate(n, 31);

    let mut experiments = Vec::new();
    for alg in TopKAlgorithm::all() {
        for threads in CPU_THREAD_SWEEP {
            let be = CpuBackend::with_threads(threads);
            let input = be.upload(&data);
            let req = TopKRequest::largest(CPU_SUITE_K).with_alg(alg);
            let mut best: Option<topk::ExecReport> = None;
            for _ in 0..CPU_SUITE_REPS {
                let r = req.run_on(&be, &input).expect("cpu top-k");
                assert_eq!(r.items.len(), CPU_SUITE_K.min(n));
                if best
                    .as_ref()
                    .is_none_or(|b| r.report.host_wall < b.host_wall)
                {
                    best = Some(r.report);
                }
            }
            let report = best.expect("at least one rep ran");
            experiments.push(Experiment {
                id: format!("cpu/{}/t{threads}", alg.name()),
                metrics: report.metric_cells().into_iter().collect(),
            });
        }
    }

    BenchReport {
        kind: "cpu".to_string(),
        commit: current_commit(),
        scale: Scale {
            log2n,
            profile: profile.to_string(),
        },
        experiments,
    }
}

/// The offered-load sweep of the serving suite.
pub const SERVE_LOADS: [usize; 4] = [1, 4, 16, 64];

/// Runs the qdb serving suite over a `2^log2n`-row resident table.
pub fn run_serve_suite(log2n: u32, profile: &str) -> BenchReport {
    let n = 1usize << log2n;
    let host = TweetTable::generate(n, 2018);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);

    // the serve_load workload: Q1 shape, selectivity 5–15%, k in 8..64
    let sql_for = |i: usize| {
        let sel = 0.05 + 0.1 * (i % 16) as f64 / 16.0;
        let cutoff = host.time_cutoff_for_selectivity(sel);
        let k = 8 << (i % 4);
        format!(
            "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT {k}"
        )
    };

    let mut experiments = Vec::new();
    for load in SERVE_LOADS {
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for i in 0..load {
            server
                .submit(&sql_for(i), SubmitOptions::default())
                .expect("workload sql");
        }
        let report = server.drain();
        let metrics = [
            ("sim_qps", report.queries_per_sec),
            ("sim_speedup", report.speedup()),
            ("sim_makespan_ms", report.makespan.millis()),
            ("sim_p50_ms", report.p50.millis()),
            ("sim_p95_ms", report.p95.millis()),
            ("sim_p99_ms", report.p99.millis()),
            ("host_wall_ms", report.host_wall.as_secs_f64() * 1e3),
            ("host_qps", report.host_queries_per_sec()),
        ];
        experiments.push(Experiment {
            id: format!("serve/load{load}"),
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    BenchReport {
        kind: "serve".to_string(),
        commit: current_commit(),
        scale: Scale {
            log2n,
            profile: profile.to_string(),
        },
        experiments,
    }
}

/// Delta denominators the streaming view suite sweeps: each cell appends
/// `n / denom` rows and refreshes a standing view over them.
pub const STREAM_FRACS: [usize; 4] = [256, 64, 16, 4];

/// Fixed k for the streaming view suite.
pub const STREAM_K: usize = 32;

/// Distinct queries per batch in the read/write serving mix.
pub const STREAM_MIX_PERIODS: [usize; 2] = [2, 8];

/// Append/query rounds per read/write-mix cell.
pub const STREAM_MIX_ROUNDS: usize = 5;

/// Runs the streaming-ingest suite over a `2^log2n`-row resident table.
///
/// Two cell families:
///
/// * `stream/view/frac{d}` — a standing [`qdb::TopKView`] absorbs an
///   appended delta of `n/d` rows. The cell records the maintenance
///   refresh's traffic (`sim_global_bytes`) next to a from-scratch
///   rescan of the grown table (`sim_rescan_bytes`) — the pair behind
///   the delta-maintenance traffic claim — plus `sim_exact`: the
///   maintained result must be bit-identical to the rescan.
/// * `stream/mix/period{p}` — the serving layer under a read/write mix
///   with the epoch-tagged result cache on: each round submits `p`
///   distinct queries, re-submits them (all must come back as cache
///   hits), then appends a batch (invalidating every entry). Every
///   completed read, cached or computed, must match a same-epoch serial
///   execution bit for bit.
pub fn run_stream_suite(log2n: u32, profile: &str) -> BenchReport {
    use qdb::{TopKView, ViewConfig, ViewMode};

    let n = 1usize << log2n;
    let sql = format!("SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT {STREAM_K}");
    let mut experiments = Vec::new();

    for denom in STREAM_FRACS {
        let delta = (n / denom).max(1);
        let wall = Instant::now();
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 7);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, n + delta);
        let view = TopKView::register(&sql, Strategy::StageBitonic, ViewConfig::default())
            .expect("supported view shape");
        view.refresh(&dev, &gpu).expect("initial build");

        let batch = TweetTable::generate_at(delta, 77, n as u32);
        gpu.append_batch(&dev, &batch).expect("headroom");
        let log0 = dev.log_len();
        let r = view.refresh(&dev, &gpu).expect("maintenance refresh");
        assert_eq!(r.mode, ViewMode::DeltaMerge, "fraction below the crossover");
        let w = dev.window_since(log0);

        // the from-scratch baseline at the same (grown) table size
        let log1 = dev.log_len();
        let rescan = execute_sql(
            &dev,
            &gpu,
            &parse_sql(&sql).expect("view sql"),
            Strategy::StageBitonic,
        )
        .expect("rescan oracle");
        let rw = dev.window_since(log1);
        let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        let metrics = [
            ("sim_time_ms", r.kernel_time.millis()),
            ("sim_global_bytes", w.stats.global_bytes() as f64),
            ("sim_launches", w.launches as f64),
            ("sim_rescan_ms", rescan.kernel_time.millis()),
            ("sim_rescan_bytes", rw.stats.global_bytes() as f64),
            ("sim_exact", f64::from(r.ids == rescan.ids)),
            ("host_wall_ms", host_wall_ms),
        ];
        experiments.push(Experiment {
            id: format!("stream/view/frac{denom}"),
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    for period in STREAM_MIX_PERIODS {
        let delta = (n / 64).max(1);
        let wall = Instant::now();
        let dev = Device::titan_x();
        let host = TweetTable::generate(n, 2018);
        let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, n + STREAM_MIX_ROUNDS * delta);
        // coalescing off so every read is comparable to a serial
        // execution by ids, not just by key sequence
        let mut server = Server::new(
            &dev,
            &gpu,
            ServerConfig {
                result_cache: true,
                coalesce: false,
                ..ServerConfig::default()
            },
        );
        let sqls: Vec<String> = (0..period).map(|i| avail_sql(&host, i)).collect();

        let mut exact = true;
        let mut makespan = SimTime::ZERO;
        let mut cache_hits = 0usize;
        let mut cache_refreshes = 0usize;
        let mut completed = 0usize;
        let mut next_id = n as u32;
        for round in 0..STREAM_MIX_ROUNDS {
            // two drains at the same epoch: the first computes (or
            // refreshes stale entries), the second must hit for every
            // query
            for pass in 0..2 {
                for s in &sqls {
                    server.submit(s, SubmitOptions::default()).expect("submit");
                }
                let rep = server.drain();
                makespan += rep.makespan;
                cache_hits += rep.resilience.cache_hits;
                cache_refreshes += rep.resilience.cache_refreshes;
                completed += rep.resilience.completed;
                if pass == 1 && rep.resilience.cache_hits != sqls.len() {
                    exact = false;
                }
                for q in &rep.queries {
                    let oracle = execute_sql(
                        &dev,
                        &gpu,
                        &parse_sql(&q.sql).expect("mix sql"),
                        Strategy::StageBitonic,
                    )
                    .expect("mix oracle");
                    if q.result.ids != oracle.ids {
                        exact = false;
                    }
                }
            }
            let batch = TweetTable::generate_at(delta, 3000 + round as u64, next_id);
            gpu.append_batch(&dev, &batch).expect("headroom");
            next_id += delta as u32;
        }
        let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let total_queries = 2 * period * STREAM_MIX_ROUNDS;
        let metrics = [
            ("sim_exact", f64::from(exact && completed == total_queries)),
            ("sim_qps", total_queries as f64 / makespan.seconds()),
            ("sim_makespan_ms", makespan.millis()),
            ("sim_cache_hits", cache_hits as f64),
            ("sim_cache_refreshes", cache_refreshes as f64),
            ("host_wall_ms", host_wall_ms),
        ];
        experiments.push(Experiment {
            id: format!("stream/mix/period{period}"),
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    BenchReport {
        kind: "stream".to_string(),
        commit: current_commit(),
        scale: Scale {
            log2n,
            profile: profile.to_string(),
        },
        experiments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchReport as Parsed;

    #[test]
    fn topk_suite_produces_a_schema_valid_deterministic_report() {
        let r = run_topk_suite(10, "test");
        // bitonic and sort must cover the whole k sweep
        for k in K_SWEEP {
            assert!(r
                .experiment(&format!("vary_k/uniform/bitonic/k{k}"))
                .is_some());
            assert!(r.experiment(&format!("vary_k/uniform/sort/k{k}")).is_some());
        }
        // skew cells present for the claim checks
        assert!(r.experiment("dist/increasing/per-thread/k32").is_some());
        assert!(r.experiment("dist/uniform/per-thread/k32").is_some());
        // serializes to a document that re-validates
        let parsed = Parsed::from_json(&r.render()).expect("schema-valid");
        assert_eq!(parsed.experiments.len(), r.experiments.len());

        // deterministic sim metrics: a second run reproduces exact bits
        let r2 = run_topk_suite(10, "test");
        for (a, b) in r.experiments.iter().zip(&r2.experiments) {
            assert_eq!(a.id, b.id);
            for (name, v) in &a.metrics {
                if name.starts_with("sim_") {
                    assert_eq!(
                        v.to_bits(),
                        b.metrics[name].to_bits(),
                        "{}/{name} must be deterministic",
                        a.id
                    );
                }
            }
        }
    }

    #[test]
    fn cluster_suite_is_exact_deterministic_and_schema_valid() {
        let r = run_cluster_suite(12, "test");
        assert_eq!(r.kind, "cluster");
        // policy × device sweep, the delegates-of-delegates cell, and
        // the availability sweep
        assert_eq!(
            r.experiments.len(),
            PartitionPolicy::all().len() * CLUSTER_DEVICES.len() + 1 + AVAIL_REPLICATION.len()
        );
        // availability: r >= 2 rides through the loss at full
        // completion; r = 1 is loud but compliant (typed, untruncated)
        for r_factor in AVAIL_REPLICATION {
            let id = format!("cluster/avail/r{r_factor}");
            let e = r.experiment(&id).expect("availability cell");
            assert_eq!(e.metrics["sim_exact"], 1.0, "{id} claim compliance");
            assert!(e.metrics["sim_rebuilds"] > 0.0, "{id}");
            if r_factor >= 2 {
                assert_eq!(e.metrics["sim_completed_frac"], 1.0, "{id}");
                assert!(e.metrics["sim_failovers"] > 0.0, "{id}");
            } else {
                assert!(e.metrics["sim_completed_frac"] < 1.0, "{id}");
            }
        }
        let dd = r
            .experiment("cluster/delegate-round-robin/dev8")
            .expect("delegates-of-delegates cell");
        assert_eq!(dd.metrics["sim_exact"], 1.0);
        assert!(dd.metrics["sim_candidate_bytes"] > 0.0);
        for policy in PartitionPolicy::all() {
            for devices in CLUSTER_DEVICES {
                let id = format!("cluster/{}/dev{devices}", policy.name());
                let e = r.experiment(&id).expect("cell");
                assert_eq!(e.metrics["sim_exact"], 1.0, "{id} must be oracle-exact");
                assert!(e.metrics["sim_time_ms"] > 0.0);
                assert!(e.metrics["sim_model_ms"] > 0.0);
                if devices > 1 {
                    assert!(e.metrics["sim_candidate_bytes"] > 0.0, "{id}");
                }
            }
        }
        Parsed::from_json(&r.render()).expect("schema-valid");

        // deterministic across runs, bit for bit
        let r2 = run_cluster_suite(12, "test");
        for (a, b) in r.experiments.iter().zip(&r2.experiments) {
            assert_eq!(a.id, b.id);
            for (name, v) in &a.metrics {
                if name.starts_with("sim_") {
                    assert_eq!(v.to_bits(), b.metrics[name].to_bits(), "{}/{name}", a.id);
                }
            }
        }
    }

    #[test]
    fn cpu_suite_produces_a_host_only_schema_valid_report() {
        let r = run_cpu_suite(12, "test");
        assert_eq!(r.kind, "cpu");
        assert_eq!(
            r.experiments.len(),
            TopKAlgorithm::all().len() * CPU_THREAD_SWEEP.len()
        );
        for e in &r.experiments {
            // nothing modeled here: every metric is wall-clock
            assert!(
                e.metrics.keys().all(|m| m.starts_with("host_")),
                "{}: {:?}",
                e.id,
                e.metrics.keys()
            );
            assert!(e.metrics["host_wall_ms"] > 0.0, "{}", e.id);
            assert!(e.metrics["host_threads"] >= 1.0, "{}", e.id);
        }
        for threads in CPU_THREAD_SWEEP {
            assert!(r.experiment(&format!("cpu/bitonic/t{threads}")).is_some());
        }
        Parsed::from_json(&r.render()).expect("schema-valid");
    }

    #[test]
    fn stream_suite_is_exact_deterministic_and_schema_valid() {
        let r = run_stream_suite(12, "test");
        assert_eq!(r.kind, "stream");
        assert_eq!(
            r.experiments.len(),
            STREAM_FRACS.len() + STREAM_MIX_PERIODS.len()
        );
        for denom in STREAM_FRACS {
            let id = format!("stream/view/frac{denom}");
            let e = r.experiment(&id).expect("view cell");
            assert_eq!(e.metrics["sim_exact"], 1.0, "{id} must match the rescan");
            assert!(
                e.metrics["sim_global_bytes"] < e.metrics["sim_rescan_bytes"],
                "{id}: delta maintenance must move less than a rescan"
            );
        }
        // smaller deltas cost less maintenance traffic
        let bytes_at = |d: usize| {
            r.metric(&format!("stream/view/frac{d}"), "sim_global_bytes")
                .unwrap()
        };
        assert!(bytes_at(256) < bytes_at(64));
        assert!(bytes_at(64) < bytes_at(4));
        for period in STREAM_MIX_PERIODS {
            let id = format!("stream/mix/period{period}");
            let e = r.experiment(&id).expect("mix cell");
            assert_eq!(e.metrics["sim_exact"], 1.0, "{id}");
            // every re-submitted round hits: period queries per round
            assert_eq!(
                e.metrics["sim_cache_hits"],
                (period * STREAM_MIX_ROUNDS) as f64,
                "{id}"
            );
            // appends invalidate: rounds after the first must refresh
            assert_eq!(
                e.metrics["sim_cache_refreshes"],
                (period * (STREAM_MIX_ROUNDS - 1)) as f64,
                "{id}"
            );
            assert!(e.metrics["sim_qps"] > 0.0);
        }
        Parsed::from_json(&r.render()).expect("schema-valid");

        // deterministic across runs, bit for bit
        let r2 = run_stream_suite(12, "test");
        for (a, b) in r.experiments.iter().zip(&r2.experiments) {
            assert_eq!(a.id, b.id);
            for (name, v) in &a.metrics {
                if name.starts_with("sim_") {
                    assert_eq!(v.to_bits(), b.metrics[name].to_bits(), "{}/{name}", a.id);
                }
            }
        }
    }

    #[test]
    fn serve_suite_produces_a_schema_valid_report() {
        let r = run_serve_suite(10, "test");
        assert_eq!(r.kind, "serve");
        for load in SERVE_LOADS {
            let e = r.experiment(&format!("serve/load{load}")).expect("cell");
            assert!(e.metrics["sim_qps"] > 0.0);
            assert!(e.metrics["host_wall_ms"] > 0.0);
        }
        Parsed::from_json(&r.render()).expect("schema-valid");
    }
}
