#![forbid(unsafe_code)]
//! Shared helpers for the experiment binaries (one binary per paper
//! figure/table; see DESIGN.md's experiment index), plus the
//! perf-trajectory subsystem:
//!
//! * [`harness`] — drives the figure experiments and the qdb serving
//!   workload, collecting simulator counters + host wall-clock into
//!   versioned `BENCH_*.json` reports (the `harness` binary);
//! * [`report`] — the machine-readable report schema;
//! * [`diff`] — the regression gate comparing a report against the
//!   committed baseline in `crates/bench/baseline/` and machine-checking
//!   paper claims (the `bench-diff` binary);
//! * [`json`] — the minimal JSON layer both sides share.
//!
//! Experiments print fixed-width tables of **simulated milliseconds**.
//! Dataset size defaults to 2^22 (the paper uses 2^29) and is overridden
//! with `TOPK_REPRO_LOG2N`; the banner notes the linear factor for
//! extrapolating magnitudes to the paper's scale (bandwidth-bound kernels
//! scale linearly in n; launch overheads do not, so the extrapolation
//! slightly overestimates).

pub mod diff;
pub mod harness;
pub mod json;
pub mod report;

use datagen::TopKItem;
use simt::{Device, SimTime};
use topk::{TopKAlgorithm, TopKError, TopKRequest};

/// Standard experiment scale: `TOPK_REPRO_LOG2N` or 2^22.
pub fn scale() -> u32 {
    datagen::repro_log2n(22)
}

/// The k sweep used by Figures 11, 12 and 17.
pub const K_SWEEP: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Formats a simulated time in ms, extrapolated to the paper's 2^29 scale.
pub fn at_paper_scale(t: SimTime, log2n: u32) -> f64 {
    t.millis() * 2f64.powi(29 - log2n as i32)
}

/// One sweep cell: measured time or a failure marker.
pub fn run_cell<T: TopKItem>(
    dev: &Device,
    alg: &TopKAlgorithm,
    input: &simt::GpuBuffer<T>,
    k: usize,
) -> Result<SimTime, TopKError> {
    TopKRequest::largest(k)
        .with_alg(*alg)
        .run(dev, input)
        .map(|r| r.time)
}

/// Prints a table header for an algorithm sweep.
pub fn print_header(first_col: &str, algs: &[TopKAlgorithm]) {
    print!("{first_col:>8}");
    for a in algs {
        print!("{:>16}", a.name());
    }
    println!("{:>16}", "bw-floor");
}

/// Prints one sweep row (times in simulated ms at the current scale).
pub fn print_row(
    label: impl std::fmt::Display,
    cells: &[Result<SimTime, TopKError>],
    floor: SimTime,
) {
    print!("{label:>8}");
    for c in cells {
        match c {
            Ok(t) => print!("{:>14.3}ms", t.millis()),
            Err(_) => print!("{:>16}", "FAIL"),
        }
    }
    println!("{:>14.3}ms", floor.millis());
}

/// Standard experiment banner.
pub fn banner(id: &str, what: &str, log2n: u32) {
    println!("== {id}: {what} ==");
    println!(
        "n = 2^{log2n} ({}), device: simulated GTX Titan X (Maxwell); times are modeled device ms",
        1u64 << log2n
    );
    println!(
        "(multiply by {:.0} to extrapolate to the paper's 2^29 scale)\n",
        2f64.powi(29 - log2n as i32)
    );
}
