//! Distribution-robustness ablation (extends Section 6.4): every
//! algorithm across six input distributions at fixed k = 32. Bitonic
//! top-k must be bit-identical everywhere; each other algorithm has at
//! least one bad distribution.

use bench::{banner, scale};
use datagen::{BucketKiller, Clustered, Decreasing, Distribution, Increasing, Normal, Uniform};
use simt::Device;
use topk::{TopKAlgorithm, TopKRequest};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Robustness ablation",
        "all algorithms × six distributions, k = 32",
        log2n,
    );

    let dists: Vec<(&str, Vec<f32>)> = vec![
        ("uniform", Uniform.generate(n, 40)),
        ("normal", Normal.generate(n, 40)),
        ("increasing", Increasing.generate(n, 40)),
        ("decreasing", Decreasing.generate(n, 40)),
        ("bucket-killer", BucketKiller.generate(n, 40)),
        ("clustered", Clustered.generate(n, 40)),
    ];

    let algs = TopKAlgorithm::all();
    print!("{:>14}", "distribution");
    for a in &algs {
        print!("{:>16}", a.name());
    }
    println!();
    let mut worst_over_best = vec![(f64::MAX, f64::MIN); algs.len()];
    for (name, data) in &dists {
        let dev = Device::titan_x();
        let input = dev.upload(data);
        print!("{name:>14}");
        for (i, a) in algs.iter().enumerate() {
            match TopKRequest::largest(32).with_alg(*a).run(&dev, &input) {
                Ok(r) => {
                    let t = r.time.millis();
                    worst_over_best[i].0 = worst_over_best[i].0.min(t);
                    worst_over_best[i].1 = worst_over_best[i].1.max(t);
                    print!("{t:>14.3}ms");
                }
                Err(_) => print!("{:>16}", "FAIL"),
            }
        }
        println!();
    }
    print!("{:>14}", "worst/best");
    for (lo, hi) in worst_over_best {
        print!("{:>15.2}x", hi / lo);
    }
    println!(
        "\n\n(bitonic's worst/best ratio should be exactly 1.00x — no adversarial input exists)"
    );
}
