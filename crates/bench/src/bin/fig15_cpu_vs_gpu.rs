//! Figure 15: CPU vs GPU top-k. CPU numbers are REAL wall-clock
//! measurements of the multi-threaded Rust baselines; GPU numbers are the
//! simulator's modeled times (documented substitution — see DESIGN.md).

use bench::{banner, scale, K_SWEEP};
use datagen::{Distribution, Increasing, Uniform};
use simt::Device;
use std::time::Instant;
use topk::bitonic::BitonicConfig;
use topk::{TopKAlgorithm, TopKRequest};
use topk_cpu::{CpuBitonic, CpuTopK, HandPq, StlPq};

fn measure_cpu(alg: &dyn CpuTopK<f32>, data: &[f32], k: usize, threads: usize) -> f64 {
    let start = Instant::now();
    let out = alg.topk(data, k, threads);
    let dt = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len(), k.min(data.len()));
    dt
}

fn table(label: &str, data: &[f32], threads: usize) {
    println!("-- {label} --");
    let dev = Device::titan_x();
    let input = dev.upload(data);
    println!(
        "{:>6}{:>14}{:>14}{:>16}{:>18}{:>20}",
        "k", "stl-pq*", "hand-pq*", "cpu-bitonic*", "gpu-bitonic(sim)", "gpu-radix-sel(sim)"
    );
    for k in K_SWEEP.iter().copied().filter(|&k| k <= 256) {
        let stl = measure_cpu(&StlPq, data, k, threads);
        let hand = measure_cpu(&HandPq, data, k, threads);
        let cbit = measure_cpu(&CpuBitonic::default(), data, k, threads);
        let gb = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
            .run(&dev, &input)
            .unwrap()
            .time
            .millis();
        let gr = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::RadixSelect)
            .run(&dev, &input)
            .unwrap()
            .time
            .millis();
        println!("{k:>6}{stl:>12.2}ms{hand:>12.2}ms{cbit:>14.2}ms{gb:>14.3}ms{gr:>18.3}ms");
    }
    println!("(*wall-clock on this host, {threads} threads; GPU columns are simulated)\n");
}

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 15",
        "CPU vs GPU top-k (CPU measured, GPU simulated)",
        log2n,
    );
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    let uniform: Vec<f32> = Uniform.generate(n, 20);
    table("(a) uniform U(0,1)", &uniform, threads);

    let sorted: Vec<f32> = Increasing.generate(n, 20);
    table("(b) sorted increasing (heap worst case)", &sorted, threads);
}
