//! Figure 11a: time vs k for 2^29-scaled uniform `U(0,1)` f32 keys.

use bench::{banner, print_header, print_row, run_cell, scale, K_SWEEP};
use datagen::{Distribution, Uniform};
use simt::{Device, SimTime};
use topk::TopKAlgorithm;

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 11a",
        "performance with varying k, f32 U(0,1)",
        log2n,
    );

    let data: Vec<f32> = Uniform.generate(n, 11);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let floor = SimTime::from_seconds(dev.spec().scan_floor_seconds(n * 4));

    let algs = TopKAlgorithm::all();
    print_header("k", &algs);
    for k in K_SWEEP {
        let cells: Vec<_> = algs.iter().map(|a| run_cell(&dev, a, &input, k)).collect();
        print_row(k, &cells, floor);
    }
}
