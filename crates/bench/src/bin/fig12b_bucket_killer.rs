//! Figure 12b: the bucket-killer distribution — radix select degrades to
//! sort-like full passes (one candidate eliminated per digit), bucket
//! select slows, bitonic top-k is untouched.

use bench::{banner, print_header, print_row, run_cell, scale, K_SWEEP};
use datagen::{BucketKiller, Distribution};
use simt::{Device, SimTime};
use topk::TopKAlgorithm;

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 12b",
        "bucket-killer f32 distribution (radix adversary)",
        log2n,
    );

    let data: Vec<f32> = BucketKiller.generate(n, 15);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let floor = SimTime::from_seconds(dev.spec().scan_floor_seconds(n * 4));

    let algs = TopKAlgorithm::all();
    print_header("k", &algs);
    for k in K_SWEEP {
        let cells: Vec<_> = algs.iter().map(|a| run_cell(&dev, a, &input, k)).collect();
        print_row(k, &cells, floor);
    }
}
