//! Figure 16 + Section 6.8: the MapD integration queries on the synthetic
//! Twitter table.

use bench::{banner, scale};
use datagen::twitter::TweetTable;
use qdb::{
    queries::{filtered_topk, group_topk, ranked_topk},
    FilterOp, GpuTweetTable, Strategy, TopKStrategy,
};
use simt::Device;

fn main() {
    let log2n = scale().min(19); // six wide columns + host-functional ops: keep the default run snappy
    let n = 1usize << log2n;
    banner(
        "Figure 16",
        "MapD integration queries on synthetic tweets",
        log2n,
    );

    let host = TweetTable::generate(n, 2017);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);

    // --- Fig 16a: Q1 selectivity sweep, LIMIT 50
    println!("-- Q1 (Fig 16a): time-range filter, ORDER BY retweet_count LIMIT 50 --");
    println!(
        "{:>12}{:>16}{:>18}{:>20}",
        "selectivity", "filter+sort", "filter+bitonic", "combined-bitonic"
    );
    for s in 0..=10 {
        let sel = s as f64 / 10.0;
        let cutoff = host.time_cutoff_for_selectivity(sel);
        let op = FilterOp::TimeLess(cutoff);
        let mut cells = Vec::new();
        for strat in Strategy::all() {
            cells.push(
                filtered_topk(&dev, &table, &op, 50, strat)
                    .expect("Q1 execution")
                    .kernel_time
                    .millis(),
            );
        }
        println!(
            "{:>12.1}{:>14.3}ms{:>16.3}ms{:>18.3}ms",
            sel, cells[0], cells[1], cells[2]
        );
    }

    // --- Fig 16b: Q2 ranking function, vary K
    println!("\n-- Q2 (Fig 16b): ORDER BY retweet_count + 0.5*likes_count LIMIT K --");
    println!(
        "{:>12}{:>16}{:>18}{:>20}",
        "K", "project+sort", "project+bitonic", "combined-bitonic"
    );
    for k in [16usize, 32, 64, 128, 256] {
        let mut cells = Vec::new();
        for strat in Strategy::all() {
            cells.push(
                ranked_topk(&dev, &table, k, strat)
                    .expect("Q2 execution")
                    .kernel_time
                    .millis(),
            );
        }
        println!(
            "{:>12}{:>14.3}ms{:>16.3}ms{:>18.3}ms",
            k, cells[0], cells[1], cells[2]
        );
    }

    // --- Q3: language filter (~80% selectivity), vary K
    println!("\n-- Q3: WHERE lang='en' OR lang='es', LIMIT K --");
    println!(
        "{:>12}{:>16}{:>18}{:>20}",
        "K", "filter+sort", "filter+bitonic", "combined-bitonic"
    );
    for k in [16usize, 64, 256] {
        let op = FilterOp::LangIn(vec![0, 1]);
        let mut cells = Vec::new();
        for strat in Strategy::all() {
            cells.push(
                filtered_topk(&dev, &table, &op, k, strat)
                    .expect("Q3 execution")
                    .kernel_time
                    .millis(),
            );
        }
        println!(
            "{:>12}{:>14.3}ms{:>16.3}ms{:>18.3}ms",
            k, cells[0], cells[1], cells[2]
        );
    }

    // --- Q4: group-by uid, top 50
    println!("\n-- Q4: GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50 --");
    for strat in [TopKStrategy::Sort, TopKStrategy::Bitonic] {
        let r = group_topk(&dev, &table, 50, strat).expect("Q4 execution");
        let group_time: f64 = r
            .breakdown
            .iter()
            .filter(|(n, _)| n.contains("group"))
            .map(|(_, t)| t.millis())
            .sum();
        let sort_time = r.kernel_time.millis() - group_time;
        println!(
            "  {:<8} total {:>8.3} ms  (group-by {:>8.3} ms + top-k {:>8.3} ms)",
            format!("{strat:?}").to_lowercase(),
            r.kernel_time.millis(),
            group_time,
            sort_time
        );
    }
}
