//! Figure 18 (Appendix A): register-buffer vs shared-memory per-thread
//! top-k across distributions — the register version wins at small k and
//! collapses when the buffer spills to local memory.

use bench::{banner, scale};
use datagen::{Decreasing, Distribution, Increasing, Uniform};
use simt::Device;
use topk::{TopKAlgorithm, TopKRequest};

fn sweep(label: &str, data: &[f32]) {
    let dev = Device::titan_x();
    let input = dev.upload(data);
    println!("-- {label} --");
    println!("{:>6}{:>18}{:>20}", "k", "shared-heap", "register-buffer");
    for k in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let sh = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::PerThread)
            .run(&dev, &input);
        let rg = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::PerThreadRegisters)
            .run(&dev, &input);
        println!(
            "{:>6}{:>18}{:>20}",
            k,
            sh.map_or("FAIL".into(), |r| format!("{:.3}ms", r.time.millis())),
            rg.map_or("FAIL".into(), |r| format!("{:.3}ms", r.time.millis())),
        );
    }
    println!();
}

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 18",
        "per-thread top-k: registers vs shared memory",
        log2n,
    );
    sweep("(a) uniform U(0,1)", &Uniform.generate(n, 22));
    sweep("(b) increasing", &Increasing.generate(n, 22));
    sweep("(c) decreasing", &Decreasing.generate(n, 22));
}
