//! Figure 12a companion: the per-thread top-k distribution contrast in
//! the paper's elements-per-thread regime.
//!
//! At the default experiment scale (2^22) every warp is still in its
//! warm-up phase for both distributions, so the per-thread line barely
//! separates (see EXPERIMENTS.md). The contrast needs elements/thread ≫
//! 32·k; this binary reaches that regime on the smaller device preset at
//! 2^24 elements, where the paper's ~3× penalty appears.

use datagen::{Decreasing, Distribution, Increasing, Uniform};
use simt::{Device, DeviceSpec};
use topk::{TopKAlgorithm, TopKRequest};

fn main() {
    let n = 1usize << 24;
    println!("== Figure 12a (regime companion): per-thread top-k across distributions ==");
    println!("n = 2^24, 5-SM device → ~3300 elements/thread (the paper's 2^29 gives ~11000)\n");

    let datasets: [(&str, Vec<f32>); 3] = [
        ("uniform", Uniform.generate(n, 70)),
        ("increasing", Increasing.generate(n, 70)),
        ("decreasing", Decreasing.generate(n, 70)),
    ];
    println!("{:>14}{:>14}{:>16}", "distribution", "k=8", "vs uniform");
    let mut base = None;
    for (name, data) in &datasets {
        let dev = Device::new(DeviceSpec::small_mobile());
        let input = dev.upload(data);
        let t = TopKRequest::largest(8)
            .with_alg(TopKAlgorithm::PerThread)
            .run(&dev, &input)
            .unwrap()
            .time
            .millis();
        let b = *base.get_or_insert(t);
        println!("{name:>14}{t:>12.3}ms{:>15.2}x", t / b);
    }
    println!("\npaper: sorted (increasing) input is up to 3× slower for per-thread top-k");
}
