//! Figure 11c: f64 keys at half the element count (same bytes as 11a) —
//! sort pays double passes, per-thread fails earlier (k > 128), bitonic
//! stays bandwidth-bound.

use bench::{banner, print_header, print_row, run_cell, scale, K_SWEEP};
use datagen::{Distribution, Uniform};
use simt::{Device, SimTime};
use topk::TopKAlgorithm;

fn main() {
    let log2n = scale() - 1; // half the elements, same bytes
    let n = 1usize << log2n;
    banner(
        "Figure 11c",
        "performance with varying k, f64 U(0,1), same total bytes",
        log2n,
    );

    let data: Vec<f64> = Uniform.generate(n, 13);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let floor = SimTime::from_seconds(dev.spec().scan_floor_seconds(n * 8));

    let algs = TopKAlgorithm::all();
    print_header("k", &algs);
    for k in K_SWEEP {
        let cells: Vec<_> = algs.iter().map(|a| run_cell(&dev, a, &input, k)).collect();
        print_row(k, &cells, floor);
    }
}
