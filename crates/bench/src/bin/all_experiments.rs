//! Runs every figure/table reproduction in sequence (the EXPERIMENTS.md
//! driver). Equivalent to running each `fig*`/`ablation*` binary.

use std::process::Command;

fn main() {
    let bins = [
        "fig08_elems_per_thread",
        "ablation_opt_ladder",
        "fig11a_vary_k_f32",
        "fig11b_vary_k_u32",
        "fig11c_vary_k_f64",
        "fig12a_increasing",
        "fig12a_regime",
        "fig12b_bucket_killer",
        "fig13_vary_n",
        "fig14_key_value",
        "fig15_cpu_vs_gpu",
        "fig16_mapd",
        "fig17_cost_model",
        "fig18_register_topk",
        "ablation_robustness",
        "ablation_hybrid",
        "device_sweep",
        "planner_accuracy",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!("\n################ {bin} ################\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments completed");
}
