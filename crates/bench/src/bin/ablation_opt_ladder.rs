//! Section 4.3: the optimization ladder ablation — each cumulative
//! optimization level of bitonic top-k, with the shared-memory counters
//! that explain the step (the paper's 521 → 122 → 48.2 → 33.7 → 22.3 →
//! 17.8/16 → 15.4 ms sequence, at our scale).

use bench::{at_paper_scale, banner, scale};
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::bitonic::{bitonic_topk, BitonicConfig, OptLevel};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Section 4.3 ablation",
        "bitonic top-32 optimization ladder",
        log2n,
    );

    let data: Vec<f32> = Uniform.generate(n, 24);
    let dev = Device::titan_x();
    let input = dev.upload(&data);

    println!(
        "{:<22}{:>12}{:>14}{:>14}{:>14}{:>12}",
        "level", "time", "@2^29 (ms)", "shared (MB)", "conflicts", "launches"
    );
    for opt in OptLevel::ladder() {
        let r = bitonic_topk(&dev, &input, 32, BitonicConfig::at_level(opt)).unwrap();
        let conflicts: u64 = r
            .reports
            .iter()
            .map(|x| x.stats.shared_conflict_cycles)
            .sum();
        let shared: u64 = r.reports.iter().map(|x| x.stats.shared_eff_bytes).sum();
        println!(
            "{:<22}{:>10.3}ms{:>14.1}{:>14.2}{:>14}{:>12}",
            opt.name(),
            r.time.millis(),
            at_paper_scale(r.time, log2n),
            shared as f64 / 1e6,
            conflicts,
            r.reports.len()
        );
    }
    println!("\npaper (2^29): 521 -> 122 -> 48.2 -> 33.7 -> 22.3 -> 17.8/16.0 -> 15.4 ms");
}
