//! Throughput under concurrent load: the qdb serving layer (streams +
//! batch coalescing) against one-at-a-time execution.
//!
//! Sweeps the number of concurrently offered small top-k queries and
//! reports achieved queries/sec, the speedup over serial execution, and
//! the p50/p95/p99 end-to-end latencies the concurrency costs. The
//! workload is the paper's Q1 shape (time-range filter, `ORDER BY
//! retweet_count DESC LIMIT k`) at low selectivity — exactly the "one
//! small query cannot fill the device" regime the serving layer exists
//! for.

use datagen::twitter::TweetTable;
use qdb::{Server, ServerConfig, Strategy, SubmitOptions};
use simt::Device;

fn main() {
    let log2n = datagen::repro_log2n(17);
    let n = 1usize << log2n;
    println!("== serving: offered load vs achieved throughput ==");
    println!(
        "n = 2^{log2n} ({n}) tweets resident; workload: Q1 shape, selectivity 5-15%, k in 8..64"
    );
    println!("server: {:?}\n", ServerConfig::default());

    let host = TweetTable::generate(n, 2018);
    let dev = Device::titan_x();
    let table = qdb::GpuTweetTable::upload(&dev, &host);

    let sql_for = |i: usize| {
        let sel = 0.05 + 0.1 * (i % 16) as f64 / 16.0;
        let cutoff = host.time_cutoff_for_selectivity(sel);
        let k = 8 << (i % 4);
        format!(
            "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT {k}"
        )
    };

    println!(
        "{:>8}{:>14}{:>14}{:>10}{:>12}{:>12}{:>12}",
        "queries", "serial q/s", "served q/s", "speedup", "p50", "p95", "p99"
    );
    for load in [1usize, 4, 16, 64] {
        // serial baseline: the same queries one at a time, no streams
        let mut serial = simt::SimTime::ZERO;
        for i in 0..load {
            let q = qdb::parse_sql(&sql_for(i)).expect("workload sql");
            serial += qdb::execute_sql(&dev, &table, &q, Strategy::StageBitonic)
                .expect("serial run")
                .kernel_time;
        }
        let serial_qps = load as f64 / serial.seconds();

        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for i in 0..load {
            server
                .submit(&sql_for(i), SubmitOptions::default())
                .expect("submit");
        }
        let report = server.drain();

        println!(
            "{:>8}{:>14.0}{:>14.0}{:>9.2}x{:>12}{:>12}{:>12}",
            load,
            serial_qps,
            report.queries_per_sec,
            report.queries_per_sec / serial_qps,
            format!("{}", report.p50),
            format!("{}", report.p95),
            format!("{}", report.p99),
        );
    }

    println!(
        "\n(speedup at 64 concurrent queries comes from stream overlap of the\n\
         per-query filters plus one coalesced batched top-k launch replacing\n\
         64 separate ORDER BY/LIMIT pipelines)"
    );
}
