//! Figure 14: key+value payloads (KV, KKV, KKKV) for radix select and
//! bitonic top-k — runtime scales with item width, the crossover k stays
//! put.

use bench::{banner, scale, K_SWEEP};
use datagen::{Distribution, Kkkv, Kkv, Kv, TopKItem, Uniform};
use simt::{Device, GpuBuffer};
use topk::bitonic::BitonicConfig;
use topk::{TopKAlgorithm, TopKRequest};

fn sweep<T: TopKItem>(label: &str, dev: &Device, input: &GpuBuffer<T>) {
    println!("-- {label} ({} B/item) --", T::SIZE_BYTES);
    println!("{:>8}{:>16}{:>16}", "k", "radix-select", "bitonic");
    for k in K_SWEEP {
        let tr = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::RadixSelect)
            .run(dev, input);
        let tb = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
            .run(dev, input);
        println!(
            "{:>8}{:>14}{:>14}",
            k,
            tr.map_or("FAIL".into(), |r| format!("{:.3}ms", r.time.millis())),
            tb.map_or("FAIL".into(), |r| format!("{:.3}ms", r.time.millis())),
        );
    }
    println!();
}

fn main() {
    let log2n = scale().saturating_sub(1); // the paper uses 2^28 here
    let n = 1usize << log2n;
    banner("Figure 14", "key(s)+value tuples: KV, KKV, KKKV", log2n);

    let keys: Vec<f32> = Uniform.generate(n, 17);
    let dev = Device::titan_x();

    let kv: Vec<Kv<f32>> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Kv::new(k, i as u32))
        .collect();
    let input = dev.upload(&kv);
    sweep("KV: key + value", &dev, &input);
    drop(input);

    let keys2: Vec<f32> = Uniform.generate(n, 18);
    let kkv: Vec<Kkv<f32>> = keys
        .iter()
        .zip(&keys2)
        .enumerate()
        .map(|(i, (&a, &b))| Kkv::new(a, b, i as u32))
        .collect();
    let input = dev.upload(&kkv);
    sweep("KKV: two keys + value", &dev, &input);
    drop(input);

    let keys3: Vec<f32> = Uniform.generate(n, 19);
    let kkkv: Vec<Kkkv<f32>> = keys
        .iter()
        .zip(&keys2)
        .zip(&keys3)
        .enumerate()
        .map(|(i, ((&a, &b), &c))| Kkkv::new(a, b, c, i as u32))
        .collect();
    let input = dev.upload(&kkkv);
    sweep("KKKV: three keys + value", &dev, &input);
}
