//! Figure 12a: sorted (increasing) input — per-thread top-k degrades
//! (every element displaces the heap minimum); sort and bitonic are
//! unchanged.

use bench::{banner, print_header, print_row, run_cell, scale, K_SWEEP};
use datagen::{Distribution, Increasing};
use simt::{Device, SimTime};
use topk::TopKAlgorithm;

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner("Figure 12a", "increasing (sorted) f32 distribution", log2n);

    let data: Vec<f32> = Increasing.generate(n, 14);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let floor = SimTime::from_seconds(dev.spec().scan_floor_seconds(n * 4));

    let algs = TopKAlgorithm::all();
    print_header("k", &algs);
    for k in K_SWEEP {
        let cells: Vec<_> = algs.iter().map(|a| run_cell(&dev, a, &input, k)).collect();
        print_row(k, &cells, floor);
    }
}
