//! Figure 8: runtime while varying the number of elements per thread (B).
//! Padding makes B = 16 viable; beyond it, register pressure costs
//! occupancy.

use bench::{banner, scale};
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::bitonic::{bitonic_topk, BitonicConfig};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 8",
        "varying elements per thread (B), k = 32, f32 U(0,1)",
        log2n,
    );

    let data: Vec<f32> = Uniform.generate(n, 23);
    let dev = Device::titan_x();
    let input = dev.upload(&data);

    println!(
        "{:>6}{:>14}{:>14}{:>16}{:>12}",
        "B", "time", "t_shared", "conflicts", "occupancy"
    );
    for b in [4usize, 8, 16, 32, 64] {
        let r = bitonic_topk(&dev, &input, 32, BitonicConfig::with_elems_per_thread(b)).unwrap();
        let conflicts: u64 = r
            .reports
            .iter()
            .map(|x| x.stats.shared_conflict_cycles)
            .sum();
        let t_shared: f64 = r.reports.iter().map(|x| x.t_shared.millis()).sum();
        let occ = r.reports.first().map_or(0.0, |x| x.occupancy.occupancy);
        println!(
            "{b:>6}{:>12.3}ms{t_shared:>12.3}ms{conflicts:>16}{occ:>12.3}",
            r.time.millis()
        );
    }
}
