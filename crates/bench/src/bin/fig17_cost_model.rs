//! Figure 17: Section 7 cost-model predictions vs the simulator's
//! measured times, for radix select and bitonic top-k across k.

use bench::{banner, scale, K_SWEEP};
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::bitonic::BitonicConfig;
use topk::{TopKAlgorithm, TopKRequest};
use topk_costmodel::{
    bitonic_topk_seconds, radix_select_seconds, BitonicModelInput, ReductionProfile,
};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Figure 17",
        "cost model predicted vs measured (simulated), f32 U(0,1)",
        log2n,
    );

    let data: Vec<f32> = Uniform.generate(n, 21);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let spec = dev.spec();

    println!(
        "{:>6}{:>18}{:>18}{:>20}{:>20}",
        "k", "radix measured", "radix predicted", "bitonic measured", "bitonic predicted"
    );
    for k in K_SWEEP {
        let rm = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::RadixSelect)
            .run(&dev, &input)
            .unwrap()
            .time
            .millis();
        let rp = radix_select_seconds(spec, n, 4, &ReductionProfile::UniformFloats) * 1e3;
        let bm = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
            .run(&dev, &input)
            .unwrap()
            .time
            .millis();
        let conflict = if k <= 256 { 1.0 } else { 1.3 };
        let bp = bitonic_topk_seconds(
            spec,
            BitonicModelInput {
                n,
                k,
                item_bytes: 4,
                elems_per_thread: 16,
                conflict_degree: conflict,
            },
        ) * 1e3;
        println!("{k:>6}{rm:>16.3}ms{rp:>16.3}ms{bm:>18.3}ms{bp:>18.3}ms");
    }
    println!("\n(the paper's models also underestimate: kernels do not reach peak bandwidth)");
}
