//! Cross-hardware prediction (the Section 7 motivation: "predict the
//! performance on different hardware"): runs the k-sweep on three device
//! generations and compares the measured crossover against the planner's
//! per-device prediction.

use bench::{banner, scale, K_SWEEP};
use datagen::{Distribution, Uniform};
use simt::{Device, DeviceSpec};
use topk::bitonic::BitonicConfig;
use topk::{TopKAlgorithm, TopKRequest};
use topk_costmodel::{planner::Algorithm, recommend, ReductionProfile};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Device sweep",
        "bitonic vs radix vs delegate select across GPU generations",
        log2n,
    );
    let data: Vec<f32> = Uniform.generate(n, 99);

    for (name, spec) in [
        ("GTX Titan X (Maxwell)", DeviceSpec::titan_x_maxwell()),
        ("Titan X (Pascal)", DeviceSpec::titan_x_pascal()),
        ("Tesla V100 (Volta)", DeviceSpec::tesla_v100()),
    ] {
        println!(
            "-- {name}: B_G = {:.0} GB/s, B_S = {:.1} TB/s --",
            spec.global_bw / 1e9,
            spec.shared_bw / 1e12
        );
        let dev = Device::new(spec);
        let input = dev.upload(&data);
        println!(
            "{:>6}{:>14}{:>16}{:>14}{:>14}{:>12}",
            "k", "bitonic", "radix-select", "delegate", "sim winner", "planner"
        );
        for k in K_SWEEP {
            let tb = TopKRequest::largest(k)
                .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
                .run(&dev, &input)
                .unwrap()
                .time;
            let tr = TopKRequest::largest(k)
                .with_alg(TopKAlgorithm::RadixSelect)
                .run(&dev, &input)
                .unwrap()
                .time;
            let td = TopKRequest::largest(k)
                .with_alg(TopKAlgorithm::DelegateSelect(Default::default()))
                .run(&dev, &input)
                .unwrap()
                .time;
            let sim_winner = [
                ("bitonic", tb.seconds()),
                ("radix", tr.seconds()),
                ("delegate", td.seconds()),
            ]
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
            let plan = recommend(&spec, n, k, 4, &ReductionProfile::UniformFloats);
            let plan_winner = match plan.algorithm {
                Algorithm::BitonicTopK => "bitonic",
                Algorithm::RadixSelect => "radix",
                Algorithm::DelegateSelect => "delegate",
            };
            let mark = if sim_winner == plan_winner {
                ""
            } else {
                "  <-- disagree"
            };
            println!(
                "{:>6}{:>12.3}ms{:>14.3}ms{:>12.3}ms{:>14}{:>12}{}",
                k,
                tb.millis(),
                tr.millis(),
                td.millis(),
                sim_winner,
                plan_winner,
                mark
            );
        }
        println!();
    }
}
