//! Hybrid-strategy ablation (the paper's Section 8 future work): the
//! radix-narrow + bitonic-finish hybrid against the pure algorithms
//! across k, plus the CPU+GPU device split.

use bench::{banner, scale, K_SWEEP};
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::bitonic::BitonicConfig;
use topk::hybrid::{cpu_gpu_topk, select_then_bitonic};
use topk::{TopKAlgorithm, TopKRequest};

fn main() {
    let log2n = scale();
    let n = 1usize << log2n;
    banner(
        "Hybrid ablation",
        "select→bitonic hybrid vs pure algorithms, f32 U(0,1)",
        log2n,
    );

    let data: Vec<f32> = Uniform.generate(n, 55);
    let dev = Device::titan_x();
    let input = dev.upload(&data);

    println!(
        "{:>6}{:>14}{:>16}{:>18}",
        "k", "bitonic", "radix-select", "select->bitonic"
    );
    for k in K_SWEEP {
        let tb = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
            .run(&dev, &input)
            .unwrap()
            .time;
        let tr = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::RadixSelect)
            .run(&dev, &input)
            .unwrap()
            .time;
        let th = select_then_bitonic(&dev, &input, k).unwrap().time;
        println!(
            "{:>6}{:>12.3}ms{:>14.3}ms{:>16.3}ms",
            k,
            tb.millis(),
            tr.millis(),
            th.millis()
        );
    }

    println!("\n-- CPU+GPU split (GPU simulated, CPU measured on this host) --");
    println!(
        "{:>14}{:>14}{:>14}{:>14}",
        "gpu fraction", "gpu (sim)", "cpu (real)", "combined"
    );
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    for frac in [0.0, 0.5, 0.8, 0.95, 1.0] {
        let r = cpu_gpu_topk(&dev, &data, 32, frac, threads).unwrap();
        println!(
            "{:>14.2}{:>12.3}ms{:>12.3}ms{:>12.3}ms",
            r.gpu_fraction,
            r.gpu_time.millis(),
            r.cpu_seconds * 1e3,
            r.combined_seconds * 1e3
        );
    }
    println!("\n(a real system would pick the split from the bandwidth ratio; note the");
    println!(" mixed fidelity — the GPU column is modeled, the CPU column is measured)");
}
