//! The unified benchmark harness binary: runs the top-k figure suite,
//! the qdb serving suite, the multi-device cluster suite and the
//! real-CPU backend suite, and writes machine-readable
//! `BENCH_topk.json` / `BENCH_serve.json` / `BENCH_cluster.json` /
//! `BENCH_cpu.json` / `BENCH_stream.json` reports (see `bench::report`
//! for the schema).
//!
//! ```text
//! harness [--out-dir DIR] [--only topk|serve|cluster|cpu|stream]
//! ```
//!
//! Scale comes from `TOPK_REPRO_LOG2N` like every experiment binary:
//! unset runs the full profile (top-k at 2^22, serving at 2^17);
//! `TOPK_REPRO_LOG2N=16` is the small profile the CI perf gate uses.
//! Compare the written reports against the committed baseline with
//! `bench-diff`.

use bench::harness::{
    run_cluster_suite, run_cpu_suite, run_serve_suite, run_stream_suite, run_topk_suite,
    HarnessScales,
};

fn main() {
    let mut out_dir = std::path::PathBuf::from(".");
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => {
                out_dir = args.next().expect("--out-dir needs a directory").into();
            }
            "--only" => {
                let suite = args
                    .next()
                    .expect("--only needs topk|serve|cluster|cpu|stream");
                assert!(
                    suite == "topk"
                        || suite == "serve"
                        || suite == "cluster"
                        || suite == "cpu"
                        || suite == "stream",
                    "--only accepts topk, serve, cluster, cpu or stream, got '{suite}'"
                );
                only = Some(suite);
            }
            other => panic!(
                "unknown argument '{other}' \
                 (usage: harness [--out-dir DIR] [--only topk|serve|cluster|cpu|stream])"
            ),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let scales = HarnessScales::from_env();
    println!(
        "== bench harness: profile '{}' (topk n=2^{}, serve n=2^{}, cpu n=2^{}, stream n=2^{}) ==",
        scales.profile,
        scales.topk_log2n,
        scales.serve_log2n,
        scales.cpu_log2n,
        scales.stream_log2n
    );

    let write = |name: &str, text: String, cells: usize| {
        let path = out_dir.join(name);
        std::fs::write(&path, text).expect("write report");
        println!("wrote {} ({cells} experiments)", path.display());
    };

    let run = |suite: &str| only.is_none() || only.as_deref() == Some(suite);
    if run("topk") {
        let wall = std::time::Instant::now();
        let report = run_topk_suite(scales.topk_log2n, &scales.profile);
        println!(
            "topk suite: {} cells in {:.1}s host wall",
            report.experiments.len(),
            wall.elapsed().as_secs_f64()
        );
        write("BENCH_topk.json", report.render(), report.experiments.len());
    }
    if run("serve") {
        let wall = std::time::Instant::now();
        let report = run_serve_suite(scales.serve_log2n, &scales.profile);
        println!(
            "serve suite: {} cells in {:.1}s host wall",
            report.experiments.len(),
            wall.elapsed().as_secs_f64()
        );
        write(
            "BENCH_serve.json",
            report.render(),
            report.experiments.len(),
        );
    }
    if run("cpu") {
        let wall = std::time::Instant::now();
        let report = run_cpu_suite(scales.cpu_log2n, &scales.profile);
        println!(
            "cpu suite: {} cells in {:.1}s host wall",
            report.experiments.len(),
            wall.elapsed().as_secs_f64()
        );
        write("BENCH_cpu.json", report.render(), report.experiments.len());
    }
    if run("stream") {
        let wall = std::time::Instant::now();
        let report = run_stream_suite(scales.stream_log2n, &scales.profile);
        println!(
            "stream suite: {} cells in {:.1}s host wall",
            report.experiments.len(),
            wall.elapsed().as_secs_f64()
        );
        write(
            "BENCH_stream.json",
            report.render(),
            report.experiments.len(),
        );
    }
    if run("cluster") {
        let wall = std::time::Instant::now();
        let report = run_cluster_suite(scales.topk_log2n, &scales.profile);
        println!(
            "cluster suite: {} cells in {:.1}s host wall",
            report.experiments.len(),
            wall.elapsed().as_secs_f64()
        );
        write(
            "BENCH_cluster.json",
            report.render(),
            report.experiments.len(),
        );
    }
}
