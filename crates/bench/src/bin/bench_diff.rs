//! The perf regression gate binary: compares harness reports against the
//! committed baseline and machine-checks the paper claims.
//!
//! ```text
//! bench-diff [options] <BENCH_*.json>...
//!   --baseline DIR    baseline directory (default: crates/bench/baseline)
//!   --bless           overwrite the baseline with the given reports
//!   --host-tol F      fractional wall-clock tolerance (default 4.0 = 5x)
//!   --sim-eps F       relative epsilon for sim_* metrics (default 0: exact)
//!   --skip-claims     skip the paper-claim checks
//! ```
//!
//! Exit status is nonzero on any `FAIL` finding: a drifted deterministic
//! metric, a wall-clock regression beyond tolerance, a cell that
//! disappeared, a scale mismatch, or a violated paper claim. New cells
//! absent from the baseline only warn. After an *intended* performance
//! change, refresh the baseline with `--bless` and commit the JSON diff.

use bench::diff::{diff_reports, DiffConfig};
use bench::report::BenchReport;

fn main() {
    let mut baseline_dir =
        std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baseline"));
    let mut bless = false;
    let mut cfg = DiffConfig::default();
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_dir = args.next().expect("--baseline needs a directory").into()
            }
            "--bless" => bless = true,
            "--host-tol" => {
                cfg.host_tol = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--host-tol needs a number")
            }
            "--sim-eps" => {
                cfg.sim_rel_eps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sim-eps needs a number")
            }
            "--skip-claims" => cfg.check_claims = false,
            other if other.starts_with("--") => panic!("unknown option '{other}'"),
            path => inputs.push(path.into()),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: bench-diff [--baseline DIR] [--bless] [--host-tol F] [--sim-eps F] [--skip-claims] <BENCH_*.json>...");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &inputs {
        let name = path
            .file_name()
            .unwrap_or_else(|| panic!("{} has no file name", path.display()))
            .to_owned();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let current = match BenchReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL: {} is not a valid report: {e}", path.display());
                failed = true;
                continue;
            }
        };

        if bless {
            std::fs::create_dir_all(&baseline_dir).expect("create baseline dir");
            let dst = baseline_dir.join(&name);
            std::fs::write(&dst, &text).expect("write baseline");
            println!(
                "blessed {} -> {} ({} experiments, profile '{}')",
                path.display(),
                dst.display(),
                current.experiments.len(),
                current.scale.profile
            );
            continue;
        }

        let base_path = baseline_dir.join(&name);
        let base_text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(_) => {
                eprintln!(
                    "FAIL: no committed baseline at {} — create one with `bench-diff --bless {}`",
                    base_path.display(),
                    path.display()
                );
                failed = true;
                continue;
            }
        };
        let baseline = BenchReport::from_json(&base_text)
            .unwrap_or_else(|e| panic!("baseline {} is invalid: {e}", base_path.display()));

        println!(
            "== {} vs baseline ({} @ 2^{}, {} experiments) ==",
            name.to_string_lossy(),
            baseline.scale.profile,
            baseline.scale.log2n,
            baseline.experiments.len()
        );
        let outcome = diff_reports(&baseline, &current, &cfg);
        print!("{}", outcome.render());
        let fails = outcome
            .findings
            .iter()
            .filter(|f| f.severity == bench::diff::Severity::Fail)
            .count();
        let warns = outcome.findings.len() - fails;
        println!("{fails} failure(s), {warns} warning(s)\n");
        failed |= outcome.failed();
    }

    if failed {
        eprintln!("bench-diff: regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-diff: gate passed");
}
