//! Figure 13: time vs data size at fixed k = 64 — bitonic and sort scale
//! linearly; the selection methods flatten at small n where the prefix
//! sums dominate.

use bench::{banner, print_header, print_row, run_cell, scale};
use datagen::{Distribution, Uniform};
use simt::{Device, SimTime};
use topk::TopKAlgorithm;

fn main() {
    let max_log2 = scale();
    let min_log2 = max_log2.saturating_sub(8).max(14);
    banner(
        "Figure 13",
        "performance with varying data size, k = 64, f32 U(0,1)",
        max_log2,
    );

    let algs = TopKAlgorithm::all();
    print_header("log2(n)", &algs);
    for log2n in min_log2..=max_log2 {
        let n = 1usize << log2n;
        let data: Vec<f32> = Uniform.generate(n, 16);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let floor = SimTime::from_seconds(dev.spec().scan_floor_seconds(n * 4));
        let cells: Vec<_> = algs.iter().map(|a| run_cell(&dev, a, &input, 64)).collect();
        print_row(log2n, &cells, floor);
    }
}
