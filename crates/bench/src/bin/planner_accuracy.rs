//! Planner accuracy: the full six-way cost-model ranking
//! (`recommend_full`, extending the paper's two-way planner) against the
//! simulator's measured winner over an (n, k) grid.

use bench::banner;
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::{TopKAlgorithm, TopKRequest};
use topk_costmodel::{recommend_full, FullAlgorithm, ReductionProfile};

fn alg_of(f: FullAlgorithm) -> TopKAlgorithm {
    match f {
        FullAlgorithm::Sort => TopKAlgorithm::Sort,
        FullAlgorithm::PerThread => TopKAlgorithm::PerThread,
        FullAlgorithm::RadixSelect => TopKAlgorithm::RadixSelect,
        FullAlgorithm::BucketSelect => TopKAlgorithm::BucketSelect,
        FullAlgorithm::BitonicTopK => TopKAlgorithm::Bitonic(Default::default()),
        FullAlgorithm::DelegateSelect => TopKAlgorithm::DelegateSelect(Default::default()),
    }
}

fn main() {
    banner(
        "Planner accuracy",
        "six-way cost-model ranking vs simulated winner",
        22,
    );
    let mut agree = 0usize;
    let mut near = 0usize;
    let mut total = 0usize;

    println!(
        "{:>8}{:>6}{:>18}{:>18}{:>10}",
        "log2(n)", "k", "planner pick", "sim winner", "verdict"
    );
    for log2n in [18u32, 20, 22] {
        let n = 1usize << log2n;
        let data: Vec<f32> = Uniform.generate(n, 60 + log2n as u64);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        for k in [1usize, 16, 64, 256, 1024] {
            let ranked = recommend_full(dev.spec(), n, k, 4, &ReductionProfile::UniformFloats);
            let pick = ranked[0].algorithm;

            let mut best: Option<(FullAlgorithm, f64)> = None;
            let mut times = std::collections::HashMap::new();
            for r in &ranked {
                if let Ok(res) = TopKRequest::largest(k)
                    .with_alg(alg_of(r.algorithm))
                    .run(&dev, &input)
                {
                    let t = res.time.seconds();
                    times.insert(format!("{:?}", r.algorithm), t);
                    if best.is_none() || t < best.unwrap().1 {
                        best = Some((r.algorithm, t));
                    }
                }
            }
            let (winner, t_best) = best.expect("at least one algorithm ran");
            total += 1;
            let verdict = if pick == winner {
                agree += 1;
                "match"
            } else {
                // near-miss: the pick is within 25% of the true winner
                let t_pick = times
                    .get(&format!("{pick:?}"))
                    .copied()
                    .unwrap_or(f64::INFINITY);
                if t_pick <= t_best * 1.25 {
                    near += 1;
                    "near"
                } else {
                    "MISS"
                }
            };
            println!(
                "{log2n:>8}{k:>6}{:>18}{:>18}{verdict:>10}",
                format!("{pick:?}"),
                format!("{winner:?}")
            );
        }
    }
    println!(
        "\n{agree}/{total} exact, {near} near-misses (pick within 25% of the winner), {} real misses",
        total - agree - near
    );
    assert!(
        total - agree - near == 0,
        "planner made a >25% mistake — cost models need recalibration"
    );
}
