//! The regression gate: compares a fresh [`BenchReport`] against a
//! committed baseline and machine-checks the paper's headline claims.
//!
//! Two metric classes, two gates (see [`crate::report`] for the naming
//! convention):
//!
//! * `sim_*` metrics are deterministic simulator quantities — gated with
//!   an **exact match** (configurable epsilon, default 0). Any drift,
//!   faster *or* slower, fails: an unexplained change in modeled time or
//!   traffic means the code's machine behavior changed, and the baseline
//!   must be refreshed deliberately (`bench-diff --bless`) with the
//!   change reviewed in the JSON diff.
//! * `host_*` metrics are wall-clock — gated with a percentage
//!   tolerance in the *worse* direction only (`_ms` up is worse, `_qps`
//!   down is worse), and skipped entirely below a noise floor where
//!   micro-benchmark wall-clock is meaningless.
//!
//! Coverage is part of the contract: an experiment or metric present in
//! the baseline but missing from the current report **fails** (a cell
//! silently disappearing is how an algorithm that starts erroring would
//! otherwise dodge the gate), while new cells absent from the baseline
//! only **warn** until blessed.

use crate::report::BenchReport;

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Fractional tolerance for `host_*` metrics: the current value may
    /// be worse than baseline by up to this fraction (default 4.0, i.e.
    /// up to 5× slower) before failing. Generous because CI machines and
    /// dev machines differ; the precise gate is the `sim_*` class.
    pub host_tol: f64,
    /// Noise floor in milliseconds: `host_*_ms` cells whose *baseline*
    /// value is below this are not gated (sub-floor wall-clock is
    /// dominated by scheduler noise). `host_*_qps` metrics use the same
    /// floor via their experiment's `host_wall_ms` sibling.
    pub host_floor_ms: f64,
    /// Relative epsilon for the `sim_*` exact gate (default 0: exact).
    pub sim_rel_eps: f64,
    /// Also machine-check the paper claims on the current report.
    pub check_claims: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            host_tol: 4.0,
            host_floor_ms: 25.0,
            sim_rel_eps: 0.0,
            check_claims: true,
        }
    }
}

/// Finding severity: `Fail` gates (nonzero exit), `Warn` only reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational — the gate still passes.
    Warn,
    /// A regression, claim violation, or comparison error.
    Fail,
}

/// One gate finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Whether this finding fails the gate.
    pub severity: Severity,
    /// Human-readable description with the offending values.
    pub message: String,
}

impl Finding {
    fn fail(message: String) -> Self {
        Finding {
            severity: Severity::Fail,
            message,
        }
    }
    fn warn(message: String) -> Self {
        Finding {
            severity: Severity::Warn,
            message,
        }
    }
}

/// The outcome of one baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffOutcome {
    /// All findings, in comparison order.
    pub findings: Vec<Finding>,
}

impl DiffOutcome {
    /// True when any finding is a [`Severity::Fail`].
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Fail)
    }

    /// Renders findings as one line each (`FAIL`/`warn` prefixed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Fail => "FAIL",
                Severity::Warn => "warn",
            };
            out.push_str(&format!("{tag}: {}\n", f.message));
        }
        out
    }
}

/// Whether a `host_*` metric regresses upward or downward.
fn higher_is_better(metric: &str) -> bool {
    metric.ends_with("_qps")
}

/// Single-thread wall-clock floor for the CPU thread-scaling claim:
/// below this, spawning a thread scope costs a comparable share of the
/// whole run and the claim is reported as a warning, not gated.
pub const CPU_CLAIM_FLOOR_MS: f64 = 10.0;

/// Compares `current` against `baseline` under `cfg`. Claim checks (if
/// enabled) run on the current report.
pub fn diff_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    cfg: &DiffConfig,
) -> DiffOutcome {
    let mut out = DiffOutcome::default();

    if baseline.kind != current.kind {
        out.findings.push(Finding::fail(format!(
            "report kind mismatch: baseline '{}' vs current '{}'",
            baseline.kind, current.kind
        )));
        return out;
    }
    if baseline.scale.log2n != current.scale.log2n
        || baseline.scale.profile != current.scale.profile
    {
        out.findings.push(Finding::fail(format!(
            "scale mismatch: baseline {}@2^{} vs current {}@2^{} — \
             rerun the harness at the baseline's scale or re-bless",
            baseline.scale.profile,
            baseline.scale.log2n,
            current.scale.profile,
            current.scale.log2n
        )));
        return out;
    }

    for bexp in &baseline.experiments {
        let Some(cexp) = current.experiment(&bexp.id) else {
            out.findings.push(Finding::fail(format!(
                "experiment '{}' is in the baseline but missing from the current report \
                 (did a cell start failing?)",
                bexp.id
            )));
            continue;
        };
        for (name, &bval) in &bexp.metrics {
            let Some(&cval) = cexp.metrics.get(name) else {
                out.findings.push(Finding::fail(format!(
                    "metric '{}/{name}' is in the baseline but missing from the current report",
                    bexp.id
                )));
                continue;
            };
            if name.starts_with("sim_") {
                let diff = (cval - bval).abs();
                if diff > cfg.sim_rel_eps * bval.abs() {
                    let dir = if cval > bval { "+" } else { "-" };
                    out.findings.push(Finding::fail(format!(
                        "'{}/{name}' drifted: baseline {bval} -> current {cval} ({dir}{:.3}%) — \
                         deterministic metrics gate exactly; refresh with `bench-diff --bless` \
                         if the change is intended",
                        bexp.id,
                        100.0 * diff / bval.abs().max(f64::MIN_POSITIVE)
                    )));
                }
            } else {
                // host wall-clock: gate only the worse direction, above
                // the noise floor
                let floor_val = if name.ends_with("_ms") {
                    bval
                } else {
                    bexp.metrics.get("host_wall_ms").copied().unwrap_or(0.0)
                };
                if floor_val < cfg.host_floor_ms {
                    continue;
                }
                let worse_ratio = if higher_is_better(name) {
                    if cval <= 0.0 {
                        f64::INFINITY
                    } else {
                        bval / cval
                    }
                } else if bval <= 0.0 {
                    f64::INFINITY
                } else {
                    cval / bval
                };
                if worse_ratio > 1.0 + cfg.host_tol {
                    out.findings.push(Finding::fail(format!(
                        "'{}/{name}' regressed {worse_ratio:.2}x beyond the {:.0}% wall-clock \
                         tolerance: baseline {bval:.3} -> current {cval:.3}",
                        bexp.id,
                        100.0 * cfg.host_tol
                    )));
                }
            }
        }
        for name in cexp.metrics.keys() {
            if !bexp.metrics.contains_key(name) {
                out.findings.push(Finding::warn(format!(
                    "metric '{}/{name}' is new (not in the baseline) — not gated until blessed",
                    bexp.id
                )));
            }
        }
    }
    // one aggregate warning naming every new cell: CI logs must show
    // exactly which experiments a `--bless` would add to the baseline
    let new_cells: Vec<&str> = current
        .experiments
        .iter()
        .filter(|c| baseline.experiment(&c.id).is_none())
        .map(|c| c.id.as_str())
        .collect();
    if !new_cells.is_empty() {
        out.findings.push(Finding::warn(format!(
            "{} new experiment(s) not in the baseline — not gated until blessed: {}",
            new_cells.len(),
            new_cells.join(", ")
        )));
    }

    if cfg.check_claims {
        out.findings.extend(check_claims(current));
    }
    out
}

/// Machine-checks the paper's headline claims against one report.
///
/// Top-k reports (`kind == "topk"`):
/// 1. **Bitonic beats full sort for every k ≤ 256** (§1/§6.2) on the
///    uniform vary-k sweep.
/// 2. **Bitonic is skew-immune** (§6.4): its modeled time is identical
///    across all six distributions (no adversarial input exists — its
///    compare-exchange schedule is data-independent).
/// 3. **Per-thread top-k degrades gracefully under skew** (§6.3): sorted
///    (increasing) input costs at most 4× its uniform-input time — it
///    slows (every element passes the heap filter) but does not blow up.
/// 8. **The static analyzer never drifts from the replay**: every cell
///    must carry `sim_static_sectors_per_access` /
///    `sim_static_conflict_degree` (i.e. every launch declared an
///    access-spec contract) and each must be bit-identical to the
///    dynamically measured `sim_sectors_per_access` /
///    `sim_conflict_degree` — the cross-check that keeps `simt::lint`'s
///    pre-launch predictions honest.
/// 9. **Delegate select slashes global traffic at small k** (Dr. Top-k):
///    with a warm index, its `sim_global_bytes` must be ≤ 0.25× bitonic's
///    for every k ≤ 64 — on the uniform vary-k sweep and on every vary-n
///    size with `n ≥ 2^20`. Below 2^20 the delegate set is too coarse to
///    prune (at 2^16 there are only 32 subranges), so the bound is
///    reported as a warning, not gated.
///
/// Serving reports (`kind == "serve"`):
/// 4. **Concurrent serving beats serial** at the highest offered load:
///    streams + batch coalescing yield ≥ 1.5× over back-to-back kernels.
///
/// Cluster reports (`kind == "cluster"`):
/// 5. **Sharded execution is exact**: every cell's merged result must be
///    bit-identical to the single-device oracle (`sim_exact == 1`), for
///    every partition policy × device count.
/// 6. **Sharding scales**: at full scale (`log2n ≥ 22`), eight devices
///    must at least halve the single-device end-to-end time for every
///    policy. At smaller scales launch overhead and link latency
///    dominate the shrunken local pass, so the speedup gate is replaced
///    by a warning (exactness is still enforced).
/// 10. **Replication survives permanent device loss**: in the
///    availability sweep (`cluster/avail/r{r}`), `r ≥ 2` with one
///    device permanently lost mid-load must complete *every* query
///    (`sim_completed_frac == 1`) through drain-time failover
///    (`sim_failovers > 0`), bit-exact (the cell's `sim_exact` claim
///    compliance is enforced by claim 5); `r = 1` must surface the
///    loss (`sim_completed_frac < 1`) — loud typed failure, never a
///    silently truncated result.
///
/// Streaming reports (`kind == "stream"`):
/// 11. **Delta maintenance beats rescans on ingest**: every
///    `stream/view/*` and `stream/mix/*` cell must be bit-exact
///    (`sim_exact == 1` — maintained views equal a from-scratch rescan;
///    cached reads equal a same-epoch serial execution), and at delta
///    fractions ≤ 1/64 a view refresh must move ≤ 0.25× the
///    global-memory bytes of the rescan it replaces. The traffic bound
///    gates (`Fail`) at `log2n ≥ 20` and warns below — at the CI small
///    profile the merge's fixed k-sized traffic is a visible share of a
///    tiny delta scan.
///
/// CPU backend reports (`kind == "cpu"`):
/// 7. **The CPU backend's threads pay for themselves** (§3.1): for every
///    algorithm, the fastest multi-thread cell must beat the same
///    algorithm's single-thread cell. Wall-clock only makes this claim
///    meaningful at real sizes, so it gates (`Fail`) at `log2n ≥ 20` and
///    warns below (the CI small profile runs at 2^16, where a partition
///    can be cheaper than spawning workers). It also only gates
///    algorithms whose single-thread cell is at least
///    [`CPU_CLAIM_FLOOR_MS`]: a heap top-k that finishes a 2^20 scan in
///    ~1.5 ms cannot amortize thread-spawn cost (~0.5 ms per scope on a
///    small box), and that is machine physics, not a regression.
///
/// A claim whose cells are missing fails — an unverifiable claim is
/// indistinguishable from a violated one at gate time.
pub fn check_claims(report: &BenchReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    let need = |id: &str, metric: &str, findings: &mut Vec<Finding>| -> Option<f64> {
        let v = report.metric(id, metric);
        if v.is_none() {
            findings.push(Finding::fail(format!(
                "claim check needs '{id}/{metric}' but the report has no such cell"
            )));
        }
        v
    };

    match report.kind.as_str() {
        "topk" => {
            // 1. bitonic < sort for k ≤ 256
            for k in crate::K_SWEEP.into_iter().filter(|&k| k <= 256) {
                let b = need(
                    &format!("vary_k/uniform/bitonic/k{k}"),
                    "sim_time_ms",
                    &mut findings,
                );
                let s = need(
                    &format!("vary_k/uniform/sort/k{k}"),
                    "sim_time_ms",
                    &mut findings,
                );
                if let (Some(b), Some(s)) = (b, s) {
                    if b >= s {
                        findings.push(Finding::fail(format!(
                            "claim violated: bitonic must beat full sort for k={k} \
                             (bitonic {b:.4} ms vs sort {s:.4} ms)"
                        )));
                    }
                }
            }
            // 2. bitonic skew-immune across the distribution sweep
            let times: Vec<(String, f64)> = crate::harness::distributions()
                .iter()
                .filter_map(|(name, _)| {
                    report
                        .metric(&format!("dist/{name}/bitonic/k32"), "sim_time_ms")
                        .map(|t| (name.to_string(), t))
                })
                .collect();
            if times.len() < 2 {
                findings.push(Finding::fail(
                    "claim check needs bitonic cells across the distribution sweep".to_string(),
                ));
            } else {
                let min = times.iter().map(|(_, t)| *t).fold(f64::MAX, f64::min);
                let max = times.iter().map(|(_, t)| *t).fold(f64::MIN, f64::max);
                if max / min > 1.0 + 1e-6 {
                    findings.push(Finding::fail(format!(
                        "claim violated: bitonic top-k must be skew-immune, but its time varies \
                         {:.4}x across distributions ({times:?})",
                        max / min
                    )));
                }
            }
            // 3. per-thread degrades gracefully on sorted input
            let inc = need(
                "dist/increasing/per-thread/k32",
                "sim_time_ms",
                &mut findings,
            );
            let uni = need("dist/uniform/per-thread/k32", "sim_time_ms", &mut findings);
            if let (Some(inc), Some(uni)) = (inc, uni) {
                let ratio = inc / uni;
                if ratio > 4.0 {
                    findings.push(Finding::fail(format!(
                        "claim violated: per-thread top-k on sorted input must stay within 4x of \
                         uniform (paper: up to ~3x), got {ratio:.2}x"
                    )));
                }
            }
            // 9. delegate select's warm traffic bound vs bitonic
            {
                let mut worst: Option<(String, f64)> = None;
                let track = |id: String, d: f64, b: f64, worst: &mut Option<(String, f64)>| {
                    let ratio = d / b.max(f64::MIN_POSITIVE);
                    if worst.as_ref().is_none_or(|(_, w)| ratio > *w) {
                        *worst = Some((id, ratio));
                    }
                };
                for k in crate::K_SWEEP.into_iter().filter(|&k| k <= 64) {
                    let id = format!("vary_k/uniform/delegate-select/k{k}");
                    let d = need(&id, "sim_global_bytes", &mut findings);
                    let b = need(
                        &format!("vary_k/uniform/bitonic/k{k}"),
                        "sim_global_bytes",
                        &mut findings,
                    );
                    if let (Some(d), Some(b)) = (d, b) {
                        // the vary-k sweep runs at the report's scale
                        if report.scale.log2n >= 20 {
                            track(id, d, b, &mut worst);
                        } else if d > 0.25 * b {
                            findings.push(Finding::warn(format!(
                                "delegate traffic claim ('{id}': {d:.0} B vs bitonic {b:.0} B) \
                                 gated only at log2n >= 20; this report is at 2^{}",
                                report.scale.log2n
                            )));
                        }
                    }
                }
                // the vary-n sweep pins the same bound per size (k = 64)
                for e in &report.experiments {
                    let Some(x) =
                        e.id.strip_prefix("vary_n/uniform/delegate-select/log2n")
                            .and_then(|x| x.parse::<u32>().ok())
                    else {
                        continue;
                    };
                    if x < 20 {
                        continue;
                    }
                    let d = need(&e.id, "sim_global_bytes", &mut findings);
                    let b = need(
                        &format!("vary_n/uniform/bitonic/log2n{x}"),
                        "sim_global_bytes",
                        &mut findings,
                    );
                    if let (Some(d), Some(b)) = (d, b) {
                        track(e.id.clone(), d, b, &mut worst);
                    }
                }
                if let Some((id, ratio)) = worst {
                    if ratio > 0.25 {
                        findings.push(Finding::fail(format!(
                            "claim violated: warm delegate select must use <= 0.25x bitonic's \
                             global traffic at k <= 64, n >= 2^20; worst cell '{id}' is at \
                             {ratio:.3}x"
                        )));
                    }
                }
            }
            // 8. static lint predictions bit-match the measured metrics
            // in every swept cell
            for e in &report.experiments {
                for (stat, dynamic) in [
                    ("sim_static_sectors_per_access", "sim_sectors_per_access"),
                    ("sim_static_conflict_degree", "sim_conflict_degree"),
                ] {
                    let s = need(&e.id, stat, &mut findings);
                    let d = need(&e.id, dynamic, &mut findings);
                    if let (Some(s), Some(d)) = (s, d) {
                        if s.to_bits() != d.to_bits() {
                            findings.push(Finding::fail(format!(
                                "claim violated: static prediction drifted from replay in \
                                 '{}' ({stat} {s:.6} vs {dynamic} {d:.6})",
                                e.id
                            )));
                        }
                    }
                }
            }
        }
        "serve" => {
            let top_load = crate::harness::SERVE_LOADS[crate::harness::SERVE_LOADS.len() - 1];
            if let Some(speedup) = need(
                &format!("serve/load{top_load}"),
                "sim_speedup",
                &mut findings,
            ) {
                if speedup < 1.5 {
                    findings.push(Finding::fail(format!(
                        "claim violated: concurrent serving at {top_load} offered queries must \
                         beat serial by >= 1.5x, got {speedup:.2}x"
                    )));
                }
            }
        }
        "cluster" => {
            // 5. every cell must be oracle-exact
            for exp in &report.experiments {
                match exp.metrics.get("sim_exact") {
                    Some(&1.0) => {}
                    Some(&v) => findings.push(Finding::fail(format!(
                        "claim violated: '{}' must be bit-identical to the single-device \
                         oracle (sim_exact {v}, expected 1)",
                        exp.id
                    ))),
                    None => findings.push(Finding::fail(format!(
                        "claim check needs '{}/sim_exact' but the cell lacks it",
                        exp.id
                    ))),
                }
            }
            // 6. 8 devices halve the single-device time at full scale
            for policy in ["range", "hash", "round-robin"] {
                let one = need(
                    &format!("cluster/{policy}/dev1"),
                    "sim_time_ms",
                    &mut findings,
                );
                let eight = need(
                    &format!("cluster/{policy}/dev8"),
                    "sim_time_ms",
                    &mut findings,
                );
                let (Some(one), Some(eight)) = (one, eight) else {
                    continue;
                };
                if report.scale.log2n >= 22 {
                    if eight > 0.5 * one {
                        findings.push(Finding::fail(format!(
                            "claim violated: 8-device sharded top-k ({policy}) must run in \
                             <= 0.5x the single-device time at n=2^{}, got {eight:.4} ms vs \
                             {one:.4} ms ({:.2}x)",
                            report.scale.log2n,
                            eight / one
                        )));
                    }
                } else {
                    findings.push(Finding::warn(format!(
                        "cluster scaling claim ({policy}: 8-dev {eight:.4} ms vs 1-dev \
                         {one:.4} ms) gated only at log2n >= 22; this report is at 2^{}",
                        report.scale.log2n
                    )));
                }
            }
            // 10. replication serves through permanent device loss
            for r in crate::harness::AVAIL_REPLICATION {
                let id = format!("cluster/avail/r{r}");
                let frac = need(&id, "sim_completed_frac", &mut findings);
                let failovers = need(&id, "sim_failovers", &mut findings);
                let (Some(frac), Some(failovers)) = (frac, failovers) else {
                    continue;
                };
                if r >= 2 {
                    if frac < 1.0 {
                        findings.push(Finding::fail(format!(
                            "claim violated: r={r} must complete every query through one \
                             permanent device loss, but '{id}' completed only \
                             {:.1}% of the load",
                            frac * 100.0
                        )));
                    }
                    if failovers == 0.0 {
                        findings.push(Finding::fail(format!(
                            "claim violated: '{id}' completed without any failover — the \
                             device-loss scenario did not exercise replicated serving"
                        )));
                    }
                } else if frac >= 1.0 {
                    findings.push(Finding::fail(format!(
                        "claim violated: r=1 cannot absorb a permanent device loss, yet \
                         '{id}' reports full completion — the loss was silently hidden"
                    )));
                }
            }
        }
        "stream" => {
            // 11a. exactness everywhere: maintained views and cached
            // reads are bit-identical to from-scratch execution
            for exp in &report.experiments {
                match exp.metrics.get("sim_exact") {
                    Some(&1.0) => {}
                    Some(&v) => findings.push(Finding::fail(format!(
                        "claim violated: '{}' must be bit-identical to from-scratch \
                         execution (sim_exact {v}, expected 1)",
                        exp.id
                    ))),
                    None => findings.push(Finding::fail(format!(
                        "claim check needs '{}/sim_exact' but the cell lacks it",
                        exp.id
                    ))),
                }
            }
            // 11b. small deltas must be cheap: maintenance traffic at
            // delta fraction <= 1/64 stays under 0.25x a rescan
            for denom in crate::harness::STREAM_FRACS {
                if denom < 64 {
                    continue;
                }
                let id = format!("stream/view/frac{denom}");
                let d = need(&id, "sim_global_bytes", &mut findings);
                let r = need(&id, "sim_rescan_bytes", &mut findings);
                let (Some(d), Some(r)) = (d, r) else { continue };
                let ratio = d / r.max(f64::MIN_POSITIVE);
                if ratio <= 0.25 {
                    continue;
                }
                let msg = format!(
                    "delta maintenance traffic ('{id}': {d:.0} B vs rescan {r:.0} B, \
                     {ratio:.3}x) exceeds the 0.25x bound"
                );
                if report.scale.log2n >= 20 {
                    findings.push(Finding::fail(format!("claim violated: {msg}")));
                } else {
                    findings.push(Finding::warn(format!(
                        "{msg} — gated only at log2n >= 20; this report is at 2^{}",
                        report.scale.log2n
                    )));
                }
            }
        }
        "cpu" => {
            // 7. multi-thread beats single-thread per algorithm
            for alg in topk::TopKAlgorithm::all() {
                let t1 = need(
                    &format!("cpu/{}/t1", alg.name()),
                    "host_wall_ms",
                    &mut findings,
                );
                let best_multi = crate::harness::CPU_THREAD_SWEEP
                    .into_iter()
                    .filter(|&t| t > 1)
                    .filter_map(|t| {
                        report.metric(&format!("cpu/{}/t{t}", alg.name()), "host_wall_ms")
                    })
                    .fold(f64::MAX, f64::min);
                let Some(t1) = t1 else { continue };
                if best_multi == f64::MAX {
                    findings.push(Finding::fail(format!(
                        "claim check needs multi-thread cpu cells for '{}'",
                        alg.name()
                    )));
                    continue;
                }
                if best_multi < t1 {
                    continue;
                }
                let msg = format!(
                    "cpu backend scaling ({}): best multi-thread {best_multi:.3} ms does not \
                     beat single-thread {t1:.3} ms",
                    alg.name()
                );
                if report.scale.log2n < 20 {
                    findings.push(Finding::warn(format!(
                        "{msg} — gated only at log2n >= 20; this report is at 2^{}",
                        report.scale.log2n
                    )));
                } else if t1 < CPU_CLAIM_FLOOR_MS {
                    findings.push(Finding::warn(format!(
                        "{msg} — below the {CPU_CLAIM_FLOOR_MS:.0} ms floor where thread-spawn \
                         cost can be amortized, not gated"
                    )));
                } else {
                    findings.push(Finding::fail(format!("claim violated: {msg}")));
                }
            }
        }
        other => findings.push(Finding::warn(format!(
            "no claims defined for report kind '{other}'"
        ))),
    }
    findings
}
