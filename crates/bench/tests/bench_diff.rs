//! Gate-behavior tests for `bench::diff` — the contract the CI
//! `perf-gate` job relies on: exact gating of deterministic simulator
//! metrics, tolerance/floor gating of wall-clock metrics, coverage rules
//! (baseline-only cells fail, current-only cells warn), and the
//! machine-checked paper claims.

use std::collections::BTreeMap;

use bench::diff::{check_claims, diff_reports, DiffConfig, Severity};
use bench::report::{BenchReport, Experiment, Scale};

fn exp(id: &str, metrics: &[(&str, f64)]) -> Experiment {
    Experiment {
        id: id.to_string(),
        metrics: metrics
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect::<BTreeMap<_, _>>(),
    }
}

fn report(kind: &str, experiments: Vec<Experiment>) -> BenchReport {
    BenchReport {
        kind: kind.to_string(),
        commit: "test".to_string(),
        scale: Scale::new(16),
        experiments,
    }
}

/// Diff config without claim checks, so synthetic two-cell reports don't
/// trip the "claim cells missing" failures.
fn cfg() -> DiffConfig {
    DiffConfig {
        check_claims: false,
        ..DiffConfig::default()
    }
}

fn fails(outcome: &bench::diff::DiffOutcome) -> Vec<&str> {
    outcome
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Fail)
        .map(|f| f.message.as_str())
        .collect()
}

fn warns(outcome: &bench::diff::DiffOutcome) -> Vec<&str> {
    outcome
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .map(|f| f.message.as_str())
        .collect()
}

#[test]
fn identical_reports_pass_clean() {
    let r = report(
        "topk",
        vec![exp(
            "a/b",
            &[("sim_time_ms", 0.125), ("host_wall_ms", 100.0)],
        )],
    );
    let out = diff_reports(&r, &r.clone(), &cfg());
    assert!(!out.failed(), "{}", out.render());
    assert!(out.findings.is_empty());
}

#[test]
fn injected_sim_regression_must_fail() {
    let base = report("topk", vec![exp("a/b", &[("sim_time_ms", 0.125)])]);
    // any drift in a deterministic metric fails, in either direction
    for drifted in [0.1250001, 0.120] {
        let cur = report("topk", vec![exp("a/b", &[("sim_time_ms", drifted)])]);
        let out = diff_reports(&base, &cur, &cfg());
        assert!(out.failed(), "sim drift {drifted} must fail");
        assert!(fails(&out)[0].contains("bless"), "should hint at --bless");
    }
}

#[test]
fn sim_eps_tolerance_boundary() {
    let base = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.0)])]);
    let cur = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.001)])]);
    let loose = DiffConfig {
        sim_rel_eps: 1e-3,
        ..cfg()
    };
    // exactly at the relative epsilon: passes (gate is strict-greater)
    assert!(!diff_reports(&base, &cur, &loose).failed());
    let tight = DiffConfig {
        sim_rel_eps: 1e-4,
        ..cfg()
    };
    assert!(diff_reports(&base, &cur, &tight).failed());
}

#[test]
fn host_tolerance_boundary_cases() {
    let base = report("topk", vec![exp("a/b", &[("host_wall_ms", 100.0)])]);
    let c = DiffConfig {
        host_tol: 1.0, // up to 2x slower allowed
        ..cfg()
    };
    // exactly at the boundary (2x): passes
    let cur = report("topk", vec![exp("a/b", &[("host_wall_ms", 200.0)])]);
    assert!(!diff_reports(&base, &cur, &c).failed());
    // just beyond: fails
    let cur = report("topk", vec![exp("a/b", &[("host_wall_ms", 200.0001)])]);
    let out = diff_reports(&base, &cur, &c);
    assert!(out.failed());
    assert!(fails(&out)[0].contains("wall-clock"));
    // improvements never fail, however large
    let cur = report("topk", vec![exp("a/b", &[("host_wall_ms", 1.0)])]);
    assert!(!diff_reports(&base, &cur, &c).failed());
}

#[test]
fn host_qps_regresses_downward() {
    // throughput metrics gate in the opposite direction, using the
    // experiment's host_wall_ms sibling for the noise floor
    let base = report(
        "serve",
        vec![exp(
            "serve/load64",
            &[("host_qps", 1000.0), ("host_wall_ms", 500.0)],
        )],
    );
    let c = DiffConfig {
        host_tol: 1.0,
        ..cfg()
    };
    let cur = report(
        "serve",
        vec![exp(
            "serve/load64",
            &[("host_qps", 499.0), ("host_wall_ms", 500.0)],
        )],
    );
    assert!(diff_reports(&base, &cur, &c).failed());
    // doubling throughput is fine
    let cur = report(
        "serve",
        vec![exp(
            "serve/load64",
            &[("host_qps", 2000.0), ("host_wall_ms", 500.0)],
        )],
    );
    assert!(!diff_reports(&base, &cur, &c).failed());
}

#[test]
fn sub_floor_wall_clock_is_not_gated() {
    // baseline wall-clock below the noise floor: even a huge relative
    // regression is scheduler noise, not signal
    let base = report("topk", vec![exp("a/b", &[("host_wall_ms", 0.05)])]);
    let cur = report("topk", vec![exp("a/b", &[("host_wall_ms", 20.0)])]);
    let out = diff_reports(&base, &cur, &cfg());
    assert!(!out.failed(), "{}", out.render());
}

#[test]
fn metric_missing_from_baseline_warns_not_fails() {
    let base = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.0)])]);
    let cur = report(
        "topk",
        vec![exp(
            "a/b",
            &[("sim_time_ms", 1.0), ("sim_global_bytes", 42.0)],
        )],
    );
    let out = diff_reports(&base, &cur, &cfg());
    assert!(!out.failed(), "{}", out.render());
    assert_eq!(warns(&out).len(), 1);
    assert!(warns(&out)[0].contains("sim_global_bytes"));
}

#[test]
fn new_benchmark_absent_from_baseline_warns_not_fails() {
    let base = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.0)])]);
    let cur = report(
        "topk",
        vec![
            exp("a/b", &[("sim_time_ms", 1.0)]),
            exp("new/cell", &[("sim_time_ms", 9.0)]),
        ],
    );
    let out = diff_reports(&base, &cur, &cfg());
    assert!(!out.failed(), "{}", out.render());
    assert_eq!(warns(&out).len(), 1);
    assert!(warns(&out)[0].contains("new/cell"));
}

#[test]
fn new_cell_warning_lists_every_cell_name() {
    // blessing must be auditable from the CI log: one warning naming
    // every cell a --bless would add
    let base = report(
        "cluster",
        vec![exp("cluster/range/dev1", &[("sim_time_ms", 1.0)])],
    );
    let cur = report(
        "cluster",
        vec![
            exp("cluster/range/dev1", &[("sim_time_ms", 1.0)]),
            exp("cluster/range/dev2", &[("sim_time_ms", 0.6)]),
            exp("cluster/hash/dev4", &[("sim_time_ms", 0.4)]),
            exp("cluster/round-robin/dev8", &[("sim_time_ms", 0.3)]),
        ],
    );
    let out = diff_reports(&base, &cur, &cfg());
    assert!(!out.failed(), "{}", out.render());
    let w = warns(&out);
    assert_eq!(w.len(), 1, "one aggregate warning, got {w:?}");
    assert!(w[0].contains("3 new experiment(s)"));
    for cell in [
        "cluster/range/dev2",
        "cluster/hash/dev4",
        "cluster/round-robin/dev8",
    ] {
        assert!(w[0].contains(cell), "missing {cell} in: {}", w[0]);
    }
    assert!(
        !w[0].contains("cluster/range/dev1,"),
        "baseline cell listed"
    );
}

#[test]
fn disappeared_experiment_or_metric_fails() {
    let base = report(
        "topk",
        vec![
            exp("a/b", &[("sim_time_ms", 1.0), ("sim_launches", 3.0)]),
            exp("gone/cell", &[("sim_time_ms", 2.0)]),
        ],
    );
    // whole experiment vanished
    let cur = report(
        "topk",
        vec![exp("a/b", &[("sim_time_ms", 1.0), ("sim_launches", 3.0)])],
    );
    let out = diff_reports(&base, &cur, &cfg());
    assert!(out.failed());
    assert!(fails(&out)[0].contains("gone/cell"));
    // one metric vanished
    let cur = report(
        "topk",
        vec![
            exp("a/b", &[("sim_time_ms", 1.0)]),
            exp("gone/cell", &[("sim_time_ms", 2.0)]),
        ],
    );
    let out = diff_reports(&base, &cur, &cfg());
    assert!(out.failed());
    assert!(fails(&out)[0].contains("sim_launches"));
}

#[test]
fn scale_or_kind_mismatch_fails_before_comparing() {
    let base = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.0)])]);
    let mut cur = base.clone();
    cur.scale = Scale::new(22);
    let out = diff_reports(&base, &cur, &cfg());
    assert!(out.failed());
    assert!(fails(&out)[0].contains("scale mismatch"));

    let mut cur = base.clone();
    cur.kind = "serve".to_string();
    assert!(diff_reports(&base, &cur, &cfg()).failed());
}

/// A minimal claim-satisfying topk report: bitonic beats sort on every
/// vary-k cell, bitonic time is flat across distributions, per-thread on
/// sorted input stays within 4x of uniform.
fn claim_clean_topk() -> BenchReport {
    let mut exps = Vec::new();
    for k in bench::K_SWEEP {
        exps.push(exp(
            &format!("vary_k/uniform/bitonic/k{k}"),
            &[("sim_time_ms", 0.1), ("sim_global_bytes", 1e6)],
        ));
        exps.push(exp(
            &format!("vary_k/uniform/sort/k{k}"),
            &[("sim_time_ms", 1.1)],
        ));
        exps.push(exp(
            &format!("vary_k/uniform/delegate-select/k{k}"),
            &[("sim_time_ms", 0.05), ("sim_global_bytes", 1e5)],
        ));
    }
    for (name, _) in bench::harness::distributions() {
        exps.push(exp(
            &format!("dist/{name}/bitonic/k32"),
            &[("sim_time_ms", 0.125)],
        ));
    }
    exps.push(exp("dist/uniform/per-thread/k32", &[("sim_time_ms", 0.2)]));
    exps.push(exp(
        "dist/increasing/per-thread/k32",
        &[("sim_time_ms", 0.4)],
    ));
    // every cell must carry static predictions bit-matching the
    // measured coalescing/conflict metrics (claim 8)
    for e in &mut exps {
        for (m, v) in [
            ("sim_sectors_per_access", 0.125),
            ("sim_static_sectors_per_access", 0.125),
            ("sim_conflict_degree", 1.0),
            ("sim_static_conflict_degree", 1.0),
        ] {
            e.metrics.insert(m.to_string(), v);
        }
    }
    report("topk", exps)
}

#[test]
fn satisfied_claims_pass() {
    let findings = check_claims(&claim_clean_topk());
    assert!(
        findings.iter().all(|f| f.severity != Severity::Fail),
        "{findings:?}"
    );
}

#[test]
fn static_prediction_drift_fails_claims() {
    // a single cell whose static prediction differs from the measured
    // value by one ulp must fail claim 8
    let mut r = claim_clean_topk();
    let e = &mut r.experiments[0];
    let drifted = f64::from_bits(0.125f64.to_bits() + 1);
    e.metrics
        .insert("sim_static_sectors_per_access".to_string(), drifted);
    let findings = check_claims(&r);
    assert!(
        findings
            .iter()
            .any(|f| f.severity == Severity::Fail && f.message.contains("static prediction")),
        "{findings:?}"
    );

    // a cell missing the static metrics entirely must also fail
    let mut r = claim_clean_topk();
    r.experiments[0]
        .metrics
        .remove("sim_static_conflict_degree");
    let findings = check_claims(&r);
    assert!(
        findings.iter().any(|f| f.severity == Severity::Fail),
        "{findings:?}"
    );
}

#[test]
fn violated_delegate_traffic_claim_fails_at_large_scale() {
    // blow the 0.25x traffic budget at k=16; at 2^16 that only warns...
    let mut r = claim_clean_topk();
    for e in &mut r.experiments {
        if e.id == "vary_k/uniform/delegate-select/k16" {
            e.metrics.insert("sim_global_bytes".to_string(), 0.5e6);
        }
    }
    let findings = check_claims(&r);
    assert!(
        findings
            .iter()
            .any(|f| f.severity == Severity::Warn && f.message.contains("delegate traffic")),
        "{findings:?}"
    );
    assert!(findings.iter().all(|f| f.severity != Severity::Fail));

    // ...but at 2^20 the same report fails the gate
    r.scale = Scale::new(20);
    let findings = check_claims(&r);
    assert!(
        findings.iter().any(|f| f.severity == Severity::Fail
            && f.message.contains("delegate select")
            && f.message.contains("k16")),
        "{findings:?}"
    );
}

#[test]
fn violated_bitonic_vs_sort_claim_fails() {
    let mut r = claim_clean_topk();
    // make sort "win" at k=128: the claim must fail
    for e in &mut r.experiments {
        if e.id == "vary_k/uniform/sort/k128" {
            e.metrics.insert("sim_time_ms".to_string(), 0.05);
        }
    }
    let findings = check_claims(&r);
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("k=128")));
}

#[test]
fn violated_skew_immunity_claim_fails() {
    let mut r = claim_clean_topk();
    for e in &mut r.experiments {
        if e.id == "dist/bucket-killer/bitonic/k32" {
            e.metrics.insert("sim_time_ms".to_string(), 0.5);
        }
    }
    let findings = check_claims(&r);
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("skew-immune")));
}

#[test]
fn ungraceful_per_thread_skew_fails() {
    let mut r = claim_clean_topk();
    for e in &mut r.experiments {
        if e.id == "dist/increasing/per-thread/k32" {
            e.metrics.insert("sim_time_ms".to_string(), 2.0); // 10x uniform
        }
    }
    let findings = check_claims(&r);
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("per-thread")));
}

#[test]
fn missing_claim_cells_fail_as_unverifiable() {
    let r = report("topk", vec![exp("a/b", &[("sim_time_ms", 1.0)])]);
    let findings = check_claims(&r);
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("no such cell")));
}

#[test]
fn serve_claim_gates_speedup_at_top_load() {
    let good = report("serve", vec![exp("serve/load64", &[("sim_speedup", 3.4)])]);
    assert!(check_claims(&good)
        .iter()
        .all(|f| f.severity != Severity::Fail));
    let bad = report("serve", vec![exp("serve/load64", &[("sim_speedup", 1.1)])]);
    assert!(check_claims(&bad)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("1.10x")));
}

/// A claim-satisfying cluster report at the given scale: exact cells
/// with 8 devices well under half the single-device time, plus a
/// compliant availability sweep (r >= 2 completes everything over
/// failovers, r = 1 surfaces the loss).
fn claim_clean_cluster(log2n: u32) -> BenchReport {
    let mut exps = Vec::new();
    for policy in ["range", "hash", "round-robin"] {
        for (devices, ms) in [(1, 10.0), (2, 5.2), (4, 2.8), (8, 1.6)] {
            exps.push(exp(
                &format!("cluster/{policy}/dev{devices}"),
                &[("sim_time_ms", ms), ("sim_exact", 1.0)],
            ));
        }
    }
    for (r_factor, frac, failovers) in [(1, 2.0 / 3.0, 0.0), (2, 1.0, 5.0), (3, 1.0, 5.0)] {
        exps.push(exp(
            &format!("cluster/avail/r{r_factor}"),
            &[
                ("sim_exact", 1.0),
                ("sim_completed_frac", frac),
                ("sim_failovers", failovers),
            ],
        ));
    }
    let mut r = report("cluster", exps);
    r.scale = Scale::new(log2n);
    r
}

#[test]
fn cluster_availability_claim_gates_completion_and_loudness() {
    let good = claim_clean_cluster(22);
    assert!(
        check_claims(&good)
            .iter()
            .all(|f| f.severity != Severity::Fail),
        "{:?}",
        check_claims(&good)
    );
    // r >= 2 losing even one query to the device loss: fail
    let mut dropped = claim_clean_cluster(22);
    for e in &mut dropped.experiments {
        if e.id == "cluster/avail/r2" {
            e.metrics.insert("sim_completed_frac".to_string(), 0.9);
        }
    }
    assert!(check_claims(&dropped)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("permanent device loss")));
    // r >= 2 completing without any failover means the scenario never
    // exercised replicated serving: fail
    let mut idle = claim_clean_cluster(22);
    for e in &mut idle.experiments {
        if e.id == "cluster/avail/r3" {
            e.metrics.insert("sim_failovers".to_string(), 0.0);
        }
    }
    assert!(check_claims(&idle)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("failover")));
    // r = 1 reporting full completion hides the loss: fail
    let mut hidden = claim_clean_cluster(22);
    for e in &mut hidden.experiments {
        if e.id == "cluster/avail/r1" {
            e.metrics.insert("sim_completed_frac".to_string(), 1.0);
        }
    }
    assert!(check_claims(&hidden)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("silently hidden")));
    // a missing availability cell is unverifiable: fail
    let mut missing = claim_clean_cluster(22);
    missing.experiments.retain(|e| e.id != "cluster/avail/r2");
    assert!(check_claims(&missing)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("cluster/avail/r2")));
}

#[test]
fn cluster_exactness_claim_gates_every_cell() {
    let good = claim_clean_cluster(22);
    assert!(
        check_claims(&good)
            .iter()
            .all(|f| f.severity != Severity::Fail),
        "{:?}",
        check_claims(&good)
    );
    // one inexact cell fails
    let mut bad = claim_clean_cluster(22);
    bad.experiments[5]
        .metrics
        .insert("sim_exact".to_string(), 0.0);
    let id = bad.experiments[5].id.clone();
    assert!(check_claims(&bad)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains(&id)));
    // a cell lacking the exactness column is unverifiable -> fail
    let mut missing = claim_clean_cluster(22);
    missing.experiments[2].metrics.remove("sim_exact");
    assert!(check_claims(&missing)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("sim_exact")));
}

#[test]
fn cluster_scaling_claim_gates_at_full_scale_only() {
    // violated speedup at full scale: fail
    let mut bad = claim_clean_cluster(22);
    for e in &mut bad.experiments {
        if e.id == "cluster/hash/dev8" {
            e.metrics.insert("sim_time_ms".to_string(), 6.0); // > 0.5 * 10
        }
    }
    assert!(check_claims(&bad)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("0.5x")));
    // the same report at the CI small scale only warns
    let mut small = bad.clone();
    small.scale = Scale::new(16);
    let findings = check_claims(&small);
    assert!(
        findings.iter().all(|f| f.severity != Severity::Fail),
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("log2n >= 22")));
}

#[test]
fn end_to_end_gate_on_real_harness_reports() {
    // tiny-scale harness runs are deterministic: self-diff passes, and an
    // injected regression in any sim metric fails
    let base = bench::harness::run_topk_suite(10, "test");
    let clean = diff_reports(&base, &bench::harness::run_topk_suite(10, "test"), &cfg());
    assert!(!clean.failed(), "{}", clean.render());

    let mut regressed = base.clone();
    let cell = regressed
        .experiments
        .iter_mut()
        .find(|e| e.id == "vary_k/uniform/bitonic/k32")
        .expect("cell exists");
    *cell.metrics.get_mut("sim_time_ms").unwrap() *= 1.5;
    let out = diff_reports(&base, &regressed, &cfg());
    assert!(out.failed());
    assert!(fails(&out)[0].contains("vary_k/uniform/bitonic/k32"));
}

/// A claim-satisfying cpu report at the given scale: every algorithm's
/// best multi-thread cell beats its single-thread cell.
fn claim_clean_cpu(log2n: u32) -> BenchReport {
    let mut exps = Vec::new();
    for alg in topk::TopKAlgorithm::all() {
        for (threads, ms) in [(1, 100.0), (2, 60.0), (4, 40.0), (8, 30.0)] {
            exps.push(exp(
                &format!("cpu/{}/t{threads}", alg.name()),
                &[("host_wall_ms", ms), ("host_threads", threads as f64)],
            ));
        }
    }
    let mut r = report("cpu", exps);
    r.scale = Scale::new(log2n);
    r
}

#[test]
fn cpu_scaling_claim_gates_at_real_scale_only() {
    let good = claim_clean_cpu(20);
    assert!(
        check_claims(&good)
            .iter()
            .all(|f| f.severity != Severity::Fail),
        "{:?}",
        check_claims(&good)
    );
    // threads that never pay for themselves: fail at 2^20...
    let mut bad = claim_clean_cpu(20);
    for e in &mut bad.experiments {
        if e.id.starts_with("cpu/sort/t") && !e.id.ends_with("/t1") {
            e.metrics.insert("host_wall_ms".to_string(), 150.0);
        }
    }
    let findings = check_claims(&bad);
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("cpu backend scaling (sort)")));
    // ...but only warn at the CI small scale
    let mut small = bad.clone();
    small.scale = Scale::new(16);
    let findings = check_claims(&small);
    assert!(
        findings.iter().all(|f| f.severity != Severity::Fail),
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("log2n >= 20")));
    // a fast algorithm below the spawn-amortization floor only warns,
    // even at full scale (threads cannot pay for a ~2 ms scan)
    let mut fast = claim_clean_cpu(20);
    for e in &mut fast.experiments {
        if e.id.starts_with("cpu/per-thread/t") {
            let ms = if e.id.ends_with("/t1") { 2.0 } else { 3.0 };
            e.metrics.insert("host_wall_ms".to_string(), ms);
        }
    }
    let findings = check_claims(&fast);
    assert!(
        findings.iter().all(|f| f.severity != Severity::Fail),
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("floor")));
    // a sweep with no multi-thread cells is unverifiable -> fail
    let mut lone = claim_clean_cpu(20);
    lone.experiments.retain(|e| e.id.ends_with("/t1"));
    assert!(check_claims(&lone)
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("multi-thread")));
}
