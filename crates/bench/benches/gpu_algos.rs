//! Criterion benchmarks of end-to-end simulated algorithm runs (host
//! wall-clock of the simulation; the *simulated* device times are what
//! the fig* binaries report).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{Distribution, Uniform};
use simt::Device;
use topk::{TopKAlgorithm, TopKRequest};

fn bench_gpu_algorithms(c: &mut Criterion) {
    let n = 1 << 16;
    let data: Vec<f32> = Uniform.generate(n, 3);

    let mut g = c.benchmark_group("gpu_algos_simulation");
    g.sample_size(10);
    for alg in TopKAlgorithm::all() {
        g.bench_function(alg.name(), |b| {
            b.iter(|| {
                let dev = Device::titan_x();
                let input = dev.upload(&data);
                TopKRequest::largest(32)
                    .with_alg(alg)
                    .run(&dev, &input)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gpu_algorithms);
criterion_main!(benches);
