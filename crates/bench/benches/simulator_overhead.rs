//! Criterion benchmarks of the simulator itself: how fast the
//! warp-lockstep replay processes tracked accesses, and what the bulk
//! path costs by comparison. (Host wall-clock of the simulation, not
//! simulated time.)

use criterion::{criterion_group, criterion_main, Criterion};
use simt::{BlockCtx, Device, DeviceSpec, GpuBuffer, Kernel};

struct TrackedStream {
    data: GpuBuffer<f32>,
}

impl Kernel for TrackedStream {
    fn name(&self) -> &'static str {
        "tracked_stream"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        self.data.len() / (16 * 256)
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let base = blk.block_idx * 16 * 256;
        let sh = blk.alloc_shared::<f32>(16 * 256);
        blk.step(|l| {
            let t = l.tid();
            for j in 0..16 {
                let v = l.gread(&self.data, base + t + j * 256);
                l.swrite(sh, t + j * 256, v);
            }
        });
    }
}

struct BulkStream {
    data: GpuBuffer<f32>,
}

impl Kernel for BulkStream {
    fn name(&self) -> &'static str {
        "bulk_stream"
    }
    fn block_dim(&self) -> usize {
        256
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        blk.bulk_global_read((self.data.len() * 4) as u64);
        blk.bulk_shared((self.data.len() * 4) as u64);
    }
}

fn bench_simulator(c: &mut Criterion) {
    let n = 1 << 16;
    let dev = Device::new(DeviceSpec::titan_x_maxwell());
    let data = dev.alloc::<f32>(n);

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(2 * n as u64));
    g.bench_function("tracked_accesses", |b| {
        b.iter(|| dev.launch(&TrackedStream { data: data.clone() }).unwrap())
    });
    g.bench_function("bulk_accounting", |b| {
        b.iter(|| dev.launch(&BulkStream { data: data.clone() }).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
