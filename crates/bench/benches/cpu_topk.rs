//! Criterion wall-clock benchmarks of the CPU top-k baselines
//! (the real-measurement half of Figure 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Distribution, Increasing, Uniform};
use topk_cpu::{CpuBitonic, CpuTopK, HandPq, StlPq};

fn bench_cpu_topk(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 32;
    let uniform: Vec<f32> = Uniform.generate(n, 1);
    let sorted: Vec<f32> = Increasing.generate(n, 1);

    let mut g = c.benchmark_group("cpu_topk");
    g.sample_size(10);
    for (dist_name, data) in [("uniform", &uniform), ("increasing", &sorted)] {
        for alg in [&StlPq as &dyn CpuTopK<f32>, &HandPq, &CpuBitonic::default()] {
            g.bench_with_input(BenchmarkId::new(alg.name(), dist_name), data, |b, data| {
                b.iter(|| alg.topk(std::hint::black_box(data), k, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_cpu_topk);
criterion_main!(benches);
