//! Criterion benchmarks of the host sorting-network primitives — the
//! building blocks shared by the GPU kernels and the CPU implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{Distribution, Uniform};
use sortnet::{bitonic_topk_host, local_sort, merge_halve, rebuild};

fn bench_sortnet(c: &mut Criterion) {
    let n = 1 << 14;
    let k = 32;
    let base: Vec<u32> = Uniform.generate(n, 2);

    let mut g = c.benchmark_group("sortnet");
    g.sample_size(20);
    g.bench_function("local_sort_k32", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| local_sort(&mut v, k),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut sorted = base.clone();
    local_sort(&mut sorted, k);
    g.bench_function("merge_halve_k32", |b| {
        let mut out = vec![0u32; n / 2];
        b.iter(|| merge_halve(std::hint::black_box(&sorted), k, &mut out))
    });
    let mut bitonic_runs = vec![0u32; n / 2];
    merge_halve(&sorted, k, &mut bitonic_runs);
    g.bench_function("rebuild_k32", |b| {
        b.iter_batched(
            || bitonic_runs.clone(),
            |mut v| rebuild(&mut v, k),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("bitonic_topk_host_k32", |b| {
        b.iter(|| bitonic_topk_host(std::hint::black_box(&base), k))
    });
    g.finish();
}

criterion_group!(benches, bench_sortnet);
criterion_main!(benches);
