//! ASCII rendering of sorting networks — the paper's Figure 3/5 style
//! comparator diagrams, generated from the same step schedules the
//! kernels execute.
//!
//! ```text
//! wire 0 ─●──●───●──  …
//!         │  │   │
//! wire 1 ─●──┼───●──
//! ```
//!
//! Useful in docs and for eyeballing a schedule while debugging index
//! arithmetic: every comparator column in the picture is exactly one
//! compare-exchange the network performs.

use crate::network::Step;

/// Renders a step schedule over `n` wires as an ASCII comparator diagram.
///
/// Each step becomes a group of columns (parallel comparators that would
/// collide visually are staggered into separate columns). `▲`/`▼` mark
/// the direction: the arrow points at the wire that receives the larger
/// element.
pub fn render(n: usize, steps: &[Step]) -> String {
    assert!(n.is_power_of_two(), "diagram needs a power-of-two width");
    // each column is a vector of (lo, hi, asc) comparators that don't
    // overlap vertically
    let mut columns: Vec<Vec<(usize, usize, bool)>> = Vec::new();
    for step in steps {
        let mut pending: Vec<(usize, usize, bool)> = (0..n)
            .filter(|&i| step.partner(i) > i && step.partner(i) < n)
            .map(|i| (i, step.partner(i), step.ascending(i)))
            .collect();
        while !pending.is_empty() {
            let mut col: Vec<(usize, usize, bool)> = Vec::new();
            let mut rest = Vec::new();
            for c in pending {
                if col.iter().all(|&(lo, hi, _)| c.0 > hi || c.1 < lo) {
                    col.push(c);
                } else {
                    rest.push(c);
                }
            }
            columns.push(col);
            pending = rest;
        }
        columns.push(Vec::new()); // step separator
    }

    let mut rows: Vec<String> = (0..n).map(|i| format!("w{i:<2} ─")).collect();
    for col in &columns {
        if col.is_empty() {
            for row in rows.iter_mut() {
                row.push_str("  ");
            }
            continue;
        }
        for (wire, row) in rows.iter_mut().enumerate() {
            let ch = col
                .iter()
                .find_map(|&(lo, hi, asc)| {
                    if wire == lo {
                        Some(if asc { '●' } else { '▲' })
                    } else if wire == hi {
                        Some(if asc { '▼' } else { '●' })
                    } else if wire > lo && wire < hi {
                        Some('│')
                    } else {
                        None
                    }
                })
                .unwrap_or('─');
            row.push(ch);
            row.push('─');
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{full_sort_steps, local_sort_steps};

    #[test]
    fn renders_every_comparator_once() {
        let steps = local_sort_steps(4);
        let n = 8;
        let diagram = render(n, &steps);
        // comparators = steps × n/2 = 3 × 4 = 12 endpoints-pairs; count
        // direction glyphs: each comparator contributes exactly one ● and
        // one arrow
        let dots = diagram.matches('●').count();
        let arrows = diagram.matches('▲').count() + diagram.matches('▼').count();
        assert_eq!(dots, 12);
        assert_eq!(arrows, 12);
    }

    #[test]
    fn has_one_row_per_wire() {
        let diagram = render(16, &full_sort_steps(16));
        assert_eq!(diagram.lines().count(), 16);
        assert!(diagram.starts_with("w0 "));
    }

    #[test]
    fn rows_have_equal_width() {
        let diagram = render(8, &local_sort_steps(8));
        let widths: Vec<usize> = diagram.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_odd_width() {
        let _ = render(6, &local_sort_steps(2));
    }
}
