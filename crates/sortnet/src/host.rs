//! Host-side reference implementations of the three bitonic top-k
//! operators and of full bitonic sort.
//!
//! These run on plain slices and serve three purposes: they are the
//! oracles the simulated GPU kernels are tested against, the building
//! blocks of the CPU implementation (Appendix C), and an executable
//! specification of the network schedules in [`crate::network`].

use crate::network::{full_sort_steps, local_sort_steps, rebuild_steps, Step};
use datagen::TopKItem;

/// Applies one network step to the whole slice.
///
/// Element `i` (with `i < i ^ j`) compare-exchanges with its partner; the
/// pair ends up ordered according to the phase's direction rule.
pub fn apply_step<T: TopKItem>(data: &mut [T], step: Step) {
    let n = data.len();
    for i in 0..n {
        let p = step.partner(i);
        if p > i && p < n {
            let asc = step.ascending(i);
            // ascending: smaller element to the lower index
            if asc == data[p].item_lt(&data[i]) {
                data.swap(i, p);
            }
        }
    }
}

/// **Local sort** (Section 3.2, operator 1): sorts aligned runs of length
/// `k`, alternating ascending (even run) / descending (odd run).
///
/// # Panics
/// If `data.len()` or `k` is not a power of two, or `k > data.len()`.
pub fn local_sort<T: TopKItem>(data: &mut [T], k: usize) {
    assert!(crate::is_pow2(data.len()), "length must be a power of two");
    assert!(k <= data.len(), "k={k} exceeds data length {}", data.len());
    for step in local_sort_steps(k) {
        apply_step(data, step);
    }
}

/// **Merge** (Section 3.2, operator 2): for each aligned `2k` window,
/// writes the pairwise maxima of its two `k`-halves to `out`, halving the
/// data. The key insight of the paper: each output window of `k` elements
/// contains that window's top-k and is itself a bitonic sequence.
///
/// `out` must have exactly `data.len() / 2` elements.
pub fn merge_halve<T: TopKItem>(data: &[T], k: usize, out: &mut [T]) {
    let n = data.len();
    assert!(
        n.is_multiple_of(2 * k),
        "length {n} must be a multiple of 2k={}",
        2 * k
    );
    assert_eq!(out.len(), n / 2);
    for w in 0..n / (2 * k) {
        for j in 0..k {
            let a = data[2 * k * w + j];
            let b = data[2 * k * w + j + k];
            out[k * w + j] = if a.item_lt(&b) { b } else { a };
        }
    }
}

/// **Rebuild** (Section 3.2, operator 3 / Algorithm 4): turns bitonic runs
/// of length `k` back into sorted runs (alternating directions) in
/// `log k` steps.
pub fn rebuild<T: TopKItem>(data: &mut [T], k: usize) {
    assert!(
        data.len().is_multiple_of(k),
        "length must be a multiple of k"
    );
    for step in rebuild_steps(k) {
        apply_step(data, step);
    }
}

/// Full bitonic sort (reference; ascending if `ascending`).
pub fn bitonic_sort<T: TopKItem>(data: &mut [T], ascending: bool) {
    assert!(crate::is_pow2(data.len()), "length must be a power of two");
    for step in full_sort_steps(data.len()) {
        apply_step(data, step);
    }
    if !ascending {
        data.reverse();
    }
}

/// The complete bitonic top-k on the host (Section 3.2): local sort, then
/// alternating merge/rebuild until `k` elements remain.
///
/// Returns the largest `k` items in descending key order. Handles arbitrary
/// `n ≥ 1` and `k ≥ 1` by padding to a power of two with `MIN` sentinels
/// and rounding `k` up to a power of two internally (extra results are
/// trimmed, exactly like the GPU implementation).
pub fn bitonic_topk_host<T: TopKItem>(data: &[T], k: usize) -> Vec<T> {
    assert!(k >= 1, "k must be at least 1");
    let k_eff = crate::next_pow2(k.min(data.len()));
    let padded = crate::next_pow2(data.len()).max(k_eff);
    let mut buf: Vec<T> = Vec::with_capacity(padded);
    buf.extend_from_slice(data);
    buf.resize(padded, T::min_sentinel());

    local_sort(&mut buf, k_eff);
    while buf.len() > k_eff {
        let mut half = vec![T::min_sentinel(); buf.len() / 2];
        merge_halve(&buf, k_eff, &mut half);
        buf = half;
        rebuild(&mut buf, k_eff);
    }
    // run 0 is ascending; emit descending and trim to the requested k
    buf.reverse();
    buf.truncate(k.min(data.len()));
    buf
}

/// True if `data` is a bitonic sequence (ascending then descending, under
/// rotation). Used by tests to check the merge operator's output invariant.
pub fn is_bitonic<T: TopKItem>(data: &[T]) -> bool {
    let n = data.len();
    if n <= 2 {
        return true;
    }
    // count direction changes around the cycle; bitonic ⇔ at most 2
    let mut changes = 0;
    let mut last_dir = 0i8;
    for i in 0..n {
        let a = data[i].key_bits();
        let b = data[(i + 1) % n].key_bits();
        let dir = match a.cmp(&b) {
            std::cmp::Ordering::Less => 1i8,
            std::cmp::Ordering::Greater => -1,
            std::cmp::Ordering::Equal => 0,
        };
        if dir != 0 {
            if last_dir != 0 && dir != last_dir {
                changes += 1;
            }
            last_dir = dir;
        }
    }
    changes <= 2
}

/// True if `data` consists of sorted runs of length `k`, ascending on even
/// run indices and descending on odd ones — the post-condition of
/// [`local_sort`] and [`rebuild`].
pub fn runs_sorted_alternating<T: TopKItem>(data: &[T], k: usize) -> bool {
    data.chunks(k).enumerate().all(|(r, run)| {
        run.windows(2).all(|w| {
            if r % 2 == 0 {
                w[0].key_bits() <= w[1].key_bits()
            } else {
                w[0].key_bits() >= w[1].key_bits()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Kv, Uniform};

    #[test]
    fn bitonic_sort_sorts() {
        let mut v: Vec<u32> = Uniform.generate(256, 11);
        bitonic_sort(&mut v, true);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        bitonic_sort(&mut v, false);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn local_sort_produces_alternating_runs() {
        for k in [1usize, 2, 4, 8, 32] {
            let mut v: Vec<f32> = Uniform.generate(128, 5);
            local_sort(&mut v, k);
            assert!(runs_sorted_alternating(&v, k), "k={k}");
        }
    }

    #[test]
    fn local_sort_preserves_multiset() {
        let mut v: Vec<u32> = Uniform.generate(64, 3);
        let mut expect = v.clone();
        local_sort(&mut v, 8);
        let mut got = v.clone();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_keeps_window_topk_and_bitonicity() {
        let k = 8;
        let mut v: Vec<u32> = Uniform.generate(64, 7);
        local_sort(&mut v, k);
        let mut out = vec![0u32; 32];
        merge_halve(&v, k, &mut out);
        for w in 0..v.len() / (2 * k) {
            let window = &v[2 * k * w..2 * k * (w + 1)];
            let merged = &out[k * w..k * (w + 1)];
            // merged must equal the window's top-k as a multiset
            let mut expect = window.to_vec();
            expect.sort_unstable_by(|a, b| b.cmp(a));
            expect.truncate(k);
            let mut got = merged.to_vec();
            got.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(got, expect, "window {w}");
            assert!(is_bitonic(merged), "window {w} not bitonic: {merged:?}");
        }
    }

    #[test]
    fn rebuild_sorts_bitonic_runs() {
        let k = 8;
        let mut v: Vec<u32> = Uniform.generate(64, 9);
        local_sort(&mut v, k);
        let mut half = vec![0u32; 32];
        merge_halve(&v, k, &mut half);
        rebuild(&mut half, k);
        assert!(runs_sorted_alternating(&half, k));
    }

    #[test]
    fn host_topk_matches_reference_across_k() {
        let data: Vec<f32> = Uniform.generate(1 << 12, 21);
        for k in [1usize, 2, 3, 5, 8, 16, 100, 256] {
            let got = bitonic_topk_host(&data, k);
            let expect = reference_topk(&data, k);
            assert_eq!(got.len(), expect.len(), "k={k}");
            // compare keys (ties may permute identical keys)
            let gb: Vec<u32> = got.iter().map(|x| x.key_bits()).collect();
            let eb: Vec<u32> = expect
                .iter()
                .map(|x| datagen::SortKey::sort_bits(*x))
                .collect();
            assert_eq!(gb, eb, "k={k}");
        }
    }

    #[test]
    fn host_topk_non_pow2_input() {
        let data: Vec<u32> = Uniform.generate(1000, 13);
        let got = bitonic_topk_host(&data, 10);
        let expect = reference_topk(&data, 10);
        assert_eq!(got, expect);
    }

    #[test]
    fn host_topk_k_exceeds_n() {
        let data = vec![5u32, 1, 9];
        let got = bitonic_topk_host(&data, 10);
        assert_eq!(got, vec![9, 5, 1]);
    }

    #[test]
    fn host_topk_all_duplicates() {
        let data = vec![7u32; 100];
        assert_eq!(bitonic_topk_host(&data, 5), vec![7u32; 5]);
    }

    #[test]
    fn host_topk_kv_carries_values() {
        // distinct keys so the winning values are deterministic
        let data: Vec<Kv<u32>> = (0..256u32).map(|i| Kv::new(i * 7 % 509, i)).collect();
        let got = bitonic_topk_host(&data, 4);
        let mut expect = data.clone();
        expect.sort_unstable_by_key(|kv| std::cmp::Reverse(kv.key));
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_eq!(g.key, e.key);
            assert_eq!(g.value, e.value);
        }
    }

    #[test]
    fn host_topk_k_equals_n() {
        let data: Vec<u32> = Uniform.generate(64, 17);
        let got = bitonic_topk_host(&data, 64);
        let expect = reference_topk(&data, 64);
        assert_eq!(got, expect);
    }

    #[test]
    fn is_bitonic_accepts_and_rejects() {
        assert!(is_bitonic(&[1u32, 3, 7, 5, 2]));
        assert!(is_bitonic(&[5u32, 2, 1, 3, 7])); // rotation
        assert!(is_bitonic(&[1u32, 1, 1]));
        assert!(!is_bitonic(&[1u32, 5, 2, 6, 3]));
    }

    #[test]
    fn negative_float_topk() {
        let data = vec![-5.0f32, -1.0, -9.0, -2.5, -0.5];
        let got = bitonic_topk_host(&data, 2);
        assert_eq!(got, vec![-0.5, -1.0]);
    }
}
