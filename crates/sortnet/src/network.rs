//! Step schedules and index arithmetic for the bitonic network.
//!
//! A [`Step`] is one massively parallel round of compare-exchanges at a
//! fixed distance. The schedules here are pure descriptions — both the
//! host reference operators ([`crate::host`]) and the simulated GPU
//! kernels iterate them, so a single source of truth defines the network.

/// One compare-exchange round of the network.
///
/// Every element `i` with `i & j == 0`… more precisely, every element pairs
/// with `i ^ j`; the lower-index element of each pair drives the exchange.
/// `run` is the phase's run length: element `i` sorts ascending iff
/// `(i & run) == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Comparison distance (a power of two).
    pub j: usize,
    /// Run length of the enclosing phase (a power of two, > `j`).
    pub run: usize,
}

impl Step {
    /// The partner element of `i` in this step.
    #[inline]
    pub fn partner(&self, i: usize) -> usize {
        i ^ self.j
    }

    /// Whether element `i` belongs to an ascending run in this phase.
    #[inline]
    pub fn ascending(&self, i: usize) -> bool {
        (i & self.run) == 0
    }
}

/// Partner index at distance `j` (XOR pairing).
#[inline]
pub fn partner(i: usize, j: usize) -> usize {
    i ^ j
}

/// Direction rule: element `i` sorts ascending in phase `run` iff the
/// `run` bit of `i` is clear (even run index).
#[inline]
pub fn ascending_at(i: usize, run: usize) -> bool {
    (i & run) == 0
}

/// The steps of the **local sort** operator (Algorithm 2): from unsorted
/// data to sorted runs of length `k`, alternating ascending/descending.
///
/// Phases `run = 2, 4, …, k`; phase `run` has steps `j = run/2, …, 1`.
/// Total `log k · (log k + 1) / 2` steps.
///
/// # Panics
/// If `k` is not a power of two or is zero.
pub fn local_sort_steps(k: usize) -> Vec<Step> {
    assert!(crate::is_pow2(k), "k must be a power of two, got {k}");
    let mut steps = Vec::new();
    let mut run = 2;
    while run <= k {
        let mut j = run >> 1;
        while j > 0 {
            steps.push(Step { j, run });
            j >>= 1;
        }
        run <<= 1;
    }
    steps
}

/// The steps of the **rebuild** operator (Algorithm 4): from bitonic runs
/// of length `k` to sorted runs of length `k` (alternating directions).
///
/// A single phase `run = k` with steps `j = k/2, …, 1` — `log k` steps,
/// exploiting that the input already satisfies the bitonic property.
///
/// # Panics
/// If `k` is not a power of two or is zero.
pub fn rebuild_steps(k: usize) -> Vec<Step> {
    assert!(crate::is_pow2(k), "k must be a power of two, got {k}");
    let mut steps = Vec::new();
    let mut j = k >> 1;
    while j > 0 {
        steps.push(Step { j, run: k });
        j >>= 1;
    }
    steps
}

/// The steps of a full bitonic **sort** of `n` elements (reference).
pub fn full_sort_steps(n: usize) -> Vec<Step> {
    assert!(crate::is_pow2(n), "n must be a power of two, got {n}");
    let mut steps = Vec::new();
    let mut run = 2;
    while run <= n {
        let mut j = run >> 1;
        while j > 0 {
            steps.push(Step { j, run });
            j >>= 1;
        }
        run <<= 1;
    }
    steps
}

/// Number of compare-exchange operations one step performs on `n` elements.
#[inline]
pub fn comparisons_per_step(n: usize) -> usize {
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_is_involution() {
        for j in [1usize, 2, 4, 64] {
            for i in 0..256 {
                assert_eq!(partner(partner(i, j), j), i);
            }
        }
    }

    #[test]
    fn partner_pairs_each_element_once() {
        let j = 4;
        let mut seen = [false; 32];
        for i in 0..32 {
            if i & j == 0 {
                let p = partner(i, j);
                assert!(!seen[i] && !seen[p]);
                seen[i] = true;
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ascending_alternates_by_run() {
        // run=4: elements 0..4 ascending, 4..8 descending, 8..12 ascending…
        for i in 0..16 {
            assert_eq!(ascending_at(i, 4), (i / 4) % 2 == 0);
        }
    }

    #[test]
    fn local_sort_step_count() {
        // log k (log k + 1) / 2 steps
        for k in [2usize, 4, 8, 64, 256] {
            let lg = crate::log2(k) as usize;
            assert_eq!(local_sort_steps(k).len(), lg * (lg + 1) / 2);
        }
        assert!(local_sort_steps(1).is_empty());
    }

    #[test]
    fn rebuild_step_count_and_shape() {
        let steps = rebuild_steps(8);
        assert_eq!(
            steps,
            vec![
                Step { j: 4, run: 8 },
                Step { j: 2, run: 8 },
                Step { j: 1, run: 8 }
            ]
        );
        assert!(rebuild_steps(1).is_empty());
    }

    #[test]
    fn local_sort_steps_order() {
        let steps = local_sort_steps(8);
        let expect = vec![
            Step { j: 1, run: 2 },
            Step { j: 2, run: 4 },
            Step { j: 1, run: 4 },
            Step { j: 4, run: 8 },
            Step { j: 2, run: 8 },
            Step { j: 1, run: 8 },
        ];
        assert_eq!(steps, expect);
    }

    #[test]
    fn full_sort_has_log_n_phases() {
        let steps = full_sort_steps(16);
        // 1 + 2 + 3 + 4 = 10 steps
        assert_eq!(steps.len(), 10);
        assert_eq!(steps.last().unwrap().run, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn local_sort_steps_rejects_non_pow2() {
        local_sort_steps(6);
    }
}
