//! Index machinery for the Section 4.3 shared-memory optimizations.
//!
//! * [`StepGroupPlan`] — the *combined steps* optimization: consecutive
//!   network steps are grouped so one thread loads a small element set
//!   into registers, applies all the group's compare-exchanges locally,
//!   and writes back once, halving (or better) shared-memory traffic.
//! * [`PadMap`] — the *padding* optimization: one unused word per `banks`
//!   words shifts addresses so contiguous per-thread chunks land on
//!   distinct banks.
//! * [`chunk_rotation`] — the *chunk permutation* optimization: threads
//!   visit their chunks in rotated order so simultaneous accesses within
//!   a warp hit distinct banks.
//!
//! # Why arbitrary step groups are legal
//!
//! Network distances are powers of two, so a step at distance `j = 2^b`
//! pairs indices differing exactly in bit `b`. A group of steps with
//! distance-bit set `P` therefore only ever moves data within the *closed
//! set* of indices that agree on all bits outside `P` — a set of `2^|P|`
//! elements. Any consecutive run of steps whose union of distance bits
//! has `|P| ≤ log2(B)` can be executed privately by one thread holding
//! `2^|P| ≤ B` elements.

use crate::network::Step;

/// A group of consecutive network steps executed privately per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedStep {
    /// The steps of the group, in network order.
    pub steps: Vec<Step>,
    /// Distance-bit positions of the group, ascending. `free_bits[i]` is
    /// the array-index bit that bit `i` of the local element counter `m`
    /// controls.
    pub free_bits: Vec<u32>,
}

impl CombinedStep {
    /// Elements each thread holds for this group (`2^|free_bits|`).
    pub fn elems_per_set(&self) -> usize {
        1 << self.free_bits.len()
    }

    /// Number of disjoint closed sets in an array of `len` elements.
    pub fn num_sets(&self, len: usize) -> usize {
        len / self.elems_per_set()
    }

    /// The array index of local element `m` of closed set `set_id`:
    /// bits of `m` go to the free positions, bits of `set_id` fill the
    /// remaining positions from least significant upward.
    pub fn element(&self, set_id: usize, m: usize) -> usize {
        debug_assert!(m < self.elems_per_set());
        let mut idx = 0usize;
        let mut set_bits = set_id;
        let mut bit_pos = 0u32;
        let mut free_iter = 0usize;
        let mut m_rest = m;
        // walk bit positions low to high, consuming free bits for `m` and
        // other positions for `set_id`
        while set_bits != 0 || m_rest != 0 || free_iter < self.free_bits.len() {
            if free_iter < self.free_bits.len() && self.free_bits[free_iter] == bit_pos {
                if m_rest & 1 != 0 {
                    idx |= 1 << bit_pos;
                }
                m_rest >>= 1;
                free_iter += 1;
            } else {
                if set_bits & 1 != 0 {
                    idx |= 1 << bit_pos;
                }
                set_bits >>= 1;
            }
            bit_pos += 1;
            if bit_pos >= usize::BITS {
                break;
            }
        }
        idx
    }

    /// For a step at distance `j` (which must be one of the group's
    /// distances), the local-counter bit that flips between partners.
    pub fn local_bit_for(&self, j: usize) -> u32 {
        let b = j.trailing_zeros();
        self.free_bits
            .iter()
            .position(|&fb| fb == b)
            .unwrap_or_else(|| panic!("distance {j} not in combined step {:?}", self.free_bits))
            as u32
    }
}

/// Greedy plan grouping consecutive steps under an element budget.
#[derive(Debug, Clone)]
pub struct StepGroupPlan {
    /// The groups, in network order.
    pub groups: Vec<CombinedStep>,
}

impl StepGroupPlan {
    /// Groups `steps` greedily: a step joins the current group unless the
    /// union of distance bits would exceed `log2(max_elems)` positions.
    ///
    /// # Panics
    /// If `max_elems < 2` (a group needs at least one distance bit).
    pub fn plan(steps: &[Step], max_elems: usize) -> Self {
        assert!(max_elems >= 2, "need at least 2 elements per thread");
        let budget = crate::log2(crate::next_pow2(max_elems).min(max_elems)) as usize;
        let mut groups: Vec<CombinedStep> = Vec::new();
        let mut cur_steps: Vec<Step> = Vec::new();
        let mut cur_bits: Vec<u32> = Vec::new();

        for &s in steps {
            let b = s.j.trailing_zeros();
            let would_add = if cur_bits.contains(&b) { 0 } else { 1 };
            if !cur_steps.is_empty() && cur_bits.len() + would_add > budget {
                cur_bits.sort_unstable();
                groups.push(CombinedStep {
                    steps: std::mem::take(&mut cur_steps),
                    free_bits: std::mem::take(&mut cur_bits),
                });
            }
            if !cur_bits.contains(&b) {
                cur_bits.push(b);
            }
            cur_steps.push(s);
        }
        if !cur_steps.is_empty() {
            cur_bits.sort_unstable();
            groups.push(CombinedStep {
                steps: cur_steps,
                free_bits: cur_bits,
            });
        }
        Self { groups }
    }

    /// Total shared-memory round trips (one read + one write of the whole
    /// array per group) — the quantity the optimization minimizes.
    pub fn round_trips(&self) -> usize {
        self.groups.len()
    }
}

/// Bank-conflict padding (Section 4.3, "Breaking Conflicts with Padding").
///
/// Logical word index `i` maps to physical word `i + i / banks`: one dead
/// word is inserted after every `banks` words, so a column of a
/// `[rows × banks]` view shifts by one bank per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadMap {
    /// Number of banks (words between dead slots).
    pub banks: usize,
    /// Whether padding is applied (identity map when off).
    pub enabled: bool,
}

impl PadMap {
    /// Creates a pad map for `banks` banks, applied only when `enabled`.
    pub fn new(banks: usize, enabled: bool) -> Self {
        assert!(banks > 0);
        Self { banks, enabled }
    }

    /// Physical word index for logical index `i`.
    #[inline]
    pub fn index(&self, i: usize) -> usize {
        if self.enabled {
            i + i / self.banks
        } else {
            i
        }
    }

    /// Physical array length needed for `n` logical words.
    pub fn padded_len(&self, n: usize) -> usize {
        if self.enabled && n > 0 {
            n + (n - 1) / self.banks + 1
        } else {
            n
        }
    }
}

/// Chunk permutation (Section 4.3, "Chunk Permutation"): the rotation
/// offset for a lane visiting `num_chunks` chunks. Lane `l` starts at
/// chunk `l % num_chunks`, so at each clock the warp's lanes touch
/// different chunks (and thus different banks).
#[inline]
pub fn chunk_rotation(lane_in_warp: usize, num_chunks: usize) -> usize {
    debug_assert!(num_chunks > 0);
    lane_in_warp % num_chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{apply_step, runs_sorted_alternating};
    use crate::network::local_sort_steps;
    use datagen::{Distribution, TopKItem, Uniform};

    /// Applies a combined plan the way a kernel would: per closed set,
    /// gather, run the group's steps locally, scatter.
    fn apply_plan<T: TopKItem>(data: &mut [T], plan: &StepGroupPlan) {
        for group in &plan.groups {
            let m_count = group.elems_per_set();
            let mut local = vec![data[0]; m_count];
            for set in 0..group.num_sets(data.len()) {
                for m in 0..m_count {
                    local[m] = data[group.element(set, m)];
                }
                for &step in &group.steps {
                    let lb = group.local_bit_for(step.j);
                    for m in 0..m_count {
                        let pm = m ^ (1 << lb);
                        if pm > m {
                            let gi = group.element(set, m);
                            let asc = step.ascending(gi);
                            if asc == local[pm].item_lt(&local[m]) {
                                local.swap(m, pm);
                            }
                        }
                    }
                }
                for m in 0..m_count {
                    data[group.element(set, m)] = local[m];
                }
            }
        }
    }

    #[test]
    fn element_enumerates_closed_set() {
        let g = CombinedStep {
            steps: vec![],
            free_bits: vec![1, 3],
        };
        // set 0: indices with bits {1,3} varying, others 0
        let set0: Vec<usize> = (0..4).map(|m| g.element(0, m)).collect();
        assert_eq!(set0, vec![0b0000, 0b0010, 0b1000, 0b1010]);
        // set 1: low non-free bit (bit 0) set
        let set1: Vec<usize> = (0..4).map(|m| g.element(1, m)).collect();
        assert_eq!(set1, vec![0b0001, 0b0011, 0b1001, 0b1011]);
        // set 2: next non-free bit (bit 2)
        let set2: Vec<usize> = (0..4).map(|m| g.element(2, m)).collect();
        assert_eq!(set2, vec![0b0100, 0b0110, 0b1100, 0b1110]);
    }

    #[test]
    fn sets_partition_the_array() {
        let g = CombinedStep {
            steps: vec![],
            free_bits: vec![0, 2],
        };
        let len = 32;
        let mut seen = vec![false; len];
        for set in 0..g.num_sets(len) {
            for m in 0..g.elems_per_set() {
                let i = g.element(set, m);
                assert!(i < len);
                assert!(!seen[i], "index {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plan_groups_respect_budget() {
        let steps = local_sort_steps(256);
        for b in [2usize, 4, 8, 16] {
            let plan = StepGroupPlan::plan(&steps, b);
            let budget = crate::log2(b) as usize;
            for g in &plan.groups {
                assert!(g.free_bits.len() <= budget);
                assert!(!g.steps.is_empty());
            }
            let total: usize = plan.groups.iter().map(|g| g.steps.len()).sum();
            assert_eq!(total, steps.len());
        }
    }

    #[test]
    fn bigger_budget_fewer_round_trips() {
        let steps = local_sort_steps(256);
        let r8 = StepGroupPlan::plan(&steps, 8).round_trips();
        let r16 = StepGroupPlan::plan(&steps, 16).round_trips();
        assert!(r16 < r8, "r16={r16} r8={r8}");
    }

    #[test]
    fn combined_plan_equals_sequential_steps() {
        for k in [4usize, 16, 64] {
            for b in [4usize, 8, 16] {
                let data: Vec<u32> = Uniform.generate(256, 77);
                let steps = local_sort_steps(k);

                let mut seq = data.clone();
                for &s in &steps {
                    apply_step(&mut seq, s);
                }

                let mut comb = data.clone();
                let plan = StepGroupPlan::plan(&steps, b);
                apply_plan(&mut comb, &plan);

                assert_eq!(seq, comb, "k={k} B={b}");
                assert!(runs_sorted_alternating(&comb, k));
            }
        }
    }

    #[test]
    fn pad_map_shifts_banks() {
        let p = PadMap::new(8, true);
        assert_eq!(p.index(0), 0);
        assert_eq!(p.index(7), 7);
        assert_eq!(p.index(8), 9); // row 1 shifted by 1
        assert_eq!(p.index(16), 18); // row 2 shifted by 2
                                     // column 0 of consecutive rows now hits distinct banks
        let banks: Vec<usize> = (0..8).map(|row| p.index(row * 8) % 8).collect();
        let mut uniq = banks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "banks {banks:?} not distinct");
    }

    #[test]
    fn pad_map_disabled_is_identity() {
        let p = PadMap::new(32, false);
        for i in [0usize, 5, 31, 32, 1000] {
            assert_eq!(p.index(i), i);
        }
        assert_eq!(p.padded_len(128), 128);
    }

    #[test]
    fn pad_map_len_covers_max_index() {
        let p = PadMap::new(32, true);
        for n in [1usize, 31, 32, 33, 64, 1024, 4096] {
            assert!(p.index(n - 1) < p.padded_len(n), "n={n}");
        }
    }

    #[test]
    fn pad_map_is_injective() {
        let p = PadMap::new(32, true);
        let phys: Vec<usize> = (0..2048).map(|i| p.index(i)).collect();
        let mut sorted = phys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), phys.len());
    }

    #[test]
    fn chunk_rotation_covers_all_offsets() {
        let offs: Vec<usize> = (0..8).map(|l| chunk_rotation(l, 4)).collect();
        assert_eq!(offs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
