#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Bitonic sorting-network primitives.
//!
//! This crate is the shared substrate for both the GPU kernels (`topk`
//! crate, simulated) and the CPU implementation (`topk-cpu`): step
//! schedules for the three operators of the paper's bitonic top-k
//! (Section 3.2), the XOR-pairing index arithmetic, direction rules,
//! host-side reference operators, and the index maps behind the shared
//! memory optimizations of Section 4.3 (combined steps, padding, chunk
//! permutation).
//!
//! # The network convention
//!
//! We use the classic XOR formulation of bitonic sort. Building sorted
//! runs of length `r` (phase `r`), with step distance `j`:
//!
//! ```text
//! partner(i) = i ^ j
//! ascending(i) = (i & r) == 0
//! ```
//!
//! After phase `r`, runs of length `r` are sorted, alternating
//! ascending (even run index) / descending (odd run index), so every
//! aligned window of `2r` elements is a bitonic sequence — the invariant
//! the merge operator exploits.

pub mod combine;
pub mod diagram;
pub mod host;
pub mod network;

pub use combine::{chunk_rotation, CombinedStep, PadMap, StepGroupPlan};
pub use diagram::render as render_network;
pub use host::{
    bitonic_sort, bitonic_topk_host, is_bitonic, local_sort, merge_halve, rebuild,
    runs_sorted_alternating,
};
pub use network::{ascending_at, local_sort_steps, partner, rebuild_steps, Step};

/// Rounds `n` up to the next power of two (`n` itself if already one).
///
/// Bitonic networks require power-of-two extents; callers pad with
/// sentinels up to this size.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// True if `n` is a power of two (and nonzero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer log2 for a power of two.
///
/// # Panics
/// If `n` is not a power of two.
pub fn log2(n: usize) -> u32 {
    assert!(is_pow2(n), "log2 of non-power-of-two {n}");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn is_pow2_values() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(96));
    }

    #[test]
    fn log2_values() {
        assert_eq!(log2(1), 0);
        assert_eq!(log2(2), 1);
        assert_eq!(log2(1024), 10);
    }

    #[test]
    #[should_panic(expected = "non-power-of-two")]
    fn log2_rejects_non_pow2() {
        log2(3);
    }
}
