//! Property-based validation of the network schedules and host operators.

use datagen::{SortKey, TopKItem};
use proptest::prelude::*;
use sortnet::network::full_sort_steps;
use sortnet::{
    host, is_bitonic, local_sort_steps, next_pow2, rebuild_steps, CombinedStep, Step, StepGroupPlan,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full bitonic network sorts arbitrary data exactly like the
    /// standard library sort.
    #[test]
    fn full_network_sorts(data in prop::collection::vec(any::<u32>(), 1..2048)) {
        let n = next_pow2(data.len());
        let mut v = data.clone();
        v.resize(n, u32::MAX);
        for step in full_sort_steps(n) {
            host::apply_step(&mut v, step);
        }
        let mut expect = data;
        expect.resize(n, u32::MAX);
        expect.sort_unstable();
        prop_assert_eq!(v, expect);
    }

    /// Each network step only permutes — never loses or invents elements.
    #[test]
    fn steps_are_permutations(
        data in prop::collection::vec(any::<i32>(), 64..64 + 256),
        j_log in 0u32..6,
        run_log in 1u32..7,
    ) {
        let n = next_pow2(data.len());
        let j = 1usize << j_log.min(run_log - 1);
        let run = 1usize << run_log;
        let mut v = data.clone();
        v.resize(n, 0);
        let mut before = v.clone();
        host::apply_step(&mut v, Step { j, run });
        before.sort_unstable_by_key(|x| x.sort_bits());
        let mut after = v;
        after.sort_unstable_by_key(|x| x.sort_bits());
        prop_assert_eq!(before, after);
    }

    /// Local sort's schedule really produces alternating sorted runs, and
    /// every adjacent pair of runs forms a bitonic 2k window.
    #[test]
    fn local_sort_postcondition(
        data in prop::collection::vec(any::<u32>(), 32..1024),
        k_log in 0u32..6,
    ) {
        let k = 1usize << k_log;
        let n = next_pow2(data.len()).max(2 * k);
        let mut v = data;
        v.resize(n, 0);
        for step in local_sort_steps(k) {
            host::apply_step(&mut v, step);
        }
        prop_assert!(host::runs_sorted_alternating(&v, k));
        for w in v.chunks(2 * k) {
            prop_assert!(is_bitonic(w));
        }
    }

    /// Rebuild after a merge restores the local-sort postcondition.
    #[test]
    fn rebuild_postcondition(
        data in prop::collection::vec(any::<u32>(), 64..1024),
        k_log in 0u32..5,
    ) {
        let k = 1usize << k_log;
        let n = next_pow2(data.len()).max(2 * k);
        let mut v = data;
        v.resize(n, 0);
        for step in local_sort_steps(k) {
            host::apply_step(&mut v, step);
        }
        let mut half = vec![0u32; n / 2];
        host::merge_halve(&v, k, &mut half);
        for step in rebuild_steps(k) {
            host::apply_step(&mut half, step);
        }
        prop_assert!(host::runs_sorted_alternating(&half, k));
    }

    /// Any greedy group plan executes to the same result as the
    /// step-by-step schedule, for every budget.
    #[test]
    fn group_plans_equivalent_for_any_budget(
        data in prop::collection::vec(any::<u32>(), 256..1024),
        k_log in 1u32..7,
        budget_log in 1u32..6,
    ) {
        let k = 1usize << k_log;
        let budget = 1usize << budget_log;
        let n = next_pow2(data.len()).max(k);
        let steps = local_sort_steps(k);

        let mut seq = data.clone();
        seq.resize(n, 0);
        for &s in &steps {
            host::apply_step(&mut seq, s);
        }

        let mut grouped = data;
        grouped.resize(n, 0);
        let plan = StepGroupPlan::plan(&steps, budget);
        apply_plan(&mut grouped, &plan);

        prop_assert_eq!(seq, grouped);
    }

    /// Closed sets of a combined step partition the index space.
    #[test]
    fn closed_sets_partition(bits in prop::collection::btree_set(0u32..8, 1..4)) {
        let free: Vec<u32> = bits.into_iter().collect();
        let g = CombinedStep { steps: vec![], free_bits: free };
        let len = 1usize << 10;
        let mut seen = vec![false; len];
        for set in 0..g.num_sets(len) {
            for m in 0..g.elems_per_set() {
                let i = g.element(set, m);
                prop_assert!(i < len);
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

/// Kernel-style execution of a plan: gather each closed set, apply the
/// group's steps locally, scatter back.
fn apply_plan<T: TopKItem>(data: &mut [T], plan: &StepGroupPlan) {
    for group in &plan.groups {
        let m_count = group.elems_per_set();
        let mut local = vec![data[0]; m_count];
        for set in 0..group.num_sets(data.len()) {
            for m in 0..m_count {
                local[m] = data[group.element(set, m)];
            }
            for &step in &group.steps {
                let lb = group.local_bit_for(step.j);
                for m in 0..m_count {
                    let pm = m ^ (1 << lb);
                    if pm > m {
                        let gi = group.element(set, m);
                        let asc = step.ascending(gi);
                        if asc == local[pm].item_lt(&local[m]) {
                            local.swap(m, pm);
                        }
                    }
                }
            }
            for m in 0..m_count {
                data[group.element(set, m)] = local[m];
            }
        }
    }
}
