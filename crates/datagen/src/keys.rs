//! Order-preserving bit transforms for sortable key types.
//!
//! Every key type maps into an unsigned integer domain ([`RadixBits`]) such
//! that `a < b ⇔ a.sort_bits() < b.sort_bits()`. This gives radix partitioning
//! (digit extraction) and bitonic compare-exchange a single, branch-free
//! comparison primitive, exactly as CUDA radix sorts do.
//!
//! Floating-point NaNs are mapped above `+∞` (positive NaNs) or below `-∞`
//! (negative NaNs) by the transform; ordering is total and deterministic.

/// Unsigned integer bit domains usable as radix keys.
///
/// Implemented for `u32` and `u64`. The trait exposes just enough integer
/// surface for digit extraction and sentinel construction without pulling in
/// a num-traits style dependency.
pub trait RadixBits:
    Copy
    + Ord
    + Eq
    + std::fmt::Debug
    + std::hash::Hash
    + Send
    + Sync
    + 'static
    + std::ops::Shr<u32, Output = Self>
    + std::ops::Shl<u32, Output = Self>
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
{
    /// All-zero bit pattern (the minimum of the domain).
    const ZERO: Self;
    /// All-one bit pattern (the maximum of the domain).
    const MAX: Self;
    /// Width of the domain in bits (32 or 64).
    const BITS: u32;

    /// Truncates to the low 8 bits, as a bucket index.
    fn low_u8(self) -> u8;
    /// Converts to `u64` (zero-extending).
    fn as_u64(self) -> u64;
    /// Converts from a `u64`, truncating.
    fn from_u64(v: u64) -> Self;

    /// Extracts the `d`-th 8-bit digit counting from the most significant
    /// digit (digit 0 is the top byte). Radix select scans digits in this
    /// order (MSD).
    fn msd_digit(self, d: u32) -> u8 {
        debug_assert!(d < Self::BITS / 8);
        (self >> (Self::BITS - 8 * (d + 1))).low_u8()
    }
}

impl RadixBits for u32 {
    const ZERO: Self = 0;
    const MAX: Self = u32::MAX;
    const BITS: u32 = 32;

    #[inline]
    fn low_u8(self) -> u8 {
        self as u8
    }
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl RadixBits for u64 {
    const ZERO: Self = 0;
    const MAX: Self = u64::MAX;
    const BITS: u32 = 64;

    #[inline]
    fn low_u8(self) -> u8 {
        self as u8
    }
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}

/// A key type with a total order realized through an order-preserving bit
/// transform.
///
/// All top-k algorithms in the workspace compare keys exclusively through
/// [`SortKey::sort_bits`], so a single kernel implementation covers floats,
/// signed, and unsigned integers of both widths.
pub trait SortKey: Copy + PartialEq + Default + std::fmt::Debug + Send + Sync + 'static {
    /// The unsigned bit domain (`u32` for 32-bit keys, `u64` for 64-bit).
    type Bits: RadixBits;

    /// Order-preserving transform into the bit domain.
    fn sort_bits(self) -> Self::Bits;
    /// Inverse of [`SortKey::sort_bits`].
    fn from_sort_bits(bits: Self::Bits) -> Self;

    /// The minimum value in bit order — used as the padding sentinel when
    /// device buffers are rounded up to a power of two for a largest-k query.
    fn min_sentinel() -> Self {
        Self::from_sort_bits(Self::Bits::ZERO)
    }

    /// The maximum value in bit order — padding sentinel for smallest-k.
    fn max_sentinel() -> Self {
        Self::from_sort_bits(Self::Bits::MAX)
    }

    /// Total-order comparison through the bit transform.
    #[inline]
    fn key_cmp(self, other: Self) -> std::cmp::Ordering {
        self.sort_bits().cmp(&other.sort_bits())
    }

    /// `self < other` in bit order.
    #[inline]
    fn key_lt(self, other: Self) -> bool {
        self.sort_bits() < other.sort_bits()
    }

    /// The key as a real number, monotone (not necessarily strictly) with
    /// the bit order. Bucket select bins candidates by this value — the
    /// GGKS implementation computes its equal-width buckets in *value*
    /// space, which is what makes it distribution-robust for floats.
    /// Non-finite floats clamp to ±`f64::MAX` (ties within one bucket are
    /// resolved by the final exact sort).
    fn as_f64(self) -> f64;
}

impl SortKey for u32 {
    type Bits = u32;
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn sort_bits(self) -> u32 {
        self
    }
    #[inline]
    fn from_sort_bits(bits: u32) -> Self {
        bits
    }
}

impl SortKey for u64 {
    type Bits = u64;
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn sort_bits(self) -> u64 {
        self
    }
    #[inline]
    fn from_sort_bits(bits: u64) -> Self {
        bits
    }
}

impl SortKey for i32 {
    type Bits = u32;
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn sort_bits(self) -> u32 {
        (self as u32) ^ 0x8000_0000
    }
    #[inline]
    fn from_sort_bits(bits: u32) -> Self {
        (bits ^ 0x8000_0000) as i32
    }
}

impl SortKey for i64 {
    type Bits = u64;
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn sort_bits(self) -> u64 {
        (self as u64) ^ 0x8000_0000_0000_0000
    }
    #[inline]
    fn from_sort_bits(bits: u64) -> Self {
        (bits ^ 0x8000_0000_0000_0000) as i64
    }
}

impl SortKey for f32 {
    type Bits = u32;

    #[inline]
    fn as_f64(self) -> f64 {
        if self.is_nan() {
            // NaN sorts above +inf (positive) or below -inf (negative) in
            // bit order; clamp to the same extreme as infinities
            if self.to_bits() & 0x8000_0000 != 0 {
                -f64::MAX
            } else {
                f64::MAX
            }
        } else {
            (self as f64).clamp(-f64::MAX, f64::MAX)
        }
    }

    /// The classic float-flip: negative floats reverse (complement all
    /// bits), non-negative floats set the sign bit. Produces an unsigned
    /// domain where IEEE-754 order is preserved and `-0.0 < +0.0`.
    #[inline]
    fn sort_bits(self) -> u32 {
        let b = self.to_bits();
        if b & 0x8000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000
        }
    }

    #[inline]
    fn from_sort_bits(bits: u32) -> Self {
        let b = if bits & 0x8000_0000 != 0 {
            bits & 0x7fff_ffff
        } else {
            !bits
        };
        f32::from_bits(b)
    }
}

impl SortKey for f64 {
    type Bits = u64;

    #[inline]
    fn as_f64(self) -> f64 {
        if self.is_nan() {
            if self.to_bits() & 0x8000_0000_0000_0000 != 0 {
                -f64::MAX
            } else {
                f64::MAX
            }
        } else {
            self.clamp(-f64::MAX, f64::MAX)
        }
    }

    #[inline]
    fn sort_bits(self) -> u64 {
        let b = self.to_bits();
        if b & 0x8000_0000_0000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000_0000_0000
        }
    }

    #[inline]
    fn from_sort_bits(bits: u64) -> Self {
        let b = if bits & 0x8000_0000_0000_0000 != 0 {
            bits & 0x7fff_ffff_ffff_ffff
        } else {
            !bits
        };
        f64::from_bits(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn roundtrip<K: SortKey>(k: K) {
        assert_eq!(
            K::from_sort_bits(k.sort_bits()),
            k,
            "roundtrip failed for {k:?}"
        );
    }

    #[test]
    fn u32_identity() {
        for v in [0u32, 1, 42, u32::MAX, u32::MAX - 1] {
            roundtrip(v);
            assert_eq!(v.sort_bits(), v);
        }
    }

    #[test]
    fn i32_order_preserved() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in vals.windows(2) {
            assert!(w[0].sort_bits() < w[1].sort_bits(), "{} !< {}", w[0], w[1]);
            roundtrip(w[0]);
        }
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -5_000_000_000, -1, 0, 1, 5_000_000_000, i64::MAX];
        for w in vals.windows(2) {
            assert!(w[0].sort_bits() < w[1].sort_bits());
            roundtrip(w[0]);
        }
    }

    #[test]
    fn f32_order_preserved() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -1.0,
            -1e-30,
            -0.0,
            0.0,
            1e-30,
            1.0,
            1e30,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                w[0].sort_bits() <= w[1].sort_bits(),
                "{} !<= {} in bits",
                w[0],
                w[1]
            );
            roundtrip(w[0]);
        }
        // strict for distinct non-zero values
        assert!((-1.0f32).sort_bits() < 1.0f32.sort_bits());
        // -0.0 and +0.0 are distinct bit patterns, -0.0 below +0.0
        assert!(SortKey::sort_bits(-0.0f32) < SortKey::sort_bits(0.0f32));
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -0.0,
            0.0,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(w[0].sort_bits() <= w[1].sort_bits());
            roundtrip(w[0]);
        }
    }

    #[test]
    fn f32_nan_total_order() {
        // positive NaN sorts above +inf; negative NaN below -inf
        let pos_nan = f32::from_bits(0x7fc0_0000);
        let neg_nan = f32::from_bits(0xffc0_0000);
        assert!(SortKey::sort_bits(pos_nan) > SortKey::sort_bits(f32::INFINITY));
        assert!(SortKey::sort_bits(neg_nan) < SortKey::sort_bits(f32::NEG_INFINITY));
    }

    #[test]
    fn sentinels_are_extremes() {
        assert!(f32::min_sentinel().sort_bits() == u32::ZERO);
        assert!(f32::max_sentinel().sort_bits() == u32::MAX);
        assert_eq!(u32::min_sentinel(), 0);
        assert_eq!(u32::max_sentinel(), u32::MAX);
        assert_eq!(i32::min_sentinel(), i32::MIN);
        assert_eq!(i32::max_sentinel(), i32::MAX);
        // f32 min sentinel must compare <= every ordinary float
        for v in [-1e30f32, -1.0, 0.0, 1.0, 1e30] {
            assert!(f32::min_sentinel().sort_bits() <= v.sort_bits());
        }
    }

    #[test]
    fn key_cmp_matches_partial_ord() {
        let pairs = [(1.5f32, 2.5f32), (-3.0, 3.0), (0.0, 0.0), (7.25, -7.25)];
        for (a, b) in pairs {
            let expect = a.partial_cmp(&b).unwrap();
            assert_eq!(a.key_cmp(b), expect);
            assert_eq!(a.key_lt(b), expect == Ordering::Less);
        }
    }

    #[test]
    fn msd_digit_extraction_u32() {
        let v: u32 = 0xAABB_CCDD;
        assert_eq!(v.msd_digit(0), 0xAA);
        assert_eq!(v.msd_digit(1), 0xBB);
        assert_eq!(v.msd_digit(2), 0xCC);
        assert_eq!(v.msd_digit(3), 0xDD);
    }

    #[test]
    fn msd_digit_extraction_u64() {
        let v: u64 = 0x0102_0304_0506_0708;
        for d in 0..8 {
            assert_eq!(v.msd_digit(d), (d + 1) as u8);
        }
    }

    #[test]
    fn u64_as_from_u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe] {
            assert_eq!(u64::from_u64(v.as_u64()), v);
        }
    }
}
