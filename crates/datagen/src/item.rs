//! Tuple shapes for top-k queries (Section 6.6 of the paper).
//!
//! The paper evaluates bare keys, key+value (`KV`), two keys+value (`KKV`)
//! and three keys+value (`KKKV`). All algorithms in the workspace are
//! generic over [`TopKItem`]: they order items by [`TopKItem::key_bits`] and
//! move whole items, so payload width affects (simulated) memory traffic
//! exactly as it does on real hardware.

use crate::keys::{RadixBits, SortKey};

/// An item that can participate in a top-k query.
///
/// Items are small `Copy` records ordered by a primary key (possibly a
/// lexicographic composite). `SIZE_BYTES` is the item's device footprint,
/// used by the simulator for traffic accounting.
pub trait TopKItem: Copy + PartialEq + Default + std::fmt::Debug + Send + Sync + 'static {
    /// Bit domain of the (composite) ordering key.
    type KeyBits: RadixBits;

    /// Device footprint of one item in bytes.
    const SIZE_BYTES: usize;

    /// Order-preserving key bits: items compare by this value.
    fn key_bits(&self) -> Self::KeyBits;

    /// The ordering key as a real number, monotone with `key_bits` (see
    /// [`SortKey::as_f64`]). Default: the bits themselves.
    fn key_value(&self) -> f64 {
        self.key_bits().as_u64() as f64
    }

    /// An item smaller (in key order) than every real item — the padding
    /// sentinel for largest-k queries.
    fn min_sentinel() -> Self;

    /// An item larger than every real item — the sentinel for smallest-k.
    fn max_sentinel() -> Self;

    /// `self < other` in key order.
    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        self.key_bits() < other.key_bits()
    }
}

impl<K: SortKey> TopKItem for K {
    type KeyBits = K::Bits;
    const SIZE_BYTES: usize = std::mem::size_of::<K>();

    #[inline]
    fn key_bits(&self) -> K::Bits {
        self.sort_bits()
    }
    #[inline]
    fn key_value(&self) -> f64 {
        self.as_f64()
    }
    fn min_sentinel() -> Self {
        <K as SortKey>::min_sentinel()
    }
    fn max_sentinel() -> Self {
        <K as SortKey>::max_sentinel()
    }
}

/// Key + 4-byte value payload (the paper's `KV`).
///
/// The value is typically a tuple/row id: the paper recommends running top-k
/// on `(key, id)` and assembling wide payloads afterwards (Section 6.6).
///
/// Equal keys are ordered by the payload: the *smaller* row id ranks
/// higher, so a top-k over `(key, id)` pairs is a total order and every
/// execution plan — single-device, batched, or sharded across a cluster —
/// returns bit-identical winners on duplicate-heavy keys.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kv<K: SortKey> {
    /// The ordering key.
    pub key: K,
    /// The 4-byte payload (typically a row id).
    pub value: u32,
}

impl<K: SortKey> Kv<K> {
    /// Creates a key + value pair.
    pub fn new(key: K, value: u32) -> Self {
        Self { key, value }
    }
}

impl<K: SortKey> TopKItem for Kv<K> {
    type KeyBits = K::Bits;
    const SIZE_BYTES: usize = std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> K::Bits {
        self.key.sort_bits()
    }
    #[inline]
    fn key_value(&self) -> f64 {
        self.key.as_f64()
    }
    fn min_sentinel() -> Self {
        Self {
            key: K::min_sentinel(),
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        // value 0: the smallest id ranks highest on key ties, so the max
        // sentinel must also carry the most-preferred id
        Self {
            key: K::max_sentinel(),
            value: 0,
        }
    }

    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        let a = self.key_bits();
        let b = other.key_bits();
        if a != b {
            return a < b;
        }
        // key tie: the smaller row id is the *greater* item, so it wins
        // the top-k deterministically
        self.value > other.value
    }
}

/// Two keys + value (`KKV`): ordered lexicographically by `(key0, key1)`.
///
/// The composite order is realized by concatenating the two 32-bit key
/// transforms into a single `u64`, so comparison stays a single unsigned
/// compare (and radix digits still work).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kkv<K: SortKey<Bits = u32>> {
    /// The ordering keys, most significant first.
    pub keys: [K; 2],
    /// The 4-byte payload.
    pub value: u32,
}

impl<K: SortKey<Bits = u32>> Kkv<K> {
    /// Creates a two-key + value record.
    pub fn new(k0: K, k1: K, value: u32) -> Self {
        Self {
            keys: [k0, k1],
            value,
        }
    }
}

impl<K: SortKey<Bits = u32>> TopKItem for Kkv<K> {
    type KeyBits = u64;
    const SIZE_BYTES: usize = 2 * std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> u64 {
        ((self.keys[0].sort_bits() as u64) << 32) | self.keys[1].sort_bits() as u64
    }
    fn min_sentinel() -> Self {
        Self {
            keys: [K::min_sentinel(); 2],
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        Self {
            keys: [K::max_sentinel(); 2],
            value: 0,
        }
    }

    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        let a = self.key_bits();
        let b = other.key_bits();
        if a != b {
            return a < b;
        }
        self.value > other.value
    }
}

/// Three keys + value (`KKKV`).
///
/// Lexicographic order on `(key0, key1, key2)`. The composite does not fit
/// a native integer, so `key_bits` folds the third key into the low bits of
/// a 96-bit logical key truncated to 64 bits: `key0 ‖ key1` dominates and
/// `key2` breaks ties only through [`TopKItem::item_lt`], which algorithms
/// use for all comparisons. Radix-digit algorithms operate on the top 64
/// bits and fall back to a final refinement pass; for the paper's
/// experiments (distinct uniform keys) ties in the top 64 bits are
/// measure-zero, matching the evaluation setup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kkkv<K: SortKey<Bits = u32>> {
    /// The ordering keys, most significant first.
    pub keys: [K; 3],
    /// The 4-byte payload.
    pub value: u32,
}

impl<K: SortKey<Bits = u32>> Kkkv<K> {
    /// Creates a three-key + value record.
    pub fn new(k0: K, k1: K, k2: K, value: u32) -> Self {
        Self {
            keys: [k0, k1, k2],
            value,
        }
    }
}

impl<K: SortKey<Bits = u32>> TopKItem for Kkkv<K> {
    type KeyBits = u64;
    const SIZE_BYTES: usize = 3 * std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> u64 {
        ((self.keys[0].sort_bits() as u64) << 32) | self.keys[1].sort_bits() as u64
    }
    fn min_sentinel() -> Self {
        Self {
            keys: [K::min_sentinel(); 3],
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        Self {
            keys: [K::max_sentinel(); 3],
            value: 0,
        }
    }

    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        let a = self.key_bits();
        let b = other.key_bits();
        if a != b {
            return a < b;
        }
        let a2 = self.keys[2].sort_bits();
        let b2 = other.keys[2].sort_bits();
        if a2 != b2 {
            return a2 < b2;
        }
        self.value > other.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_key_item_size() {
        assert_eq!(<f32 as TopKItem>::SIZE_BYTES, 4);
        assert_eq!(<f64 as TopKItem>::SIZE_BYTES, 8);
        assert_eq!(<u64 as TopKItem>::SIZE_BYTES, 8);
    }

    #[test]
    fn kv_orders_by_key_then_id() {
        let a = Kv::new(1.0f32, 99);
        let b = Kv::new(2.0f32, 1);
        assert!(a.item_lt(&b));
        assert!(!b.item_lt(&a));
        // equal keys: the smaller id is the greater item (wins top-k)
        let c = Kv::new(1.0f32, 5);
        assert!(a.item_lt(&c), "id 5 must outrank id 99 on a key tie");
        assert!(!c.item_lt(&a));
        // identical items: neither strictly less
        assert!(!a.item_lt(&a));
    }

    #[test]
    fn tie_break_is_a_total_order_on_duplicate_heavy_keys() {
        // duplicate-heavy: 4 distinct keys across 64 items
        let items: Vec<Kv<u32>> = (0..64u32).map(|i| Kv::new(i % 4, i)).collect();
        for x in &items {
            for y in &items {
                if x == y {
                    assert!(!x.item_lt(y));
                } else {
                    // exactly one strict direction: totality + antisymmetry
                    assert!(x.item_lt(y) ^ y.item_lt(x), "{x:?} vs {y:?}");
                }
            }
        }
        // transitivity on a sorted chain
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| {
            if a.item_lt(b) {
                std::cmp::Ordering::Less
            } else if b.item_lt(a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        for w in sorted.windows(2) {
            assert!(w[0].item_lt(&w[1]));
        }
    }

    #[test]
    fn kkv_and_kkkv_tie_break_by_id_last() {
        let a = Kkv::new(1.0f32, 2.0, 9);
        let b = Kkv::new(1.0f32, 2.0, 3);
        assert!(a.item_lt(&b), "equal composite keys: smaller id wins");
        let c = Kkkv::new(1.0f32, 2.0, 3.0, 9);
        let d = Kkkv::new(1.0f32, 2.0, 3.0, 3);
        assert!(c.item_lt(&d));
        // the third key still dominates the id
        let e = Kkkv::new(1.0f32, 2.0, 4.0, 99);
        assert!(d.item_lt(&e));
    }

    #[test]
    fn kv_size() {
        assert_eq!(Kv::<f32>::SIZE_BYTES, 8);
        assert_eq!(Kv::<f64>::SIZE_BYTES, 12);
    }

    #[test]
    fn kkv_lexicographic() {
        let a = Kkv::new(1.0f32, 9.0, 0);
        let b = Kkv::new(2.0f32, 0.0, 0);
        let c = Kkv::new(2.0f32, 1.0, 0);
        assert!(a.item_lt(&b)); // first key dominates
        assert!(b.item_lt(&c)); // second key breaks ties
        assert_eq!(Kkv::<f32>::SIZE_BYTES, 12);
    }

    #[test]
    fn kkkv_third_key_breaks_ties() {
        let a = Kkkv::new(1.0f32, 1.0, 1.0, 0);
        let b = Kkkv::new(1.0f32, 1.0, 2.0, 0);
        let c = Kkkv::new(1.0f32, 2.0, 0.0, 0);
        assert!(a.item_lt(&b));
        assert!(b.item_lt(&c));
        assert_eq!(Kkkv::<f32>::SIZE_BYTES, 16);
    }

    #[test]
    fn sentinels_bound_everything() {
        let lo = Kv::<f32>::min_sentinel();
        let hi = Kv::<f32>::max_sentinel();
        for k in [-1e30f32, -1.0, 0.0, 1.0, 1e30] {
            let item = Kv::new(k, 7);
            assert!(!item.item_lt(&lo));
            assert!(!hi.item_lt(&item));
        }
    }

    #[test]
    fn negative_keys_order_correctly_in_kv() {
        let a = Kv::new(-5i32, 0);
        let b = Kv::new(3i32, 0);
        assert!(a.item_lt(&b));
    }
}

/// Order-reversing adapter: `Rev(x)` compares exactly opposite to `x`, so
/// the top-k of `Rev<T>` items is the bottom-k of the underlying items —
/// how `ORDER BY … ASC LIMIT k` reuses the largest-k kernels.
///
/// `Rev<T>` has the exact device footprint of `T` and wraps it
/// value-identically, so a device buffer of `T` can be *viewed* as a
/// buffer of `Rev<T>` in place in the simulated address space (see
/// `GpuBuffer::map_view` in the `simt` crate) — smallest-k needs no
/// device round-trip and no extra device memory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rev<T: TopKItem>(pub T);

impl<T: TopKItem> TopKItem for Rev<T>
where
    T::KeyBits: RadixBits,
{
    type KeyBits = T::KeyBits;
    const SIZE_BYTES: usize = T::SIZE_BYTES;

    #[inline]
    fn key_bits(&self) -> Self::KeyBits {
        // complementing the bits reverses the unsigned order
        self.0.key_bits() ^ Self::KeyBits::MAX
    }

    #[inline]
    fn key_value(&self) -> f64 {
        -self.0.key_value()
    }

    fn min_sentinel() -> Self {
        Rev(T::max_sentinel())
    }

    fn max_sentinel() -> Self {
        Rev(T::min_sentinel())
    }

    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        // strict order reversal, including the underlying tie-break
        other.0.item_lt(&self.0)
    }
}

impl<T: TopKItem> simt::TransparentWrapper<T> for Rev<T>
where
    T::KeyBits: RadixBits,
{
    fn wrap(inner: T) -> Self {
        Rev(inner)
    }
    fn peel(self) -> T {
        self.0
    }
}

/// Wraps a host slice of `T` as owned [`Rev<T>`] items — the CPU-side
/// counterpart of [`RevView::as_rev_view`]. The wrap is value-identical;
/// only the ordering changes.
pub fn rev_slice<T: TopKItem>(items: &[T]) -> Vec<Rev<T>> {
    items.iter().map(|&x| Rev(x)).collect()
}

/// Safe smallest-k view over a device buffer.
///
/// `buf.as_rev_view()` views a `GpuBuffer<T>` **in place in the
/// simulated address space** as a buffer of the order-reversing
/// [`Rev<T>`] wrapper — no device round-trip, no extra device memory —
/// so largest-k kernels compute smallest-k. The storage returns to the
/// source buffer when the view drops.
pub trait RevView<T: TopKItem> {
    /// The in-place order-reversed view of this buffer.
    fn as_rev_view(&self) -> simt::MappedBuffer<T, Rev<T>>;
}

impl<T: TopKItem> RevView<T> for simt::GpuBuffer<T> {
    fn as_rev_view(&self) -> simt::MappedBuffer<T, Rev<T>> {
        self.map_view::<Rev<T>>()
    }
}

#[cfg(test)]
mod rev_tests {
    use super::*;

    #[test]
    fn rev_reverses_order() {
        let a = Rev(1.0f32);
        let b = Rev(2.0f32);
        assert!(b.item_lt(&a), "Rev(2.0) must sort below Rev(1.0)");
        assert!(!a.item_lt(&b));
    }

    #[test]
    fn rev_sentinels_swap() {
        let lo = Rev::<u32>::min_sentinel();
        let hi = Rev::<u32>::max_sentinel();
        assert_eq!(lo.0, u32::MAX);
        assert_eq!(hi.0, 0);
        for v in [0u32, 1, 1000, u32::MAX] {
            let r = Rev(v);
            assert!(!r.item_lt(&lo));
            assert!(!hi.item_lt(&r));
        }
    }

    #[test]
    fn rev_value_negates() {
        assert_eq!(Rev(3.5f32).key_value(), -3.5);
    }

    #[test]
    fn rev_of_kv_keeps_payload() {
        let r = Rev(Kv::new(7u32, 99));
        assert_eq!(r.0.value, 99);
        assert_eq!(Rev::<Kv<u32>>::SIZE_BYTES, 8);
    }

    #[test]
    fn as_rev_view_is_in_place_and_restores() {
        let dev = simt::Device::titan_x();
        let buf = dev.upload(&[3.0f32, 1.0, 2.0]);
        let bytes = dev.memory_allocated();
        {
            let view = buf.as_rev_view();
            assert_eq!(view.view().len(), 3);
            assert_eq!(dev.memory_allocated(), bytes, "no extra allocation");
            assert!(buf.is_empty(), "storage moved into the view");
        }
        assert_eq!(buf.to_vec(), vec![3.0, 1.0, 2.0], "restored on drop");
    }

    #[test]
    fn rev_slice_wraps_and_reverses() {
        let host = [5u32, 9, 1];
        let rev = rev_slice(&host);
        assert_eq!(rev.len(), 3);
        assert!(rev[1].item_lt(&rev[2]), "Rev(9) sorts below Rev(1)");
        assert_eq!(rev[0].0, 5);
    }

    #[test]
    fn rev_reverses_the_id_tie_break_too() {
        let a = Rev(Kv::new(7u32, 5));
        let b = Rev(Kv::new(7u32, 99));
        // underlying: id 5 outranks id 99; reversed: Rev(id 5) sorts lower
        assert!(a.item_lt(&b));
        assert!(!b.item_lt(&a));
        // Rev sentinels still bound Kv items with the new tie-break
        let lo = Rev::<Kv<u32>>::min_sentinel();
        let hi = Rev::<Kv<u32>>::max_sentinel();
        for v in [0u32, 7, u32::MAX] {
            let r = Rev(Kv::new(v, 3));
            assert!(!r.item_lt(&lo), "key {v}");
            assert!(!hi.item_lt(&r), "key {v}");
        }
    }
}
