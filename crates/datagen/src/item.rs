//! Tuple shapes for top-k queries (Section 6.6 of the paper).
//!
//! The paper evaluates bare keys, key+value (`KV`), two keys+value (`KKV`)
//! and three keys+value (`KKKV`). All algorithms in the workspace are
//! generic over [`TopKItem`]: they order items by [`TopKItem::key_bits`] and
//! move whole items, so payload width affects (simulated) memory traffic
//! exactly as it does on real hardware.

use crate::keys::{RadixBits, SortKey};

/// An item that can participate in a top-k query.
///
/// Items are small `Copy` records ordered by a primary key (possibly a
/// lexicographic composite). `SIZE_BYTES` is the item's device footprint,
/// used by the simulator for traffic accounting.
pub trait TopKItem: Copy + PartialEq + Default + std::fmt::Debug + Send + Sync + 'static {
    /// Bit domain of the (composite) ordering key.
    type KeyBits: RadixBits;

    /// Device footprint of one item in bytes.
    const SIZE_BYTES: usize;

    /// Order-preserving key bits: items compare by this value.
    fn key_bits(&self) -> Self::KeyBits;

    /// The ordering key as a real number, monotone with `key_bits` (see
    /// [`SortKey::as_f64`]). Default: the bits themselves.
    fn key_value(&self) -> f64 {
        self.key_bits().as_u64() as f64
    }

    /// An item smaller (in key order) than every real item — the padding
    /// sentinel for largest-k queries.
    fn min_sentinel() -> Self;

    /// An item larger than every real item — the sentinel for smallest-k.
    fn max_sentinel() -> Self;

    /// `self < other` in key order.
    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        self.key_bits() < other.key_bits()
    }
}

impl<K: SortKey> TopKItem for K {
    type KeyBits = K::Bits;
    const SIZE_BYTES: usize = std::mem::size_of::<K>();

    #[inline]
    fn key_bits(&self) -> K::Bits {
        self.sort_bits()
    }
    #[inline]
    fn key_value(&self) -> f64 {
        self.as_f64()
    }
    fn min_sentinel() -> Self {
        <K as SortKey>::min_sentinel()
    }
    fn max_sentinel() -> Self {
        <K as SortKey>::max_sentinel()
    }
}

/// Key + 4-byte value payload (the paper's `KV`).
///
/// The value is typically a tuple/row id: the paper recommends running top-k
/// on `(key, id)` and assembling wide payloads afterwards (Section 6.6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kv<K: SortKey> {
    /// The ordering key.
    pub key: K,
    /// The 4-byte payload (typically a row id).
    pub value: u32,
}

impl<K: SortKey> Kv<K> {
    /// Creates a key + value pair.
    pub fn new(key: K, value: u32) -> Self {
        Self { key, value }
    }
}

impl<K: SortKey> TopKItem for Kv<K> {
    type KeyBits = K::Bits;
    const SIZE_BYTES: usize = std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> K::Bits {
        self.key.sort_bits()
    }
    #[inline]
    fn key_value(&self) -> f64 {
        self.key.as_f64()
    }
    fn min_sentinel() -> Self {
        Self {
            key: K::min_sentinel(),
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        Self {
            key: K::max_sentinel(),
            value: u32::MAX,
        }
    }
}

/// Two keys + value (`KKV`): ordered lexicographically by `(key0, key1)`.
///
/// The composite order is realized by concatenating the two 32-bit key
/// transforms into a single `u64`, so comparison stays a single unsigned
/// compare (and radix digits still work).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kkv<K: SortKey<Bits = u32>> {
    /// The ordering keys, most significant first.
    pub keys: [K; 2],
    /// The 4-byte payload.
    pub value: u32,
}

impl<K: SortKey<Bits = u32>> Kkv<K> {
    /// Creates a two-key + value record.
    pub fn new(k0: K, k1: K, value: u32) -> Self {
        Self {
            keys: [k0, k1],
            value,
        }
    }
}

impl<K: SortKey<Bits = u32>> TopKItem for Kkv<K> {
    type KeyBits = u64;
    const SIZE_BYTES: usize = 2 * std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> u64 {
        ((self.keys[0].sort_bits() as u64) << 32) | self.keys[1].sort_bits() as u64
    }
    fn min_sentinel() -> Self {
        Self {
            keys: [K::min_sentinel(); 2],
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        Self {
            keys: [K::max_sentinel(); 2],
            value: u32::MAX,
        }
    }
}

/// Three keys + value (`KKKV`).
///
/// Lexicographic order on `(key0, key1, key2)`. The composite does not fit
/// a native integer, so `key_bits` folds the third key into the low bits of
/// a 96-bit logical key truncated to 64 bits: `key0 ‖ key1` dominates and
/// `key2` breaks ties only through [`TopKItem::item_lt`], which algorithms
/// use for all comparisons. Radix-digit algorithms operate on the top 64
/// bits and fall back to a final refinement pass; for the paper's
/// experiments (distinct uniform keys) ties in the top 64 bits are
/// measure-zero, matching the evaluation setup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kkkv<K: SortKey<Bits = u32>> {
    /// The ordering keys, most significant first.
    pub keys: [K; 3],
    /// The 4-byte payload.
    pub value: u32,
}

impl<K: SortKey<Bits = u32>> Kkkv<K> {
    /// Creates a three-key + value record.
    pub fn new(k0: K, k1: K, k2: K, value: u32) -> Self {
        Self {
            keys: [k0, k1, k2],
            value,
        }
    }
}

impl<K: SortKey<Bits = u32>> TopKItem for Kkkv<K> {
    type KeyBits = u64;
    const SIZE_BYTES: usize = 3 * std::mem::size_of::<K>() + 4;

    #[inline]
    fn key_bits(&self) -> u64 {
        ((self.keys[0].sort_bits() as u64) << 32) | self.keys[1].sort_bits() as u64
    }
    fn min_sentinel() -> Self {
        Self {
            keys: [K::min_sentinel(); 3],
            value: u32::MAX,
        }
    }
    fn max_sentinel() -> Self {
        Self {
            keys: [K::max_sentinel(); 3],
            value: u32::MAX,
        }
    }

    #[inline]
    fn item_lt(&self, other: &Self) -> bool {
        let a = self.key_bits();
        let b = other.key_bits();
        if a != b {
            return a < b;
        }
        self.keys[2].sort_bits() < other.keys[2].sort_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_key_item_size() {
        assert_eq!(<f32 as TopKItem>::SIZE_BYTES, 4);
        assert_eq!(<f64 as TopKItem>::SIZE_BYTES, 8);
        assert_eq!(<u64 as TopKItem>::SIZE_BYTES, 8);
    }

    #[test]
    fn kv_orders_by_key_only() {
        let a = Kv::new(1.0f32, 99);
        let b = Kv::new(2.0f32, 1);
        assert!(a.item_lt(&b));
        assert!(!b.item_lt(&a));
        // equal keys, different values: neither strictly less
        let c = Kv::new(1.0f32, 5);
        assert!(!a.item_lt(&c) && !c.item_lt(&a));
    }

    #[test]
    fn kv_size() {
        assert_eq!(Kv::<f32>::SIZE_BYTES, 8);
        assert_eq!(Kv::<f64>::SIZE_BYTES, 12);
    }

    #[test]
    fn kkv_lexicographic() {
        let a = Kkv::new(1.0f32, 9.0, 0);
        let b = Kkv::new(2.0f32, 0.0, 0);
        let c = Kkv::new(2.0f32, 1.0, 0);
        assert!(a.item_lt(&b)); // first key dominates
        assert!(b.item_lt(&c)); // second key breaks ties
        assert_eq!(Kkv::<f32>::SIZE_BYTES, 12);
    }

    #[test]
    fn kkkv_third_key_breaks_ties() {
        let a = Kkkv::new(1.0f32, 1.0, 1.0, 0);
        let b = Kkkv::new(1.0f32, 1.0, 2.0, 0);
        let c = Kkkv::new(1.0f32, 2.0, 0.0, 0);
        assert!(a.item_lt(&b));
        assert!(b.item_lt(&c));
        assert_eq!(Kkkv::<f32>::SIZE_BYTES, 16);
    }

    #[test]
    fn sentinels_bound_everything() {
        let lo = Kv::<f32>::min_sentinel();
        let hi = Kv::<f32>::max_sentinel();
        for k in [-1e30f32, -1.0, 0.0, 1.0, 1e30] {
            let item = Kv::new(k, 7);
            assert!(!item.item_lt(&lo));
            assert!(!hi.item_lt(&item));
        }
    }

    #[test]
    fn negative_keys_order_correctly_in_kv() {
        let a = Kv::new(-5i32, 0);
        let b = Kv::new(3i32, 0);
        assert!(a.item_lt(&b));
    }
}

/// Order-reversing adapter: `Rev(x)` compares exactly opposite to `x`, so
/// the top-k of `Rev<T>` items is the bottom-k of the underlying items —
/// how `ORDER BY … ASC LIMIT k` reuses the largest-k kernels.
///
/// `repr(transparent)` guarantees `Rev<T>` has the exact memory layout of
/// `T`, so a device buffer of `T` can be *reinterpreted* as a buffer of
/// `Rev<T>` in place (see `GpuBuffer::map_cast` in the `simt` crate) —
/// smallest-k needs no download/re-upload round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct Rev<T: TopKItem>(pub T);

impl<T: TopKItem> TopKItem for Rev<T>
where
    T::KeyBits: RadixBits,
{
    type KeyBits = T::KeyBits;
    const SIZE_BYTES: usize = T::SIZE_BYTES;

    #[inline]
    fn key_bits(&self) -> Self::KeyBits {
        // complementing the bits reverses the unsigned order
        self.0.key_bits() ^ Self::KeyBits::MAX
    }

    #[inline]
    fn key_value(&self) -> f64 {
        -self.0.key_value()
    }

    fn min_sentinel() -> Self {
        Rev(T::max_sentinel())
    }

    fn max_sentinel() -> Self {
        Rev(T::min_sentinel())
    }
}

#[cfg(test)]
mod rev_tests {
    use super::*;

    #[test]
    fn rev_reverses_order() {
        let a = Rev(1.0f32);
        let b = Rev(2.0f32);
        assert!(b.item_lt(&a), "Rev(2.0) must sort below Rev(1.0)");
        assert!(!a.item_lt(&b));
    }

    #[test]
    fn rev_sentinels_swap() {
        let lo = Rev::<u32>::min_sentinel();
        let hi = Rev::<u32>::max_sentinel();
        assert_eq!(lo.0, u32::MAX);
        assert_eq!(hi.0, 0);
        for v in [0u32, 1, 1000, u32::MAX] {
            let r = Rev(v);
            assert!(!r.item_lt(&lo));
            assert!(!hi.item_lt(&r));
        }
    }

    #[test]
    fn rev_value_negates() {
        assert_eq!(Rev(3.5f32).key_value(), -3.5);
    }

    #[test]
    fn rev_of_kv_keeps_payload() {
        let r = Rev(Kv::new(7u32, 99));
        assert_eq!(r.0.value, 99);
        assert_eq!(Rev::<Kv<u32>>::SIZE_BYTES, 8);
    }
}
