#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Workload generation for top-k experiments.
//!
//! This crate provides the three foundations every other crate in the
//! workspace builds on:
//!
//! * [`SortKey`] — a unified, total ordering over all key types the paper
//!   evaluates (`f32`, `f64`, `u32`, `i32`, `u64`, `i64`) via
//!   *order-preserving bit transforms*, the same trick GPU radix sorts use.
//!   Comparing transformed bits as unsigned integers is equivalent to
//!   comparing the original values, which gives radix partitioning and
//!   bitonic compare-exchange a single code path.
//! * [`TopKItem`] — the tuple shapes of Section 6.6: bare keys, key+value,
//!   and multi-key+value records (`Kv`, `Kkv`, `Kkkv`).
//! * [`Distribution`] — the input distributions of Sections 6.2–6.5:
//!   uniform, increasing, decreasing, and the adversarial *bucket killer*,
//!   plus Zipf for the Twitter workload.
//!
//! The [`twitter`] module synthesizes the MapD evaluation dataset
//! (Section 6.8) with realistic skew.

pub mod dist;
pub mod item;
pub mod keys;
pub mod twitter;

pub use dist::{
    reference_topk, BucketKiller, Clustered, Decreasing, Distribution, GenKey, Increasing, Normal,
    Uniform, Zipf,
};
pub use item::{rev_slice, Kkkv, Kkv, Kv, Rev, RevView, TopKItem};
pub use keys::{RadixBits, SortKey};

/// Reads the experiment scale from the `TOPK_REPRO_LOG2N` environment
/// variable, falling back to `default_log2n`.
///
/// The paper runs most experiments at n = 2^29; the simulator defaults to
/// 2^22 so the full suite completes in minutes. Simulated times are
/// bandwidth-derived and scale linearly in n.
pub fn repro_log2n(default_log2n: u32) -> u32 {
    std::env::var("TOPK_REPRO_LOG2N")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .map(|v| v.clamp(10, 29))
        .unwrap_or(default_log2n)
}
