//! Input distributions from the paper's evaluation (Sections 6.2–6.5).
//!
//! * [`Uniform`] — i.i.d. `U(0,1)` floats / full-range integers.
//! * [`Increasing`] / [`Decreasing`] — sorted input, the near-worst /
//!   best case for heap-based methods (Figure 12a, Figure 18).
//! * [`BucketKiller`] — all-ones except four values, each differing from
//!   1.0 in exactly one 8-bit digit: the adversarial input for radix
//!   select (Figure 12b), which eliminates only one candidate per pass.
//! * [`Zipf`] — skewed ids for the Twitter group-by workload (Section 6.8).

use crate::keys::SortKey;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A reproducible generator of key vectors.
pub trait Distribution<K: SortKey>: std::fmt::Debug {
    /// Generates `n` keys with the given RNG seed.
    fn generate(&self, n: usize, seed: u64) -> Vec<K>;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Keys that the standard distributions can synthesize.
///
/// Gives each key type a uniform sampler and an inverse-rank construction
/// (for sorted inputs) without reaching for `rand`'s distribution traits,
/// which don't cover the order we need (bit order, not numeric order).
pub trait GenKey: SortKey {
    /// A uniform random key: `U(0,1)` for floats, full range for integers.
    fn gen_uniform(rng: &mut SmallRng) -> Self;
}

impl GenKey for f32 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<f32>()
    }
}
impl GenKey for f64 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}
impl GenKey for u32 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<u32>()
    }
}
impl GenKey for u64 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>()
    }
}
impl GenKey for i32 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<i32>()
    }
}
impl GenKey for i64 {
    fn gen_uniform(rng: &mut SmallRng) -> Self {
        rng.gen::<i64>()
    }
}

/// I.i.d. uniform keys (`U(0,1)` floats, full-range integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl<K: GenKey> Distribution<K> for Uniform {
    fn generate(&self, n: usize, seed: u64) -> Vec<K> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| K::gen_uniform(&mut rng)).collect()
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Uniform keys sorted ascending — every element displaces the heap minimum
/// in heap-based top-k (near worst case, Figure 12a).
#[derive(Debug, Clone, Copy, Default)]
pub struct Increasing;

impl<K: GenKey> Distribution<K> for Increasing {
    fn generate(&self, n: usize, seed: u64) -> Vec<K> {
        let mut v = Uniform.generate(n, seed);
        v.sort_unstable_by_key(|k: &K| k.sort_bits());
        v
    }
    fn name(&self) -> &'static str {
        "increasing"
    }
}

/// Uniform keys sorted descending — after the first k inserts, heap-based
/// top-k never updates (best case, Figure 18).
#[derive(Debug, Clone, Copy, Default)]
pub struct Decreasing;

impl<K: GenKey> Distribution<K> for Decreasing {
    fn generate(&self, n: usize, seed: u64) -> Vec<K> {
        let mut v = Uniform.generate(n, seed);
        v.sort_unstable_by_key(|k: &K| std::cmp::Reverse(k.sort_bits()));
        v
    }
    fn name(&self) -> &'static str {
        "decreasing"
    }
}

/// The radix-select adversary (Section 6.4): every element is `1.0f32`
/// except four, each of which differs from 1.0 in exactly one of the four
/// 8-bit digits of its bit pattern. Each MSD pass can then eliminate only
/// the single element differing in that digit, so radix select degenerates
/// to a full scan per pass — the same traffic as sorting.
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketKiller;

impl BucketKiller {
    /// The four outlier bit patterns: `bits(1.0)` with exactly one 8-bit
    /// digit perturbed by one (down when possible, up when the digit is
    /// zero), so the k-th element hunt must walk every digit position.
    pub fn outliers() -> [f32; 4] {
        let one = SortKey::sort_bits(1.0f32); // transformed bits
        let mut out = [0.0f32; 4];
        for (d, slot) in out.iter_mut().enumerate() {
            let shift = 32 - 8 * (d as u32 + 1);
            let byte = (one >> shift) & 0xff;
            let perturbed = if byte > 0 { byte - 1 } else { byte + 1 };
            let bits = (one & !(0xffu32 << shift)) | (perturbed << shift);
            *slot = <f32 as SortKey>::from_sort_bits(bits);
        }
        out
    }
}

impl Distribution<f32> for BucketKiller {
    fn generate(&self, n: usize, seed: u64) -> Vec<f32> {
        assert!(n >= 5, "bucket killer needs at least 5 elements");
        let mut v = vec![1.0f32; n];
        let outliers = Self::outliers();
        // scatter the outliers deterministically but away from the ends
        let mut rng = SmallRng::seed_from_u64(seed);
        for o in outliers {
            let idx = rng.gen_range(0..n);
            v[idx] = o;
        }
        v
    }
    fn name(&self) -> &'static str {
        "bucket-killer"
    }
}

/// Approximately normal keys (Irwin–Hall sum of 12 uniforms), centered at
/// 0.5 — an extension distribution used by the robustness ablation: bitonic
/// top-k must be invariant to it like every other distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Normal;

impl Distribution<f32> for Normal {
    fn generate(&self, n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
                (s - 6.0) / 6.0 + 0.5
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "normal"
    }
}

/// Heavily clustered keys: a handful of dense value clusters with sparse
/// outliers — hard for equal-width bucketing (most candidates fall into
/// one bucket), benign for radix and bitonic. Extension distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clustered;

impl Distribution<f32> for Clustered {
    fn generate(&self, n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = [0.1f32, 0.100001, 0.100002, 0.9];
        (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len().pow(2)) % centers.len().min(3)];
                c + rng.gen::<f32>() * 1e-9
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "clustered"
    }
}

/// Zipf-distributed integer ids in `[0, universe)` with exponent `s`,
/// sampled by inverse-CDF over precomputed cumulative weights. Used for
/// the Twitter `uid` column so that group-by sizes are realistically
/// skewed.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Number of distinct ids, `[0, universe)`.
    pub universe: usize,
    /// Skew exponent `s` (larger = more skew).
    pub exponent: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `universe` ids with exponent `s`.
    pub fn new(universe: usize, exponent: f64) -> Self {
        assert!(universe > 0);
        assert!(exponent > 0.0);
        Self { universe, exponent }
    }

    /// Samples `n` ids. The cumulative table is O(universe) memory; for the
    /// experiment scales in this repo (≤ a few million distinct ids) that
    /// is the pragmatic, exact choice.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<u32> {
        let mut cdf = Vec::with_capacity(self.universe);
        let mut total = 0.0f64;
        for i in 0..self.universe {
            total += 1.0 / ((i + 1) as f64).powf(self.exponent);
            cdf.push(total);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.gen::<f64>() * total;
                // first index with cdf[idx] >= u
                cdf.partition_point(|&c| c < u).min(self.universe - 1) as u32
            })
            .collect()
    }
}

/// Reference top-k (largest k, descending) by full sort — the oracle all
/// algorithm tests compare against.
pub fn reference_topk<K: SortKey>(data: &[K], k: usize) -> Vec<K> {
    let mut v: Vec<K> = data.to_vec();
    v.sort_unstable_by_key(|x| std::cmp::Reverse(x.sort_bits()));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_reproducible() {
        let a: Vec<f32> = Uniform.generate(1000, 42);
        let b: Vec<f32> = Uniform.generate(1000, 42);
        let c: Vec<f32> = Uniform.generate(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_floats_in_unit_interval() {
        let v: Vec<f32> = Uniform.generate(10_000, 7);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn increasing_is_sorted() {
        let v: Vec<f32> = Increasing.generate(5000, 1);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn decreasing_is_reverse_sorted() {
        let v: Vec<u32> = Decreasing.generate(5000, 1);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn increasing_integers_sorted_in_bit_order() {
        let v: Vec<i32> = Increasing.generate(5000, 9);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bucket_killer_shape() {
        let v = BucketKiller.generate(10_000, 3);
        let ones = v.iter().filter(|&&x| x == 1.0).count();
        assert!(ones >= 10_000 - 4);
        // every non-1.0 element differs from bits(1.0) in exactly one byte
        let one_bits = SortKey::sort_bits(1.0f32);
        for &x in v.iter().filter(|&&x| x != 1.0) {
            let xb = SortKey::sort_bits(x);
            let diff_bytes = (0..4)
                .filter(|&d| {
                    let sh = 32 - 8 * (d + 1);
                    ((xb >> sh) & 0xff) != ((one_bits >> sh) & 0xff)
                })
                .count();
            assert_eq!(diff_bytes, 1, "outlier {x} differs in {diff_bytes} bytes");
        }
    }

    #[test]
    fn bucket_killer_outliers_are_distinct_digits() {
        let out = BucketKiller::outliers();
        let one = SortKey::sort_bits(1.0f32);
        let digits: Vec<usize> = out
            .iter()
            .map(|&x| {
                let xb = SortKey::sort_bits(x);
                (0..4)
                    .find(|&d| {
                        let sh = 32 - 8 * (d + 1);
                        ((xb >> sh) & 0xff) != ((one >> sh) & 0xff)
                    })
                    .unwrap()
            })
            .collect();
        let mut sorted = digits.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn normal_is_centered_and_bounded() {
        let v = Normal.generate(50_000, 8);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!(v.iter().all(|&x| (-0.5..1.5).contains(&x)));
        // bell-shaped: ±1σ (σ = 1/6) holds ~68% of the mass, far more
        // than the ~33% a uniform distribution would put there
        let near = v.iter().filter(|&&x| (0.3333..0.6667).contains(&x)).count();
        assert!(near > v.len() * 6 / 10, "near={near}");
    }

    #[test]
    fn clustered_is_degenerate_for_value_buckets() {
        let v = Clustered.generate(10_000, 9);
        // nearly all keys in a ~1e-5-wide band around 0.1
        let tight = v.iter().filter(|&&x| (0.0999..0.1001).contains(&x)).count();
        assert!(tight > 9_000, "tight={tight}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let z = Zipf::new(1000, 1.1);
        let s = z.sample(50_000, 5);
        assert!(s.iter().all(|&x| (x as usize) < 1000));
        // id 0 should be much more frequent than id 500
        let c0 = s.iter().filter(|&&x| x == 0).count();
        let c500 = s.iter().filter(|&&x| x == 500).count();
        assert!(c0 > 10 * c500.max(1), "c0={c0} c500={c500}");
    }

    #[test]
    fn reference_topk_basic() {
        let data = [3.0f32, 1.0, 4.0, 1.5, 9.0, 2.6];
        assert_eq!(reference_topk(&data, 3), vec![9.0, 4.0, 3.0]);
        assert_eq!(reference_topk(&data, 0), Vec::<f32>::new());
    }

    #[test]
    fn reference_topk_with_duplicates() {
        let data = [5u32, 5, 5, 1, 9, 9];
        assert_eq!(reference_topk(&data, 4), vec![9, 9, 5, 5]);
    }
}
